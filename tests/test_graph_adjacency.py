"""Tests for the CSR Graph container."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_from_edges_deduplicates(self):
        g = Graph.from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_from_edges_num_nodes_extends(self):
        g = Graph.from_edges([(0, 1)], num_nodes=5)
        assert g.num_nodes == 5
        assert g.degree(4) == 0

    def test_empty_graph(self):
        g = Graph.from_edges([], num_nodes=0)
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_isolated_only(self):
        g = Graph.from_edges([], num_nodes=3)
        assert g.num_nodes == 3
        assert g.degrees.tolist() == [0, 0, 0]

    def test_invalid_indptr_start(self):
        with pytest.raises(ParameterError):
            Graph(np.array([1, 2]), np.array([0], dtype=np.int32))

    def test_indptr_indices_mismatch(self):
        with pytest.raises(ParameterError):
            Graph(np.array([0, 2]), np.array([0], dtype=np.int32))

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(ParameterError):
            Graph(np.array([0, 2, 1, 3]), np.arange(3, dtype=np.int32))

    def test_arrays_read_only(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(ValueError):
            g.indices[0] = 5
        with pytest.raises(ValueError):
            g.indptr[0] = 5


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph.from_edges([(2, 0), (2, 3), (2, 1)])
        assert g.neighbors(2).tolist() == [0, 1, 3]

    def test_degree_matches_neighbors(self, small_power_law):
        g = small_power_law
        for u in range(g.num_nodes):
            assert g.degree(u) == len(g.neighbors(u))

    def test_degrees_sum_to_twice_edges(self, small_power_law):
        g = small_power_law
        assert int(g.degrees.sum()) == 2 * g.num_edges

    def test_has_edge_symmetric(self, small_power_law):
        g = small_power_law
        for u, v in list(g.edges())[:50]:
            assert g.has_edge(u, v)
            assert g.has_edge(v, u)

    def test_has_edge_absent(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert not g.has_edge(0, 2)

    def test_node_range_checked(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(ParameterError):
            g.neighbors(2)
        with pytest.raises(ParameterError):
            g.degree(-1)

    def test_edges_iterates_once_each(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        edges = list(g.edges())
        assert edges == [(0, 1), (0, 2), (1, 2)]

    def test_edge_array_matches_edges(self, small_power_law):
        g = small_power_law
        from_iter = sorted(g.edges())
        from_array = sorted(map(tuple, g.edge_array().tolist()))
        assert from_iter == from_array

    def test_len(self):
        assert len(Graph.from_edges([(0, 1)], num_nodes=7)) == 7


class TestSubgraph:
    def test_subgraph_relabels(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        sub = g.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sorted(sub.edges()) == [(0, 1), (1, 2)]

    def test_subgraph_duplicate_nodes_rejected(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(ParameterError):
            g.subgraph([0, 0])

    def test_subgraph_out_of_range(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(ParameterError):
            g.subgraph([0, 5])

    def test_subgraph_empty(self):
        g = Graph.from_edges([(0, 1)])
        sub = g.subgraph([])
        assert sub.num_nodes == 0


class TestEquality:
    def test_equal_graphs(self):
        a = Graph.from_edges([(0, 1), (1, 2)])
        b = Graph.from_edges([(1, 0), (2, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_graphs(self):
        a = Graph.from_edges([(0, 1)])
        b = Graph.from_edges([(0, 1), (1, 2)])
        assert a != b

    def test_eq_other_type(self):
        assert Graph.from_edges([(0, 1)]) != "graph"

    def test_repr(self):
        assert repr(Graph.from_edges([(0, 1)])) == "Graph(n=2, m=1)"
