"""Tests for the Degree / Dominate / Random baselines."""

import pytest

from repro.errors import ParameterError
from repro.graphs.generators import (
    path_graph,
    star_graph,
    two_cluster_graph,
)
from repro.core.baselines import (
    degree_baseline,
    dominate_baseline,
    random_baseline,
)


class TestDegree:
    def test_top_degrees(self, small_power_law):
        result = degree_baseline(small_power_law, 5)
        degrees = small_power_law.degrees
        chosen = degrees[list(result.selected)]
        threshold = sorted(degrees.tolist(), reverse=True)[4]
        assert (chosen >= threshold).all()

    def test_order_by_degree(self, star4):
        result = degree_baseline(star4, 2)
        assert result.selected[0] == 0  # center has max degree

    def test_tie_break_lower_id(self):
        g = path_graph(4)  # degrees [1,2,2,1]
        result = degree_baseline(g, 2)
        assert result.selected == (1, 2)

    def test_k_zero(self, small_power_law):
        assert degree_baseline(small_power_law, 0).selected == ()

    def test_k_validated(self, small_power_law):
        with pytest.raises(ParameterError):
            degree_baseline(small_power_law, small_power_law.num_nodes + 1)


class TestDominate:
    def test_star_center_first(self, star4):
        result = dominate_baseline(star4, 1)
        assert result.selected == (0,)

    def test_two_clusters_split(self):
        g = two_cluster_graph(6, bridge_edges=1, seed=2)
        result = dominate_baseline(g, 2)
        sides = {v // 6 for v in result.selected}
        assert sides == {0, 1}

    def test_gain_is_new_neighbors(self):
        # Path 0-1-2-3-4: first pick is a degree-2 node; the second pick's
        # gain counts only neighbors not already covered.
        g = path_graph(5)
        result = dominate_baseline(g, 2)
        assert result.gains[0] == 2.0
        assert result.gains[1] <= 2.0

    def test_gains_non_increasing(self, small_power_law):
        result = dominate_baseline(small_power_law, 8)
        gains = list(result.gains)
        assert all(a >= b - 1e-9 for a, b in zip(gains, gains[1:]))

    def test_matches_naive_implementation(self, small_power_law):
        # Reference: literal argmax |N({u}) - N(S)| each round.
        def naive(graph, k):
            covered = set()
            chosen = []
            for _ in range(k):
                best, best_gain = -1, -1
                for u in range(graph.num_nodes):
                    if u in chosen:
                        continue
                    gain = len(set(graph.neighbors(u).tolist()) - covered)
                    if gain > best_gain:
                        best, best_gain = u, gain
                chosen.append(best)
                covered |= set(graph.neighbors(best).tolist())
            return tuple(chosen)

        assert dominate_baseline(small_power_law, 6).selected == naive(
            small_power_law, 6
        )

    def test_handles_exhausted_coverage(self):
        # More budget than useful picks: still returns k distinct nodes...
        g = star_graph(3)
        result = dominate_baseline(g, 4)
        assert len(set(result.selected)) == 4


class TestRandom:
    def test_distinct(self, small_power_law):
        result = random_baseline(small_power_law, 10, seed=1)
        assert len(set(result.selected)) == 10

    def test_deterministic_by_seed(self, small_power_law):
        a = random_baseline(small_power_law, 5, seed=3)
        b = random_baseline(small_power_law, 5, seed=3)
        assert a.selected == b.selected

    def test_within_range(self, small_power_law):
        result = random_baseline(small_power_law, 5, seed=2)
        assert all(0 <= v < small_power_law.num_nodes for v in result.selected)
