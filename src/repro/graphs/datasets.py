"""Dataset registry: the graphs used in the paper's evaluation (Section 4).

The paper evaluates on four SNAP datasets (Table 2), one small synthetic
power-law graph, and a family of ten growing synthetic graphs for the
scalability test (Fig. 9).  The SNAP files cannot be downloaded in this
offline environment, so :func:`load_dataset` builds **synthetic replicas**:
seeded power-law graphs with exactly the node and edge counts of Table 2
(see DESIGN.md §4 for why this substitution preserves the evaluation's
conclusions).  If genuine SNAP edge lists are available on disk, point
:func:`load_dataset` at them with ``data_dir`` and they are used instead.

All replicas are deterministic: the registry fixes one seed per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import DatasetError, ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.generators import power_law_graph
from repro.graphs.io import read_edge_list

__all__ = [
    "DatasetSpec",
    "TABLE2_DATASETS",
    "dataset_names",
    "dataset_spec",
    "load_dataset",
    "paper_synthetic_graph",
    "scalability_graph",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Identity card of one evaluation dataset.

    ``num_nodes``/``num_edges`` are the Table 2 values; ``seed`` pins the
    synthetic replica; ``snap_filename`` is the file probed under
    ``data_dir`` when genuine data is present.
    """

    name: str
    num_nodes: int
    num_edges: int
    description: str
    seed: int
    snap_filename: str


#: The four datasets of Table 2, in paper order.
TABLE2_DATASETS: tuple[DatasetSpec, ...] = (
    DatasetSpec(
        name="CAGrQc",
        num_nodes=5_242,
        num_edges=28_968,
        description="co-authorship, General Relativity & Quantum Cosmology",
        seed=422,
        snap_filename="ca-GrQc.txt",
    ),
    DatasetSpec(
        name="CAHepPh",
        num_nodes=12_008,
        num_edges=236_978,
        description="co-authorship, High Energy Physics - Phenomenology",
        seed=423,
        snap_filename="ca-HepPh.txt",
    ),
    DatasetSpec(
        name="Brightkite",
        num_nodes=58_228,
        num_edges=428_156,
        description="location-based social network (check-ins)",
        seed=424,
        snap_filename="brightkite_edges.txt",
    ),
    DatasetSpec(
        name="Epinions",
        num_nodes=75_872,
        num_edges=396_026,
        description="trust network of the Epinions review site",
        seed=425,
        snap_filename="soc-Epinions1.txt",
    ),
)

_BY_NAME = {spec.name.lower(): spec for spec in TABLE2_DATASETS}


def dataset_names() -> list[str]:
    """Names of the Table 2 datasets, in paper order."""
    return [spec.name for spec in TABLE2_DATASETS]


def dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset by (case-insensitive) name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {dataset_names()}"
        ) from None


def load_dataset(
    name: str,
    scale: float = 1.0,
    data_dir: "str | Path | None" = None,
) -> Graph:
    """Load one Table 2 dataset (genuine file if present, else replica).

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (case-insensitive).
    scale:
        Multiplier in ``(0, 1]`` applied to both node and edge counts of the
        synthetic replica; lets benchmarks bound wall-clock while keeping the
        degree shape.  Ignored when a genuine SNAP file is found.
    data_dir:
        Directory searched for the genuine SNAP edge list.
    """
    spec = dataset_spec(name)
    if data_dir is not None:
        candidate = Path(data_dir) / spec.snap_filename
        if candidate.exists():
            return read_edge_list(candidate)
        gz = candidate.with_suffix(candidate.suffix + ".gz")
        if gz.exists():
            return read_edge_list(gz)
    if not 0.0 < scale <= 1.0:
        raise ParameterError("scale must lie in (0, 1]")
    n = max(16, int(round(spec.num_nodes * scale)))
    m = max(n, int(round(spec.num_edges * scale)))
    return power_law_graph(n, m, seed=spec.seed)


def paper_synthetic_graph(seed: int = 4546) -> Graph:
    """The small synthetic graph of Section 4.2 (n=1000, m=9956).

    Used by the DP-vs-Approx accuracy and runtime comparisons (Figs 2-5).
    """
    return power_law_graph(1_000, 9_956, seed=seed)


def scalability_graph(index: int, scale: float = 1.0, seed: int = 900) -> Graph:
    """Graph ``G_index`` of the Fig. 9 scalability family.

    The paper uses ``G_i`` with ``i * 0.1M`` nodes and ``i * 1M`` edges for
    ``i = 1..10``; ``scale`` shrinks the family uniformly (DESIGN.md §4.4).
    """
    if not 1 <= index <= 10:
        raise ParameterError("index must lie in 1..10")
    if not 0.0 < scale <= 1.0:
        raise ParameterError("scale must lie in (0, 1]")
    n = max(64, int(round(index * 100_000 * scale)))
    m = max(n, int(round(index * 1_000_000 * scale)))
    return power_law_graph(n, m, seed=seed + index)
