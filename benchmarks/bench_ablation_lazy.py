"""Ablation: CELF lazy evaluation vs the paper's full gain sweeps.

Not a paper exhibit — it quantifies the design choice DESIGN.md calls out:
lazy evaluation must leave the selection unchanged while cutting the number
of gain evaluations dramatically (the paper cites [19] for the same effect
on its own greedy).
"""

from repro.experiments.reporting import ExperimentTable
from repro.graphs.datasets import load_dataset
from repro.walks.index import FlatWalkIndex
from repro.core.approx_fast import approx_greedy_fast


def run_ablation(config):
    graph = load_dataset("Brightkite", scale=config.scale)
    index = FlatWalkIndex.build(
        graph, config.length, config.num_replicates, seed=config.seed
    )
    table = ExperimentTable(
        title="Ablation: lazy (CELF) vs full gain sweeps (ApproxF1/F2, k=100)",
        columns=("objective", "mode", "seconds", "gain evals", "selection"),
    )
    outcomes = {}
    for objective in ("f1", "f2"):
        for lazy in (True, False):
            result = approx_greedy_fast(
                graph, 100, config.length, index=index, objective=objective,
                lazy=lazy,
            )
            outcomes[(objective, lazy)] = result
            table.add_row(
                objective,
                "lazy" if lazy else "full",
                result.elapsed_seconds,
                result.num_gain_evaluations,
                hash(result.selected) % 10**8,  # fingerprint, not the list
            )
    return table, outcomes


def test_lazy_ablation(benchmark, config, report):
    table, outcomes = benchmark.pedantic(
        lambda: run_ablation(config), rounds=1, iterations=1
    )
    report(table, "ablation_lazy.txt")
    for objective in ("f1", "f2"):
        lazy = outcomes[(objective, True)]
        full = outcomes[(objective, False)]
        assert lazy.selected == full.selected
        assert lazy.num_gain_evaluations < full.num_gain_evaluations / 10
