"""Concurrent query serving over index snapshots (DESIGN.md §10).

:class:`DominationService` is the online read path the paper's three
scenarios need: many clients concurrently asking selection and coverage
questions against a precomputed walk index.  Three mechanisms make the
concurrent path cheap without changing a single answer:

* **Immutable snapshots, atomic swap.**  Readers resolve the current
  :class:`~repro.serve.snapshot.IndexSnapshot` with one reference read
  and compute on it to completion; churn maintenance runs against the
  service's *private* :class:`~repro.dynamic.index.DynamicWalkIndex` and
  publishes a fresh snapshot only when the new epoch is fully patched.
  Readers never block on writers and can never observe a half-updated
  index.
* **Request micro-batching.**  ``select`` queries that arrive within the
  batch window share one kernel pass: greedy selections are prefixes of
  each other (the documented :class:`~repro.core.result.SelectionResult`
  contract), so one :func:`~repro.core.approx_fast.approx_greedy_fast`
  run at the window's largest budget answers every budget in the window
  bit-identically to a dedicated run.
* **LRU result cache** keyed by ``(graph_fingerprint, epoch, query
  kind, params)`` plus a per-service publish generation — two different
  indexes can legitimately be published for the same graph at the same
  epoch (a reseeded rebuild loaded at epoch 0), and the generation keeps
  their answers apart.  Publishing changes the key prefix and evicts
  every entry from earlier publishes, so a stale answer can never be
  served after a swap.

Every answer is bit-identical to the corresponding direct solver call on
the same snapshot (``benchmarks/bench_serving.py`` gates this in CI):
``select`` ↔ :func:`~repro.core.approx_fast.approx_greedy_fast`,
``metrics``/``coverage`` ↔
:meth:`~repro.walks.index.FlatWalkIndex.selection_metrics`, and
``min_targets`` ↔ :func:`~repro.core.coverage.min_targets_for_coverage`.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro import obs
from repro.errors import ParameterError
from repro.core.approx_fast import approx_greedy_fast
from repro.core.coverage import min_targets_for_coverage
from repro.core.coverage_kernel import validate_gain_backend, validate_rows_format
from repro.core.result import SelectionResult
from repro.serve.snapshot import IndexSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.dynamic.graph import DynamicGraph
    from repro.dynamic.index import DynamicUpdateStats, DynamicWalkIndex
    from repro.graphs.adjacency import Graph

__all__ = ["DominationService", "ServiceStats", "QUERY_KINDS"]

#: Query kinds accepted by :meth:`DominationService.submit`.
QUERY_KINDS = ("select", "metrics", "coverage", "min_targets")

_OBJECTIVES = ("f1", "f2")


def _fresh_result(result: SelectionResult) -> SelectionResult:
    """A caller-owned copy of a cached result.

    ``SelectionResult`` is frozen but its ``params`` dict is not; handing
    out the cached instance would let one client's mutation poison every
    later cache hit (``metrics`` dicts get the same treatment via
    ``dict(...)`` copies).
    """
    return replace(result, params=dict(result.params))


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time service counters (one consistent reading)."""

    queries: int
    cache_hits: int
    kernel_passes: int
    select_batches: int
    batched_queries: int
    publishes: int
    epoch: int


class _SelectBatch:
    """One micro-batch window of compatible ``select`` queries.

    The first query to open the window is the *leader*: it sleeps the
    window out, closes the batch, runs the shared kernel pass, and wakes
    the followers.  ``snapshot`` is pinned at window-open time so every
    query in the batch is answered from the same epoch even if a publish
    lands mid-window.
    """

    __slots__ = ("snapshot", "ks", "results", "error", "done", "closed")

    def __init__(self, snapshot: IndexSnapshot):
        self.snapshot = snapshot
        self.ks: list[int] = []
        self.results: dict[int, SelectionResult] = {}
        self.error: "BaseException | None" = None
        self.done = threading.Event()
        self.closed = False


class DominationService:
    """Thread-safe query front end over immutable index snapshots.

    Parameters
    ----------
    snapshot:
        The initial :class:`~repro.serve.snapshot.IndexSnapshot` to
        serve from (see :meth:`from_index_file` / :meth:`from_dynamic`).
    max_workers:
        Thread-pool size for :meth:`submit`; synchronous query methods
        run on the caller's thread and are safe from any number of
        threads.
    batch_window:
        Micro-batch window in **seconds** for ``select`` queries; ``0``
        disables the wait (each leader serves whatever joined while it
        held the window, i.e. only genuinely simultaneous arrivals
        batch).
    cache_size:
        LRU result-cache capacity in entries; ``0`` disables caching.
    gain_backend:
        Marginal-gain machinery for ``select``/``min_targets`` kernel
        passes (``"entries"``/``"bitset"``; both give identical answers).
    rows_format:
        Coverage-row representation for the bitset kernel
        (``"dense"``/``"stream"``/``"compressed"``; answers are
        bit-identical across all three, so it never enters cache keys).
        Ignored by the entries backend.
    """

    def __init__(
        self,
        snapshot: IndexSnapshot,
        max_workers: int = 4,
        batch_window: float = 0.002,
        cache_size: int = 256,
        gain_backend: "str | None" = None,
        rows_format: "str | None" = None,
    ):
        if max_workers < 1:
            raise ParameterError("max_workers must be >= 1")
        if batch_window < 0:
            raise ParameterError("batch_window must be >= 0 seconds")
        if cache_size < 0:
            raise ParameterError("cache_size must be >= 0")
        # The published state is a single (generation, snapshot) pair so
        # readers resolve both with one atomic reference read.  The
        # generation increments on every publish and participates in
        # cache keys: (fingerprint, epoch) alone cannot distinguish two
        # *different* indexes published for the same graph at the same
        # epoch (e.g. a reseeded rebuild loaded at epoch 0).
        self._current: "tuple[int, IndexSnapshot]" = (0, snapshot)
        self.batch_window = float(batch_window)
        self.gain_backend = validate_gain_backend(gain_backend)
        self.rows_format = validate_rows_format(rows_format)
        self._cache: "OrderedDict[tuple, object]" = OrderedDict()
        self._cache_size = int(cache_size)
        self._cache_lock = threading.Lock()
        self._batches: dict[tuple, _SelectBatch] = {}
        self._batch_lock = threading.Lock()
        self._publish_lock = threading.Lock()
        self._maintenance_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._counters = {
            "queries": 0,
            "cache_hits": 0,
            "kernel_passes": 0,
            "select_batches": 0,
            "batched_queries": 0,
            "publishes": 0,
        }
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="rwdom-serve"
        )
        self._dynamic: "DynamicWalkIndex | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_index_file(
        cls,
        path: "str | Path",
        graph: "Graph",
        index_format: "str | None" = None,
        **kwargs,
    ) -> "DominationService":
        """Serve a persisted index, provenance-checked against ``graph``.

        A stale archive (edited graph, wrong node count) raises
        :class:`~repro.errors.ParameterError` at construction instead of
        quietly serving answers for a topology that no longer exists.
        ``index_format`` selects the in-memory storage backend
        (``None`` serves the archive's own representation — a v3
        container is served straight off its read-only memory maps).
        """
        return cls(IndexSnapshot.load(path, graph, index_format), **kwargs)

    @classmethod
    def from_dynamic(
        cls, dynamic_index: "DynamicWalkIndex", **kwargs
    ) -> "DominationService":
        """Serve a maintained index and enable the churn update path.

        The service takes ownership of ``dynamic_index`` as its private
        maintenance copy — callers must route further edits through
        :meth:`sync` (or re-:meth:`publish` after mutating it) so
        publication stays atomic.
        """
        service = cls(IndexSnapshot.of_dynamic(dynamic_index), **kwargs)
        service._dynamic = dynamic_index
        return service

    # ------------------------------------------------------------------
    # Snapshot lifecycle
    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> IndexSnapshot:
        """The currently published snapshot (atomic reference read)."""
        return self._current[1]

    @property
    def epoch(self) -> int:
        return self._current[1].epoch

    @property
    def stats(self) -> ServiceStats:
        with self._counter_lock:
            return ServiceStats(
                epoch=self._current[1].epoch, **self._counters
            )

    def describe(self) -> dict:
        """JSON-friendly identity of the served snapshot.

        One atomic ``(generation, snapshot)`` read, so the fields are
        mutually consistent even while publishes race — the HTTP tier
        serves this from ``/healthz``.
        """
        generation, snap = self._current
        return {
            "num_nodes": snap.num_nodes,
            "length": snap.length,
            "num_replicates": snap.index.num_replicates,
            "epoch": snap.epoch,
            "generation": generation,
            "fingerprint": f"{snap.fingerprint:#x}",
            "gain_backend": self.gain_backend,
            "rows_format": self.rows_format,
        }

    def publish(self, snapshot: IndexSnapshot) -> None:
        """Atomically swap the serving snapshot.

        In-flight queries finish on the snapshot they resolved at entry;
        queries arriving after the swap see only the new one.  Cache
        entries from other ``(fingerprint, epoch)`` pairs are evicted —
        their keys could never be served again anyway, and holding them
        would just crowd out live entries.
        """
        with self._publish_lock:
            generation = self._current[0] + 1
            self._current = (generation, snapshot)
            with self._cache_lock:
                stale = [k for k in self._cache if k[0] != generation]
                for key in stale:
                    del self._cache[key]
        self._count("publishes")

    def sync(self, dynamic_graph: "DynamicGraph") -> "DynamicUpdateStats":
        """Swap-on-churn: absorb journal batches, publish the new epoch.

        Maintenance mutates only the service's private
        :class:`~repro.dynamic.index.DynamicWalkIndex` (incremental
        patches allocate fresh entry arrays, so previously published
        snapshots are untouched); readers keep answering from the
        current snapshot throughout and switch only at the atomic
        :meth:`publish`.  Writers are serialized by a maintenance lock.
        """
        if self._dynamic is None:
            raise ParameterError(
                "this service has no maintained index — construct it "
                "with DominationService.from_dynamic to enable churn "
                "updates"
            )
        started = time.perf_counter()
        with self._maintenance_lock:
            with obs.span("serve.sync"):
                stats = self._dynamic.sync(dynamic_graph)
                self.publish(IndexSnapshot.of_dynamic(self._dynamic))
        if obs.enabled():
            obs.observe(
                "serve_epoch_publish_seconds",
                time.perf_counter() - started,
                help="Churn absorb + snapshot publish wall time.",
            )
        return stats

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def select(self, k: int, objective: str = "f2") -> SelectionResult:
        """Best-``k`` placement on the current snapshot (micro-batched).

        Bit-identical (``selected`` and ``gains``) to
        ``approx_greedy_fast(graph, k, L, index=snapshot.index,
        objective=objective, gain_backend=...)`` on the snapshot the
        query resolved; ``params`` additionally records the serving
        provenance (epoch, the batch's shared budget).
        """
        generation, snap = self._current
        # Counted on arrival, like every other kind — a rejected select
        # must not make stats.queries disagree with the load report.
        self._count("queries")
        if objective not in _OBJECTIVES:
            raise ParameterError(f"objective must be one of {_OBJECTIVES}")
        k = int(k)
        if not 0 <= k <= snap.num_nodes:
            raise ParameterError(
                f"k={k} must lie in [0, n={snap.num_nodes}]"
            )
        key = (
            generation, snap.fingerprint, snap.epoch, "select", k,
            objective, self.gain_backend,
        )
        hit, value = self._cache_get(key)
        if hit:
            return _fresh_result(value)
        batch, group, leader = self._join_batch(generation, snap, objective, k)
        if leader:
            try:
                if self.batch_window:
                    time.sleep(self.batch_window)
            finally:
                self._run_batch(group, batch, objective)
        batch.done.wait()
        if batch.error is not None:
            # Every waiter raises its own shallow copy: re-raising one
            # shared instance from N threads would race on its
            # __traceback__/__context__, interleaving frames across
            # clients.  The copy keeps the type (callers still catch
            # ParameterError) and chains the original for diagnosis.
            try:
                clone = copy.copy(batch.error)
            except Exception:  # pragma: no cover - uncopyable exception
                clone = batch.error
            raise clone from batch.error
        result = batch.results[k]
        self._cache_put(key, result)
        return _fresh_result(result)

    def metrics(self, selection) -> dict:
        """Sampled coverage/AHT of ``selection`` on the current snapshot.

        Bit-identical to
        :meth:`~repro.walks.index.FlatWalkIndex.selection_metrics` on
        the snapshot index.  The key canonicalizes the selection (sorted,
        deduplicated) — the answer is set-valued, so permutations share
        one cache entry.
        """
        self._count("queries")
        generation, snap = self._current
        return dict(self._metrics_cached(generation, snap, selection))

    def coverage(self, selection) -> float:
        """Covered fraction of ``selection`` (shares the metrics pass)."""
        self._count("queries")
        generation, snap = self._current
        return float(
            self._metrics_cached(generation, snap, selection)[
                "coverage_fraction"
            ]
        )

    def min_targets(
        self, fraction: float, max_size: "int | None" = None
    ) -> SelectionResult:
        """Smallest greedy set reaching ``fraction`` expected coverage.

        Bit-identical to
        :func:`~repro.core.coverage.min_targets_for_coverage` on the
        snapshot index; an unreachable target raises
        :class:`~repro.errors.ParameterError` exactly as the direct call
        does (failures are never cached).
        """
        generation, snap = self._current
        self._count("queries")
        key = (
            generation, snap.fingerprint, snap.epoch, "min_targets",
            float(fraction), max_size, self.gain_backend,
        )
        hit, value = self._cache_get(key)
        if hit:
            return _fresh_result(value)
        result = min_targets_for_coverage(
            snap.graph, fraction, snap.length, index=snap.index,
            max_size=max_size, gain_backend=self.gain_backend,
            rows_format=self.rows_format,
        )
        self._count("kernel_passes")
        self._cache_put(key, result)
        return _fresh_result(result)

    def submit(self, kind: str, **params) -> Future:
        """Run one query on the service thread pool; returns a Future.

        ``kind`` is one of :data:`QUERY_KINDS`; ``params`` are forwarded
        to the matching synchronous method.
        """
        if kind not in QUERY_KINDS:
            raise ParameterError(
                f"unknown query kind {kind!r} (expected one of "
                f"{QUERY_KINDS})"
            )
        return self._pool.submit(getattr(self, kind), **params)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the submit pool (synchronous queries keep working)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "DominationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snap = self._current[1]
        return (
            f"DominationService(n={snap.num_nodes}, L={snap.length}, "
            f"epoch={snap.epoch}, gain_backend={self.gain_backend!r})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        with self._counter_lock:
            self._counters[name] += amount

    def _cache_get(self, key: tuple) -> tuple[bool, object]:
        with self._cache_lock:
            if key in self._cache:
                self._cache.move_to_end(key)
                value = self._cache[key]
            else:
                obs.inc(
                    "serve_cache_misses_total",
                    help="Result-cache misses (hits live in ServiceStats).",
                )
                return False, None
        self._count("cache_hits")
        return True, value

    def _cache_put(self, key: tuple, value) -> None:
        if self._cache_size == 0:
            return
        with self._cache_lock:
            # Generation check under the cache lock: publish() evicts
            # under the same lock, so checking outside would let a query
            # that resolved a superseded snapshot slip its (forever
            # unreachable) entry in right after the sweep.
            if key[0] != self._current[0]:
                return
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)

    def _metrics_cached(
        self, generation: int, snap: IndexSnapshot, selection
    ) -> dict:
        targets = tuple(sorted({int(v) for v in selection}))
        key = (generation, snap.fingerprint, snap.epoch, "metrics", targets)
        hit, value = self._cache_get(key)
        if hit:
            return value
        result = snap.index.selection_metrics(targets)
        self._count("kernel_passes")
        self._cache_put(key, result)
        return result

    def _join_batch(
        self, generation: int, snap: IndexSnapshot, objective: str, k: int
    ) -> tuple[_SelectBatch, tuple, bool]:
        group = (generation, objective, self.gain_backend)
        with self._batch_lock:
            batch = self._batches.get(group)
            if batch is None or batch.closed:
                batch = _SelectBatch(snap)
                self._batches[group] = batch
                leader = True
            else:
                leader = False
            batch.ks.append(k)
        return batch, group, leader

    def _run_batch(
        self, group: tuple, batch: _SelectBatch, objective: str
    ) -> None:
        with self._batch_lock:
            batch.closed = True
            if self._batches.get(group) is batch:
                del self._batches[group]
            ks = sorted(set(batch.ks))
            num_joined = len(batch.ks)
        try:
            snap = batch.snapshot
            shared = approx_greedy_fast(
                snap.graph, ks[-1], snap.length, index=snap.index,
                objective=objective, gain_backend=self.gain_backend,
                rows_format=self.rows_format,
            )
            for k in ks:
                batch.results[k] = SelectionResult(
                    algorithm=shared.algorithm,
                    selected=shared.selected[:k],
                    gains=shared.gains[:k],
                    elapsed_seconds=shared.elapsed_seconds,
                    num_gain_evaluations=shared.num_gain_evaluations,
                    params={
                        **shared.params,
                        "k": k,
                        "served": True,
                        "epoch": snap.epoch,
                        "batch_k": ks[-1],
                        "batch_size": num_joined,
                    },
                )
            self._count("kernel_passes")
            self._count("select_batches")
            self._count("batched_queries", num_joined)
            if obs.enabled():
                obs.observe(
                    "serve_select_batch_occupancy",
                    num_joined,
                    buckets=obs.COUNT_BUCKETS,
                    help="Queries coalesced per select micro-batch.",
                )
        except BaseException as exc:
            batch.error = exc
        finally:
            batch.done.set()
