"""Documentation-layer consistency (the checks CI runs via tools/).

Keeps README.md's CLI reference, DESIGN.md's section numbering, and
EXPERIMENTS.md's benchmark coverage from drifting away from the code.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_cli_docs import check_docs  # noqa: E402


def test_documentation_consistent():
    problems = check_docs()
    assert not problems, "\n".join(problems)


def test_core_docs_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        assert (REPO_ROOT / name).is_file(), name
