"""Closed-loop load generation against a :class:`DominationService`.

Workload files are plain text, one query per line (``#`` comments and
blank lines ignored)::

    select 25            # best-25 placement (ApproxF2 on the snapshot)
    select 25 f1         # same budget under the Problem-1 objective
    metrics 3,17,42      # sampled coverage/AHT of an explicit placement
    coverage 3,17,42     # covered fraction only
    min-targets 0.4      # smallest set reaching 40% expected coverage

:func:`run_load` replays a workload through ``num_clients`` *closed-loop*
clients — each issues one query, waits for the answer, then issues its
next, the arrival model of the paper's online scenarios — and reports
throughput, latency percentiles, and the service's batching/cache
counters.  The same harness drives ``repro serve`` and the gated
``benchmarks/bench_serving.py``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ParameterError, RwdomError
from repro.serve.service import ServiceStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.service import DominationService

__all__ = ["WorkloadQuery", "parse_workload", "LoadReport", "run_load"]


@dataclass(frozen=True)
class WorkloadQuery:
    """One parsed workload directive.

    ``kind`` is ``select``/``metrics``/``coverage``/``min-targets``;
    only the fields that kind uses are meaningful.  ``line`` is the
    1-based workload line for error context (0 when built
    programmatically).
    """

    kind: str
    k: int = 0
    objective: str = "f2"
    targets: tuple[int, ...] = ()
    fraction: float = 0.0
    line: int = 0

    def issue(self, service: "DominationService"):
        """Run this query synchronously against ``service``."""
        if self.kind == "select":
            return service.select(self.k, objective=self.objective)
        if self.kind == "metrics":
            return service.metrics(self.targets)
        if self.kind == "coverage":
            return service.coverage(self.targets)
        if self.kind == "min-targets":
            return service.min_targets(self.fraction)
        raise ParameterError(f"unknown workload query kind {self.kind!r}")


def parse_workload(text: str) -> list[WorkloadQuery]:
    """Parse a workload file into :class:`WorkloadQuery` records.

    Malformed lines raise :class:`~repro.errors.ParameterError` with the
    offending line number (same discipline as
    :func:`repro.dynamic.churn.parse_trace`); range checks against the
    served graph happen at issue time, inside the service.
    """
    queries: list[WorkloadQuery] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        kind = parts[0].lower()
        try:
            if kind == "select" and len(parts) in (2, 3):
                objective = parts[2].lower() if len(parts) == 3 else "f2"
                if objective not in ("f1", "f2"):
                    raise ValueError
                queries.append(
                    WorkloadQuery(
                        kind="select", k=int(parts[1]),
                        objective=objective, line=lineno,
                    )
                )
            elif kind in ("metrics", "coverage") and len(parts) == 2:
                targets = tuple(
                    int(part) for part in parts[1].split(",") if part.strip()
                )
                queries.append(
                    WorkloadQuery(kind=kind, targets=targets, line=lineno)
                )
            elif kind == "min-targets" and len(parts) == 2:
                queries.append(
                    WorkloadQuery(
                        kind="min-targets", fraction=float(parts[1]),
                        line=lineno,
                    )
                )
            else:
                raise ValueError
        except ValueError:
            raise ParameterError(
                f"workload line {lineno}: cannot parse {raw!r} (expected "
                "'select K [f1|f2]', 'metrics U,V,...', "
                "'coverage U,V,...', or 'min-targets FRAC')"
            )
    return queries


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one closed-loop load run.

    ``throughput_qps`` counts every issued query (a rejection is still a
    served response); the latency fields describe *answered* queries
    only, so a fast-failing workload line cannot drag the percentiles
    toward its near-zero rejection time (``nan`` when nothing was
    answered).
    """

    num_queries: int
    num_clients: int
    elapsed_seconds: float
    throughput_qps: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p99_ms: float
    errors: int
    stats: ServiceStats


def run_load(
    service: "DominationService",
    queries: Sequence[WorkloadQuery],
    num_clients: int = 4,
    repeat: int = 1,
) -> LoadReport:
    """Drive ``queries`` through closed-loop clients; measure the service.

    The stream is the workload repeated ``repeat`` times, dealt
    round-robin to ``num_clients`` threads that all start on a barrier.
    Per-query latency is wall-clock from issue to answer on the client
    thread — batching shows up as slightly higher latency (the window)
    traded for much higher throughput.  Library-level query failures
    (:class:`~repro.errors.RwdomError`, e.g. an unreachable
    ``min-targets`` fraction) are counted in ``errors``, not raised —
    one bad workload line must not tear down a load run.  Anything else
    (a genuine bug or resource failure) aborts the client and re-raises
    after the run drains, rather than being silently swallowed into a
    plausible-looking report.
    """
    if num_clients < 1:
        raise ParameterError("num_clients must be >= 1")
    if repeat < 1:
        raise ParameterError("repeat must be >= 1")
    stream = list(queries) * repeat
    if not stream:
        raise ParameterError("the workload contains no queries")
    num_clients = min(num_clients, len(stream))
    latencies: list[list[float]] = [[] for _ in range(num_clients)]
    errors = [0] * num_clients
    fatal: list[BaseException] = []
    barrier = threading.Barrier(num_clients + 1)

    def client(i: int) -> None:
        barrier.wait()
        for query in stream[i::num_clients]:
            started = time.perf_counter()
            try:
                query.issue(service)
            except RwdomError:
                errors[i] += 1
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                fatal.append(exc)
                return
            else:
                latencies[i].append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if fatal:
        raise fatal[0]
    flat = np.asarray([lat for per in latencies for lat in per])
    if flat.size:
        mean_ms = float(flat.mean()) * 1e3
        p50_ms = float(np.percentile(flat, 50)) * 1e3
        p99_ms = float(np.percentile(flat, 99)) * 1e3
    else:  # every query was rejected — there is no answer latency
        mean_ms = p50_ms = p99_ms = float("nan")
    return LoadReport(
        num_queries=len(stream),
        num_clients=num_clients,
        elapsed_seconds=elapsed,
        throughput_qps=len(stream) / elapsed if elapsed > 0 else float("inf"),
        latency_mean_ms=mean_ms,
        latency_p50_ms=p50_ms,
        latency_p99_ms=p99_ms,
        errors=int(sum(errors)),
        stats=service.stats,
    )
