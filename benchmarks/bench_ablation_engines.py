"""Ablation: engine choices at both layers of the solver stack.

Two head-to-head comparisons on the same workload:

* *Gain engine* — the paper-faithful reference implementation of
  Algorithm 6 vs the vectorized :class:`FastApproxEngine`.  Both run on
  the same materialized walks; they must agree exactly, and vectorization
  is what makes the algorithm practical in Python.
* *Walk backend* — the registered walk engines
  (:mod:`repro.walks.backends`) generating the index walks.  ``"numpy"``
  and ``"csr"`` are bit-identical under one seed, so the comparison is
  pure execution strategy; ``"sharded"`` uses spawned per-shard streams,
  so it is timed on the same workload but not stream-matched.
"""

import numpy as np

from repro.experiments.reporting import ExperimentTable
from repro.graphs.generators import power_law_graph
from repro.walks.backends import get_engine
from repro.walks.engine import batch_walks
from repro.walks.index import FlatWalkIndex, InvertedIndex, walker_major_starts
from repro.core.approx_fast import approx_greedy_fast
from repro.core.approx_greedy import approx_greedy


def run_ablation(config):
    graph = power_law_graph(1_000, 9_956, seed=config.seed)
    replicates, length, k = 25, 6, 30
    starts = walker_major_starts(graph.num_nodes, replicates)
    walks = batch_walks(graph, starts, length, seed=config.seed)
    ref_index = InvertedIndex.from_walks(walks, graph.num_nodes, replicates)
    flat_index = FlatWalkIndex.from_walks(walks, graph.num_nodes, replicates)
    table = ExperimentTable(
        title=f"Ablation: reference vs vectorized engine (n=1000, k={k}, R={replicates})",
        columns=("objective", "engine", "seconds"),
    )
    outcomes = {}
    for objective in ("f1", "f2"):
        ref = approx_greedy(graph, k, length, index=ref_index, objective=objective)
        fast = approx_greedy_fast(
            graph, k, length, index=flat_index, objective=objective
        )
        outcomes[objective] = (ref, fast)
        table.add_row(objective, "reference", ref.elapsed_seconds)
        table.add_row(objective, "vectorized", fast.elapsed_seconds)
    return table, outcomes


def run_backend_ablation(config):
    """Time every walk backend generating the same index walks."""
    import time

    graph = power_law_graph(10_000, 50_000, seed=config.seed)
    replicates, length = 10, 6
    starts = walker_major_starts(graph.num_nodes, replicates)
    table = ExperimentTable(
        title=(
            "Ablation: walk backends "
            f"(n=10000, B={starts.size}, L={length})"
        ),
        columns=("backend", "kernel", "seconds"),
    )
    walks_by_backend = {}
    for name in ("numpy", "csr", "sharded"):
        engine = get_engine(name)
        engine.batch_walks(graph, starts[:64], length, seed=0)  # warm plans
        started = time.perf_counter()
        walks_by_backend[name] = engine.batch_walks(
            graph, starts, length, seed=config.seed
        )
        table.add_row(name, "batch_walks", time.perf_counter() - started)
        started = time.perf_counter()
        FlatWalkIndex.build(
            graph, length, replicates, seed=config.seed, engine=engine
        )
        table.add_row(name, "index_build", time.perf_counter() - started)
    return table, walks_by_backend


def test_engine_ablation(benchmark, config, report):
    table, outcomes = benchmark.pedantic(
        lambda: run_ablation(config), rounds=1, iterations=1
    )
    report(table, "ablation_engines.txt")
    for objective, (ref, fast) in outcomes.items():
        assert ref.selected == fast.selected, objective
        assert fast.elapsed_seconds < ref.elapsed_seconds


def test_walk_backend_ablation(benchmark, config, report):
    table, walks = benchmark.pedantic(
        lambda: run_backend_ablation(config), rounds=1, iterations=1
    )
    report(table, "ablation_walk_backends.txt")
    # numpy and csr are stream-matched: identical walks, only speed differs.
    assert np.array_equal(walks["numpy"], walks["csr"])
    assert walks["sharded"].shape == walks["numpy"].shape
