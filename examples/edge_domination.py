"""Edge domination: place replicas to cut search traffic.

The paper's Section 5 proposes (as future work) counting the *edges*
traversed by walks on their way to the targeted set — the natural cost
model for the P2P scenario, where every traversed edge is a network
message.  This example runs the extension we built for it
(``repro.edge_domination_greedy``, objective F3 = expected distinct-edge
traffic *saved*), sweeping the replica budget and charting how much of the
no-replica traffic each budget eliminates, with the Degree heuristic for
contrast.

Run:  python examples/edge_domination.py
"""

from __future__ import annotations

import repro
from repro.experiments.plotting import ascii_plot

NODES, EDGES = 2_000, 10_000
LENGTH = 6            # search TTL
BUDGETS = (5, 10, 20, 40, 80)


def main() -> None:
    graph = repro.power_law_graph(NODES, EDGES, seed=11)
    print(f"overlay: {graph}")
    baseline = repro.expected_edges_traversed(
        graph, (), LENGTH, num_replicates=300, seed=2
    )
    print(f"traffic with no replicas: {baseline:,.0f} edge-messages per "
          f"all-nodes query wave\n")

    # One greedy run serves every budget: selections are prefixes.
    greedy = repro.edge_domination_greedy(
        graph, max(BUDGETS), LENGTH, num_replicates=100, seed=3
    )
    degree = repro.degree_baseline(graph, max(BUDGETS))

    print(f"{'k':>4} {'placement':<10} {'traffic':>10} {'saved':>8}")
    curves: dict[str, list[tuple[float, float]]] = {
        "ApproxF3": [], "Degree": [],
    }
    for k in BUDGETS:
        for name, order in (
            ("ApproxF3", greedy.selected), ("Degree", degree.selected)
        ):
            traffic = repro.expected_edges_traversed(
                graph, order[:k], LENGTH, num_replicates=300, seed=2
            )
            saved = 1.0 - traffic / baseline
            curves[name].append((k, 100.0 * saved))
            print(f"{k:>4} {name:<10} {traffic:>10,.0f} {saved:>7.1%}")
        print()

    print(ascii_plot(
        curves, title="traffic saved vs replica budget",
        x_label="k", y_label="% saved", width=56, height=12,
    ))
    print(f"\ngreedy solve time for k={max(BUDGETS)}: "
          f"{greedy.elapsed_seconds:.2f}s "
          f"({greedy.num_gain_evaluations} gain evaluations)")


if __name__ == "__main__":
    main()
