"""Edge-list input/output in the SNAP text format.

The four real datasets in the paper's Table 2 are distributed by the Stanford
SNAP collection as whitespace-separated edge lists with ``#`` comment
headers.  This module reads and writes that format (plain or gzipped) so the
library can ingest the genuine files when they are available, and ships the
same serialization for our synthetic replicas.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterator

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.adjacency import Graph
from repro.graphs.builder import GraphBuilder

__all__ = ["read_edge_list", "write_edge_list"]


def _open_text(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")  # type: ignore[return-value]
    return open(path, mode)


def _parse_lines(lines: Iterator[str], path: Path) -> Iterator[tuple[int, int]]:
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(f"{path}:{lineno}: expected two endpoints")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"{path}:{lineno}: non-integer endpoint {parts[:2]}"
            ) from exc
        yield u, v


def read_edge_list(
    path: "str | Path",
    relabel: bool = True,
    num_nodes: int | None = None,
) -> Graph:
    """Read an undirected graph from a SNAP-style edge list.

    Parameters
    ----------
    path:
        Text file (``.gz`` transparently decompressed).  Lines starting with
        ``#`` or ``%`` are comments; other lines carry two integer endpoints.
        Directed duplicates and repeated edges collapse; self-loops are
        dropped (real SNAP files contain both).
    relabel:
        When true (default), node ids are compacted to ``0..n-1`` in order of
        first appearance, matching how the paper's datasets are consumed.
        When false, ids are used verbatim (gaps become isolated nodes).
    num_nodes:
        Optional explicit node count (only meaningful with
        ``relabel=False``).
    """
    path = Path(path)
    builder = GraphBuilder()
    mapping: dict[int, int] = {}

    def map_node(x: int) -> int:
        if not relabel:
            return x
        if x not in mapping:
            mapping[x] = len(mapping)
        return mapping[x]

    pending: list[tuple[int, int]] = []
    with _open_text(path, "r") as handle:
        for u, v in _parse_lines(iter(handle), path):
            pending.append((map_node(u), map_node(v)))
            if len(pending) >= 1 << 18:
                builder.add_edges(np.asarray(pending, dtype=np.int64))
                pending.clear()
    if pending:
        builder.add_edges(np.asarray(pending, dtype=np.int64))
    return builder.build(num_nodes=num_nodes)


def write_edge_list(
    graph: Graph, path: "str | Path", header: str | None = None
) -> None:
    """Write ``graph`` as a SNAP-style edge list (one ``u v`` line per edge).

    ``header`` lines (newline-separated) are emitted as ``#`` comments, the
    same convention SNAP uses for dataset provenance.
    """
    path = Path(path)
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# Nodes: {graph.num_nodes} Edges: {graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\n")
