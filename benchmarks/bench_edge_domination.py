"""Extension exhibit: edge domination (the paper's future-work Problem F3).

Not a paper figure — Section 5 proposes the problem and leaves it open; we
built it (``repro.core.edge_domination``) and here quantify it the same way
Figs. 6-7 treat Problems 1-2: greedy on the target objective vs the Degree
baseline vs greedy on the hop objective, evaluated by expected
distinct-edge traffic until domination (lower = better).

Expected shape: ApproxF3 beats Degree on its own metric and tracks
ApproxF1 closely (hops upper-bound distinct edges, so their optima nearly
coincide).
"""

import numpy as np

from repro.experiments.extensions import ext_edge_domination


def test_edge_domination(benchmark, config, report):
    table = benchmark.pedantic(
        lambda: ext_edge_domination(config), rounds=1, iterations=1
    )
    report(table, "edge_domination.txt")
    traffic = table.columns.index("edge traffic")
    algorithm = table.columns.index("algorithm")
    for dataset in ("CAGrQc", "CAHepPh"):
        rows = {
            row[algorithm]: row[traffic]
            for row in table.filtered(dataset=dataset)
        }
        assert np.isfinite(rows["ApproxF3"])
        assert rows["ApproxF3"] < rows["Degree"], (
            f"{dataset}: F3 {rows['ApproxF3']} should beat Degree "
            f"{rows['Degree']}"
        )
        assert rows["ApproxF3"] <= rows["ApproxF1"] * 1.05, (
            f"{dataset}: F3 {rows['ApproxF3']} should track F1 "
            f"{rows['ApproxF1']}"
        )
