"""Tests for transition-matrix construction."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.hitting.transition import (
    absorbing_restriction,
    target_mask,
    transition_matrix,
)


class TestTransitionMatrix:
    def test_rows_stochastic(self, small_power_law):
        P = transition_matrix(small_power_law)
        sums = np.asarray(P.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_uniform_over_neighbors(self, star4):
        P = transition_matrix(star4).toarray()
        assert P[0, 1] == pytest.approx(0.25)
        assert P[1, 0] == pytest.approx(1.0)
        assert P[1, 2] == 0.0

    def test_dangling_self_loop(self):
        g = Graph.from_edges([(0, 1)], num_nodes=3)
        P = transition_matrix(g).toarray()
        assert P[2, 2] == 1.0
        assert P[2].sum() == 1.0

    def test_symmetric_degrees(self, ring6):
        P = transition_matrix(ring6).toarray()
        assert np.allclose(P, P.T)  # regular graph: P symmetric


class TestTargetMask:
    def test_basic(self):
        mask = target_mask(5, {1, 3})
        assert mask.tolist() == [False, True, False, True, False]

    def test_empty(self):
        assert not target_mask(3, set()).any()

    def test_out_of_range(self):
        with pytest.raises(ParameterError):
            target_mask(3, {5})
        with pytest.raises(ParameterError):
            target_mask(3, {-1})


class TestAbsorbingRestriction:
    def test_absorbed_rows_zeroed(self, ring6):
        P = transition_matrix(ring6)
        mask = target_mask(6, {0, 3})
        Q = absorbing_restriction(P, mask).toarray()
        assert np.allclose(Q[0], 0.0)
        assert np.allclose(Q[3], 0.0)
        # Surviving transitions among V\S keep their probabilities.
        assert Q[1, 2] == pytest.approx(P.toarray()[1, 2])

    def test_powers_give_survival_mass(self):
        # Row sums of Q^t are the probability the walk avoided S for t steps.
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        P = transition_matrix(g)
        mask = target_mask(3, {0})
        Q = absorbing_restriction(P, mask)
        surv1 = np.asarray(Q.sum(axis=1)).ravel()
        assert surv1[1] == pytest.approx(0.5)  # from 1, avoid 0 w.p. 1/2
        surv2 = np.asarray((Q @ Q).sum(axis=1)).ravel()
        assert surv2[1] == pytest.approx(0.25)

    def test_columns_also_zeroed(self, ring6):
        P = transition_matrix(ring6)
        Q = absorbing_restriction(P, target_mask(6, {0})).toarray()
        assert np.allclose(Q[:, 0], 0.0)

    def test_mask_size_checked(self, ring6):
        P = transition_matrix(ring6)
        with pytest.raises(ParameterError):
            absorbing_restriction(P, np.zeros(4, dtype=bool))
