"""Asyncio HTTP/1.1 front end over :class:`DominationService` (DESIGN.md §12).

The network tier the paper's motivating workloads need: item
recommendation and ad placement are *online services*, so the typed
in-process queries of :mod:`repro.serve.service` get a wire here.  The
server is stdlib-first — :func:`asyncio.start_server` plus a small
HTTP/1.1 parser — keeping the numpy-only runtime; a FastAPI adapter
could reuse the same dispatch layer, but nothing here imports outside
the standard library.

Three properties the tests and ``benchmarks/bench_http_serving.py`` pin:

* **Bit-identical answers.**  Handlers decode a typed request
  (:mod:`repro.serve.schemas`), bridge into the thread-safe service via
  ``run_in_executor``, and encode the service's answer unchanged —
  floats survive JSON bit-exactly, so every HTTP reply equals the
  direct :class:`~repro.serve.service.DominationService` call.  Because
  queries execute on a thread pool, ``select`` micro-batching keeps
  working across concurrent HTTP clients exactly as it does for
  concurrent threads.
* **Bounded work, fast rejection.**  Admission control is a bounded
  in-flight budget (``max_inflight``) checked *before* the executor is
  touched — an admitted request is the only kind that queues — plus a
  connection cap (``max_connections``).  Past either bound the server
  answers ``503`` with ``Retry-After`` immediately instead of letting
  queues grow without bound.
* **Health vs. readiness.**  ``/healthz`` answers 200 whenever the
  process can parse a request.  ``/readyz`` flips to 200 only once the
  listening socket is bound *and* a snapshot is published, and flips
  back on :meth:`DominationHttpServer.drain`.  Epoch swaps
  (``service.sync``) publish atomically, so readiness never flickers
  during churn maintenance.

Observability (DESIGN.md §14): the per-endpoint counters behind
``/stats`` live in a server-local, always-on
:class:`~repro.obs.registry.MetricsRegistry` (the JSON shape of
``/stats`` is unchanged — it is now a *view* over the registry), and
``GET /metrics`` renders that registry, the service counters, and —
when the process enabled telemetry via ``repro.obs.configure()`` — the
global solver/walk/persistence metrics as Prometheus text exposition.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import obs
from repro.errors import ParameterError, RwdomError
from repro.obs.exposition import render_prometheus
from repro.obs.registry import MetricsRegistry, MetricsSnapshot
from repro.serve.schemas import REQUEST_KINDS, decode_request, encode_response

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.service import DominationService

__all__ = [
    "DominationHttpServer",
    "HttpServerHandle",
    "EndpointStats",
    "start_http_server",
    "MAX_HEADER_BYTES",
    "MAX_BODY_BYTES",
]

#: Header-block and body ceilings; past them the request is answered
#: with 431/413 instead of being buffered.
MAX_HEADER_BYTES = 16_384
MAX_BODY_BYTES = 1_048_576

#: Default number of latency samples retained per endpoint for the
#: /stats percentiles (a bounded window, so stats memory never grows
#: with uptime).  Override per server with ``stats_window=`` (the CLI's
#: ``--stats-window``).
LATENCY_WINDOW = 2_048

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Stats endpoints, in the order /stats reports them.  ``"prometheus"``
#: is the ``/metrics`` exposition endpoint (``"metrics"`` already names
#: the query kind).
ENDPOINT_NAMES = REQUEST_KINDS + ("healthz", "readyz", "stats", "prometheus")


class _HttpError(Exception):
    """A request that cannot be dispatched; rendered and the connection
    closed (the stream may be desynchronized past a malformed frame)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(frozen=True)
class EndpointStats:
    """Point-in-time counters for one endpoint (from ``/stats``).

    Latency percentiles follow the small-sample rule of
    :func:`repro.serve.loadgen.sample_percentile` over a bounded window
    of the most recent answers; ``nan`` when nothing was answered yet.
    ``errors_by_status`` breaks ``errors`` down by HTTP status code
    (string keys, so the dict survives a JSON round trip unchanged).
    """

    requests: int
    errors: int
    rejections: int
    in_flight: int
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p99_ms: float
    errors_by_status: "dict[str, int]" = field(default_factory=dict)


class _EndpointCounters:
    """One endpoint's live counters, backed by the server registry.

    The counts live in :class:`~repro.obs.registry.MetricsRegistry`
    metrics (label ``endpoint=<name>``), so ``/stats`` and ``/metrics``
    are two views over the same numbers.  Touched only from the
    event-loop thread (handlers count before and after each ``await``,
    and executor results are delivered back on the loop).  The latency
    deque is the /stats percentile window; the registry histogram keeps
    the full-distribution buckets /metrics exports.
    """

    __slots__ = (
        "_registry", "_name", "_requests", "_rejections", "_in_flight",
        "_latency", "_errors", "samples",
    )

    def __init__(self, registry: MetricsRegistry, name: str, window: int):
        labels = {"endpoint": name}
        self._registry = registry
        self._name = name
        self._requests = registry.counter(
            "http_requests_total", labels, help="HTTP requests received."
        )
        self._rejections = registry.counter(
            "http_rejections_total", labels,
            help="Requests rejected by admission control.",
        )
        self._in_flight = registry.gauge(
            "http_in_flight", labels, help="Requests currently executing."
        )
        self._latency = registry.histogram(
            "http_request_seconds", labels,
            help="Admitted-request service time.",
        )
        self._errors: dict[int, object] = {}
        self.samples: deque[float] = deque(maxlen=window)

    def count_request(self) -> None:
        self._requests.inc()

    def count_error(self, status: int) -> None:
        counter = self._errors.get(status)
        if counter is None:
            counter = self._errors[status] = self._registry.counter(
                "http_errors_total",
                {"endpoint": self._name, "status": str(status)},
                help="Requests answered with an error status.",
            )
        counter.inc()

    def count_rejection(self) -> None:
        self._rejections.inc()

    def enter(self) -> None:
        self._in_flight.inc()

    def leave(self, elapsed: float) -> None:
        self._in_flight.dec()
        self._latency.observe(elapsed)
        self.samples.append(elapsed)

    def freeze(self) -> EndpointStats:
        from repro.serve.loadgen import sample_percentile

        if self.samples:
            window = list(self.samples)
            mean_ms = sum(window) / len(window) * 1e3
            p50_ms = sample_percentile(window, 50) * 1e3
            p99_ms = sample_percentile(window, 99) * 1e3
        else:
            mean_ms = p50_ms = p99_ms = float("nan")
        by_status = {
            str(status): int(counter.value)
            for status, counter in sorted(self._errors.items())
        }
        return EndpointStats(
            requests=int(self._requests.value),
            errors=sum(by_status.values()),
            rejections=int(self._rejections.value),
            in_flight=int(self._in_flight.value),
            latency_mean_ms=mean_ms,
            latency_p50_ms=p50_ms,
            latency_p99_ms=p99_ms,
            errors_by_status=by_status,
        )


def _error_body(exc_type: str, message: str, **context) -> dict:
    return {"error": {"type": exc_type, "message": message, **context}}


class DominationHttpServer:
    """Asyncio HTTP/1.1 server exposing one :class:`DominationService`.

    Parameters
    ----------
    service:
        The (thread-safe) query service to expose.  The server never
        mutates it; churn maintenance keeps going through
        ``service.sync`` from whatever thread owns the dynamic graph.
    host, port:
        Listening address; ``port=0`` binds an ephemeral port, readable
        as :attr:`port` after :meth:`start`.
    max_inflight:
        Bound on concurrently *executing* queries.  Requests beyond it
        are answered ``503`` + ``Retry-After`` without touching the
        executor.  Also sizes the executor thread pool, so admitted
        queries reach the service concurrently and can micro-batch.
    max_connections:
        Bound on open client connections; connection attempts beyond it
        receive an immediate ``503`` and are closed.
    retry_after:
        Seconds advertised in ``Retry-After`` on backpressure 503s.
    stats_window:
        Latency samples retained per endpoint for the ``/stats``
        percentiles (default :data:`LATENCY_WINDOW`; the CLI's
        ``--stats-window``).  Must be ≥ 1.
    """

    def __init__(
        self,
        service: "DominationService",
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 32,
        max_connections: int = 128,
        retry_after: float = 1.0,
        stats_window: int = LATENCY_WINDOW,
    ):
        if max_inflight < 1:
            raise ParameterError("max_inflight must be >= 1")
        if max_connections < 1:
            raise ParameterError("max_connections must be >= 1")
        if retry_after < 0:
            raise ParameterError("retry_after must be >= 0 seconds")
        if stats_window < 1:
            raise ParameterError("stats_window must be >= 1")
        self._service = service
        self._host = host
        self._requested_port = int(port)
        self.max_inflight = int(max_inflight)
        self.max_connections = int(max_connections)
        self.retry_after = retry_after
        self._inflight = 0
        self._ready = False
        self._port: "int | None" = None
        self._server: "asyncio.base_events.Server | None" = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._rejected_connections = 0
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight, thread_name_prefix="rwdom-http"
        )
        self.stats_window = int(stats_window)
        # Server-local and always on: /stats (and /metrics) work whether
        # or not the process enabled the global telemetry switch.
        self.registry = MetricsRegistry()
        self._endpoints = {
            name: _EndpointCounters(self.registry, name, self.stats_window)
            for name in ENDPOINT_NAMES
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket; flip readiness once it is live."""
        if self._server is not None:
            raise ParameterError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._requested_port,
            limit=MAX_HEADER_BYTES,
        )
        self._port = self._server.sockets[0].getsockname()[1]
        # Readiness requires a published snapshot to answer from; the
        # property read is atomic, and later epoch swaps replace the
        # reference atomically too, so this can never flicker mid-sync.
        _ = self._service.snapshot
        self._ready = True

    def drain(self) -> None:
        """Flip readiness off (health stays up, queries still answered).

        The load-balancer drain convention: /readyz starts answering 503
        so new traffic routes elsewhere, while in-flight and straggler
        requests on open connections complete normally.
        """
        self._ready = False

    async def stop(self) -> None:
        """Stop listening, close client connections, drain the executor."""
        self._ready = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        # Let the cancelled/EOF'd handlers unwind before reaping threads.
        await asyncio.sleep(0)
        self._executor.shutdown(wait=True)

    @property
    def port(self) -> int:
        if self._port is None:
            raise ParameterError("server is not started")
        return self._port

    @property
    def base_url(self) -> str:
        return f"http://{self._host}:{self.port}"

    @property
    def ready(self) -> bool:
        return self._ready

    @property
    def in_flight(self) -> int:
        return self._inflight

    def endpoint_stats(self) -> dict[str, EndpointStats]:
        """Frozen per-endpoint counters (what ``/stats`` serializes)."""
        return {
            name: counters.freeze()
            for name, counters in self._endpoints.items()
        }

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if len(self._writers) >= self.max_connections:
            self._rejected_connections += 1
            try:
                writer.write(
                    self._render(
                        503,
                        _error_body(
                            "ServiceUnavailable",
                            f"connection limit ({self.max_connections}) "
                            "reached",
                        ),
                        keep_alive=False,
                        retry_after=True,
                    )
                )
                await writer.drain()
            except (ConnectionError, OSError):  # pragma: no cover - racy peer
                pass
            finally:
                writer.close()
            return
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    writer.write(
                        self._render(
                            exc.status,
                            _error_body("ParameterError", exc.message),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, version, headers, body = request
                keep_alive = self._keep_alive(version, headers)
                status, payload, retry_after = await self._dispatch(
                    method, path, body
                )
                writer.write(
                    self._render(
                        status,
                        payload,
                        keep_alive=keep_alive,
                        retry_after=retry_after,
                    )
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # peer went away mid-frame; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()

    @staticmethod
    def _keep_alive(version: str, headers: dict) -> bool:
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    async def _read_request(self, reader: asyncio.StreamReader):
        """One parsed request, or ``None`` on a cleanly closed connection."""
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise _HttpError(431, "request line too long") from None
        if not line:
            return None
        text = line.decode("latin-1").strip()
        parts = text.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, f"malformed request line {text!r}")
        method, target, version = parts
        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                raise _HttpError(431, "header line too long") from None
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise _HttpError(400, "connection closed inside headers")
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                raise _HttpError(431, "request headers too large")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(
                    400, f"malformed header line {line.decode('latin-1')!r}"
                )
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            raise _HttpError(
                400, f"invalid Content-Length {raw_length!r}"
            ) from None
        if length < 0:
            raise _HttpError(400, f"invalid Content-Length {raw_length!r}")
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, version, headers, body

    def _render(
        self,
        status: int,
        payload: "dict | str",
        keep_alive: bool,
        retry_after: bool = False,
    ) -> bytes:
        if isinstance(payload, str):  # /metrics: Prometheus text
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if retry_after:
            head.append(f"Retry-After: {self.retry_after:g}")
        return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, target: str, body: bytes):
        """``(status, payload, retry_after)`` for one parsed request."""
        path = target.split("?", 1)[0]
        if path in ("/healthz", "/readyz", "/stats", "/metrics"):
            name = "prometheus" if path == "/metrics" else path.lstrip("/")
            if method != "GET":
                self._endpoints[name].count_error(405)
                return (
                    405,
                    _error_body(
                        "ParameterError", f"{path} only supports GET"
                    ),
                    False,
                )
            self._endpoints[name].count_request()
            if path == "/healthz":
                return 200, {"status": "ok", **self._service.describe()}, False
            if path == "/readyz":
                if self._ready:
                    return (
                        200,
                        {"ready": True, "epoch": self._service.epoch},
                        False,
                    )
                return 503, {"ready": False}, True
            if path == "/metrics":
                return 200, self.render_metrics(), False
            return 200, self._stats_payload(), False
        if path.startswith("/query/"):
            kind = path[len("/query/"):]
            if kind not in REQUEST_KINDS:
                return (
                    404,
                    _error_body(
                        "ParameterError",
                        f"unknown query kind {kind!r} (expected one of "
                        f"{REQUEST_KINDS})",
                    ),
                    False,
                )
            if method != "POST":
                self._endpoints[kind].count_error(405)
                return (
                    405,
                    _error_body(
                        "ParameterError", f"{path} only supports POST"
                    ),
                    False,
                )
            return await self._handle_query(kind, body)
        return (
            404,
            _error_body(
                "ParameterError",
                f"no route for {path!r} (endpoints: /healthz, /readyz, "
                "/stats, /metrics, /query/<kind>)",
            ),
            False,
        )

    async def _handle_query(self, kind: str, body: bytes):
        counters = self._endpoints[kind]
        counters.count_request()
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            counters.count_error(400)
            return (
                400,
                _error_body(
                    "ParameterError",
                    f"{kind} request body is not valid JSON: {exc}",
                    kind=kind,
                ),
                False,
            )
        try:
            request = decode_request(kind, payload)
        except ParameterError as exc:
            counters.count_error(400)
            return 400, _error_body(type(exc).__name__, str(exc), kind=kind), False
        # Admission control: the check-and-increment pair runs without an
        # intervening await on the single loop thread, so the in-flight
        # budget cannot be oversubscribed by interleaved handlers.
        if self._inflight >= self.max_inflight:
            counters.count_rejection()
            return (
                503,
                _error_body(
                    "ServiceUnavailable",
                    f"server is at its in-flight limit "
                    f"({self.max_inflight}); retry later",
                    kind=kind,
                ),
                True,
            )
        self._inflight += 1
        counters.enter()
        started = time.perf_counter()
        try:
            value = await asyncio.get_running_loop().run_in_executor(
                self._executor, request.issue, self._service
            )
        except RwdomError as exc:
            counters.count_error(400)
            return 400, _error_body(type(exc).__name__, str(exc), kind=kind), False
        except Exception as exc:
            # A bug must surface as a typed 500, never a traceback
            # through the socket.
            counters.count_error(500)
            return (
                500,
                _error_body(
                    "InternalError",
                    f"{type(exc).__name__} while serving {kind}",
                    kind=kind,
                ),
                False,
            )
        finally:
            self._inflight -= 1
            counters.leave(time.perf_counter() - started)
        return 200, encode_response(kind, value), False

    def _stats_payload(self) -> dict:
        from dataclasses import asdict

        service_stats = self._service.stats
        endpoints = {}
        for name, stats in self.endpoint_stats().items():
            row = asdict(stats)
            for key, value in row.items():
                if value != value:  # NaN is not strict JSON
                    row[key] = None
            endpoints[name] = row
        return {
            "server": {
                "ready": self._ready,
                "in_flight": self._inflight,
                "max_inflight": self.max_inflight,
                "connections": len(self._writers),
                "max_connections": self.max_connections,
                "rejected_connections": self._rejected_connections,
            },
            "service": asdict(service_stats),
            "endpoints": endpoints,
        }

    _SERVICE_METRIC_HELP = {
        "serve_queries_total": "Queries accepted by the service.",
        "serve_cache_hits_total": "Result-cache hits.",
        "serve_kernel_passes_total": "Shared greedy kernel passes.",
        "serve_select_batches_total": "Select micro-batches executed.",
        "serve_batched_queries_total": "Queries answered from a shared batch.",
        "serve_publishes_total": "Snapshot publishes (epoch swaps).",
        "serve_epoch": "Currently published snapshot epoch.",
    }

    def render_metrics(self) -> str:
        """Prometheus text: server registry + service counters + (when the
        process enabled telemetry) the global solver/walk/persistence
        registry — one scrape covers every layer."""
        from dataclasses import asdict

        service = MetricsSnapshot(help=dict(self._SERVICE_METRIC_HELP))
        for name, value in asdict(self._service.stats).items():
            if name == "epoch":
                service.gauges[("serve_epoch", ())] = float(value)
            else:
                service.counters[(f"serve_{name}_total", ())] = float(value)
        server = MetricsSnapshot(
            gauges={
                ("http_ready", ()): float(self._ready),
                ("http_open_connections", ()): float(len(self._writers)),
                ("http_max_connections", ()): float(self.max_connections),
                ("http_max_inflight", ()): float(self.max_inflight),
            },
            counters={
                ("http_rejected_connections_total", ()): float(
                    self._rejected_connections
                ),
            },
            help={
                "http_ready": "1 once ready to serve, 0 while draining.",
                "http_open_connections": "Open client connections.",
                "http_max_connections": "Connection cap.",
                "http_max_inflight": "In-flight admission budget.",
                "http_rejected_connections_total":
                    "Connections refused at the cap.",
            },
        )
        return render_prometheus(
            self.registry.snapshot(), service, server, obs.snapshot()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = self.base_url if self._port is not None else "unbound"
        return (
            f"DominationHttpServer({where}, ready={self._ready}, "
            f"in_flight={self._inflight}/{self.max_inflight})"
        )


# ----------------------------------------------------------------------
# Threaded embedding: run the event loop on a daemon thread so
# synchronous callers (the CLI, tests, the load generator) can stand a
# server up without owning an event loop themselves.
# ----------------------------------------------------------------------
class HttpServerHandle:
    """A running server on a background event-loop thread."""

    def __init__(
        self,
        server: DominationHttpServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def base_url(self) -> str:
        return self.server.base_url

    def drain(self) -> None:
        self.server.drain()

    def stop(self) -> None:
        """Stop the loop and join the thread (idempotent)."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()

    def __enter__(self) -> "HttpServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_http_server(
    service: "DominationService", **kwargs
) -> HttpServerHandle:
    """Start a :class:`DominationHttpServer` on a daemon loop thread.

    Blocks until the listening socket is bound (so :attr:`base_url` is
    immediately usable) and re-raises any bind failure in the caller.
    """
    server = DominationHttpServer(service, **kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 - re-raised in caller
            failure.append(exc)
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            loop.close()

    thread = threading.Thread(
        target=run, name="rwdom-http-loop", daemon=True
    )
    thread.start()
    started.wait()
    if failure:
        raise failure[0]
    return HttpServerHandle(server, loop, thread)
