"""Exact (dynamic-programming) hitting quantities — Theorems 2.1, 2.2, 2.3.

The recursions, for a target set ``S`` and horizon ``L``:

* generalized hitting time (Thm 2.2)::

      h^0_uS = 0
      h^L_uS = 0                       if u in S
      h^L_uS = 1 + sum_w p_uw h^{L-1}_wS   otherwise

* hit probability (Thm 2.3)::

      p^0_uS = [u in S]
      p^L_uS = 1                       if u in S
      p^L_uS = sum_w p_uw p^{L-1}_wS   otherwise

Each level is one sparse matrix-vector product, so a full vector over all
sources costs ``O(m L)`` — the complexity the paper quotes for one DP.
Because the iteration passes through every horizon ``0..L`` on its way to
``L``, the ``*_horizons`` variants return all intermediate horizons from a
single pass (used by the Fig. 10 experiment, which sweeps ``L``).
"""

from __future__ import annotations

from typing import Collection, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.hitting.transition import target_mask, transition_matrix

__all__ = [
    "hitting_time_vector",
    "hitting_time_horizons",
    "hit_probability_vector",
    "hit_probability_horizons",
    "pairwise_hitting_time",
    "hitting_time_matrix",
]


def _check_length(length: int) -> None:
    if length < 0:
        raise ParameterError("walk length L must be >= 0")


def hitting_time_vector(
    graph: Graph, targets: Collection[int], length: int
) -> np.ndarray:
    """``h^L_uS`` for every source ``u`` as a float array of length ``n``.

    An empty ``S`` gives the paper's convention ``h^L_uS = L`` (a walk can
    never hit the empty set, and ``T^L_uS`` is truncated at ``L``).
    """
    _check_length(length)
    mask = target_mask(graph.num_nodes, targets)
    return _hitting_iter(graph, mask, [length])[0]


def hitting_time_horizons(
    graph: Graph, targets: Collection[int], lengths: Sequence[int]
) -> list[np.ndarray]:
    """``h^l_uS`` vectors for several horizons from one DP sweep."""
    for length in lengths:
        _check_length(length)
    mask = target_mask(graph.num_nodes, targets)
    return _hitting_iter(graph, mask, list(lengths))


def hitting_iteration(matrix, mask: np.ndarray, lengths: list[int]) -> list[np.ndarray]:
    """Theorem 2.2 DP over an arbitrary row-stochastic operator.

    Shared by the unweighted path and the directed/weighted extension
    (:mod:`repro.hitting.weighted`): ``matrix`` is any row-stochastic
    scipy matrix, ``mask`` flags the target set.
    """
    horizon = max(lengths) if lengths else 0
    wanted = set(lengths)
    recorded: dict[int, np.ndarray] = {}
    h = np.zeros(matrix.shape[0], dtype=np.float64)
    if 0 in wanted:
        recorded[0] = h.copy()
    for level in range(1, horizon + 1):
        h = 1.0 + matrix @ h
        h[mask] = 0.0
        if level in wanted:
            recorded[level] = h.copy()
    return [recorded[length] for length in lengths]


def _hitting_iter(
    graph: Graph, mask: np.ndarray, lengths: list[int]
) -> list[np.ndarray]:
    return hitting_iteration(transition_matrix(graph), mask, lengths)


def hit_probability_vector(
    graph: Graph, targets: Collection[int], length: int
) -> np.ndarray:
    """``p^L_uS = E[X^L_uS]`` for every source ``u``."""
    _check_length(length)
    mask = target_mask(graph.num_nodes, targets)
    return _probability_iter(graph, mask, [length])[0]


def hit_probability_horizons(
    graph: Graph, targets: Collection[int], lengths: Sequence[int]
) -> list[np.ndarray]:
    """``p^l_uS`` vectors for several horizons from one DP sweep."""
    for length in lengths:
        _check_length(length)
    mask = target_mask(graph.num_nodes, targets)
    return _probability_iter(graph, mask, list(lengths))


def probability_iteration(
    matrix, mask: np.ndarray, lengths: list[int]
) -> list[np.ndarray]:
    """Theorem 2.3 DP over an arbitrary row-stochastic operator."""
    horizon = max(lengths) if lengths else 0
    wanted = set(lengths)
    recorded: dict[int, np.ndarray] = {}
    p = mask.astype(np.float64)
    if 0 in wanted:
        recorded[0] = p.copy()
    for level in range(1, horizon + 1):
        p = matrix @ p
        p[mask] = 1.0
        if level in wanted:
            recorded[level] = p.copy()
    return [recorded[length] for length in lengths]


def _probability_iter(
    graph: Graph, mask: np.ndarray, lengths: list[int]
) -> list[np.ndarray]:
    return probability_iteration(transition_matrix(graph), mask, lengths)


def pairwise_hitting_time(graph: Graph, source: int, target: int, length: int) -> float:
    """Node-to-node truncated hitting time ``h^L_uv`` (Theorem 2.1)."""
    if not 0 <= source < graph.num_nodes:
        raise ParameterError("source out of range")
    return float(hitting_time_vector(graph, [target], length)[source])


def hitting_time_matrix(
    graph: Graph, length: int, max_nodes: int = 4_096
) -> np.ndarray:
    """Dense ``(n, n)`` matrix with ``H[u, v] = h^L_uv``.

    Runs one DP per target column — ``O(n m L)`` — so it refuses graphs
    larger than ``max_nodes`` to protect the caller from accidental
    quadratic blowups.
    """
    _check_length(length)
    n = graph.num_nodes
    if n > max_nodes:
        raise ParameterError(
            f"hitting_time_matrix is O(n m L); {n} nodes exceeds max_nodes="
            f"{max_nodes} (raise it explicitly if you mean it)"
        )
    matrix = transition_matrix(graph)
    out = np.empty((n, n), dtype=np.float64)
    for v in range(n):
        h = np.zeros(n, dtype=np.float64)
        for _ in range(length):
            h = 1.0 + matrix @ h
            h[v] = 0.0
        out[:, v] = h
    return out
