"""Dynamic-graph subsystem: edge churn as a first-class workload.

The reproduction's solvers are static end-to-end — graph built once,
walk index materialized once, selection judged on that frozen snapshot —
but the paper's three scenarios (item placement, P2P search, ad posting)
all live on graphs that churn.  This package makes small edits cheap and
robustness measurable (DESIGN.md §9):

* :class:`~repro.dynamic.graph.DynamicGraph` — batched edge
  insert/delete over immutable CSR snapshots, with a change journal.
* :class:`~repro.dynamic.index.DynamicWalkIndex` — incremental walk-index
  maintenance under frozen per-walk uniforms: resample only trajectories
  that visited a modified node, bit-identical to a full rebuild.
* :mod:`~repro.dynamic.robust` — ``robust_greedy`` selection under a
  q-edge-deletion adversary and the bondage-style
  ``min_breaking_edges`` attack.
* :mod:`~repro.dynamic.churn` — edit-trace replay with coverage/AHT
  decay tracking and re-solve points (the CLI ``repro dynamic``).
"""

from repro.dynamic.graph import DynamicGraph, EditBatch, edit_graph
from repro.dynamic.index import (
    DynamicUpdateStats,
    DynamicWalkIndex,
    engine_uniforms,
    replay_walks,
)
from repro.dynamic.robust import (
    BreakingReport,
    min_breaking_edges,
    robust_greedy,
)
from repro.dynamic.churn import (
    ChurnReport,
    ChurnStep,
    TraceOp,
    churn_replay,
    expand_membership,
    parse_trace,
)

__all__ = [
    "DynamicGraph",
    "EditBatch",
    "edit_graph",
    "DynamicWalkIndex",
    "DynamicUpdateStats",
    "engine_uniforms",
    "replay_walks",
    "BreakingReport",
    "min_breaking_edges",
    "robust_greedy",
    "ChurnReport",
    "ChurnStep",
    "TraceOp",
    "churn_replay",
    "expand_membership",
    "parse_trace",
]
