"""Random-walk domination on directed, weighted graphs.

The paper's closing claim of Section 2 — the techniques extend to directed
and weighted graphs — realized end to end:

* the walk index is materialized with weighted (alias-method) walks, after
  which Algorithm 6's machinery is *unchanged* (the index never looks at
  the graph again);
* the DP-based greedy runs the same Theorem 2.2/2.3 recursions over the
  weighted transition operator.
"""

from __future__ import annotations

import time
from typing import Collection

import numpy as np

from repro.errors import ParameterError
from repro.graphs.weighted import WeightedDiGraph
from repro.hitting.weighted import (
    weighted_hit_probability_vector,
    weighted_hitting_time_vector,
)
from repro.core.approx_fast import FastApproxEngine
from repro.core.greedy import greedy_select
from repro.core.result import SelectionResult
from repro.walks.alias import AliasSampler, weighted_batch_walks
from repro.walks.index import FlatWalkIndex, walker_major_starts
from repro.walks.rng import resolve_rng

__all__ = [
    "build_weighted_index",
    "weighted_approx_greedy",
    "weighted_dpf1",
    "weighted_dpf2",
    "WeightedF1Objective",
    "WeightedF2Objective",
]


def build_weighted_index(
    graph: WeightedDiGraph,
    length: int,
    num_replicates: int,
    seed: "int | np.random.Generator | None" = None,
    chunk_rows: int = 1 << 19,
) -> FlatWalkIndex:
    """Algorithm 3 with weighted walks: R alias-sampled walks per node."""
    if length < 0:
        raise ParameterError("walk length L must be >= 0")
    if num_replicates < 1:
        raise ParameterError("number of replicates R must be >= 1")
    rng = resolve_rng(seed)
    sampler = AliasSampler(graph)
    n = graph.num_nodes
    starts = walker_major_starts(n, num_replicates)
    hit_parts: list[np.ndarray] = []
    state_parts: list[np.ndarray] = []
    hop_parts: list[np.ndarray] = []
    for lo in range(0, starts.size, chunk_rows):
        rows = starts[lo : lo + chunk_rows]
        walks = weighted_batch_walks(graph, rows, length, seed=rng, sampler=sampler)
        row_ids = np.arange(lo, lo + rows.size, dtype=np.int64)
        state = (row_ids % num_replicates) * n + rows
        for hop in range(1, length + 1):
            col = walks[:, hop].astype(np.int64)
            fresh = np.ones(rows.size, dtype=bool)
            for prev in range(hop):
                np.logical_and(fresh, col != walks[:, prev], out=fresh)
            if not fresh.any():
                continue
            hit_parts.append(col[fresh])
            state_parts.append(state[fresh])
            hop_parts.append(np.full(int(fresh.sum()), hop, dtype=np.int64))
    hits = np.concatenate(hit_parts) if hit_parts else np.empty(0, dtype=np.int64)
    states = np.concatenate(state_parts) if state_parts else np.empty(0, dtype=np.int64)
    hops = np.concatenate(hop_parts) if hop_parts else np.empty(0, dtype=np.int64)
    return FlatWalkIndex._from_records(
        hits, states, hops, num_nodes=n, length=length,
        num_replicates=num_replicates,
    )


def weighted_approx_greedy(
    graph: WeightedDiGraph,
    k: int,
    length: int,
    num_replicates: int = 100,
    objective: str = "f1",
    seed: "int | np.random.Generator | None" = None,
    index: FlatWalkIndex | None = None,
    lazy: bool = True,
) -> SelectionResult:
    """Algorithm 6 on a directed, weighted graph."""
    if not 0 <= k <= graph.num_nodes:
        raise ParameterError(f"k={k} must lie in [0, n={graph.num_nodes}]")
    started = time.perf_counter()
    if index is None:
        index = build_weighted_index(graph, length, num_replicates, seed=seed)
    elif index.num_nodes != graph.num_nodes:
        raise ParameterError("index was built for a different graph size")
    engine = FastApproxEngine(index, objective=objective)
    engine.run(k, lazy=lazy)
    elapsed = time.perf_counter() - started
    name = "WeightedApproxF1" if objective == "f1" else "WeightedApproxF2"
    return SelectionResult(
        algorithm=name,
        selected=tuple(engine.selected),
        gains=tuple(engine.gains),
        elapsed_seconds=elapsed,
        num_gain_evaluations=engine.num_gain_evaluations,
        params={
            "k": k,
            "L": index.length,
            "R": index.num_replicates,
            "objective": objective,
            "weighted": True,
        },
    )


class WeightedF1Objective:
    """Exact weighted ``F1(S) = n L - sum h^L_uS`` (directed walks)."""

    name = "F1w"

    def __init__(self, graph: WeightedDiGraph, length: int):
        if length < 0:
            raise ParameterError("walk length L must be >= 0")
        self._graph = graph
        self._length = length
        self._base_key: frozenset[int] | None = None
        self._base_value = 0.0

    @property
    def num_nodes(self) -> int:
        return self._graph.num_nodes

    def value(self, targets: Collection[int]) -> float:
        h = weighted_hitting_time_vector(self._graph, set(targets), self._length)
        return self.num_nodes * self._length - float(h.sum())

    def marginal_gain(self, targets: Collection[int], candidate: int) -> float:
        key = frozenset(targets)
        if key != self._base_key:
            self._base_value = self.value(key)
            self._base_key = key
        return self.value(key | {candidate}) - self._base_value


class WeightedF2Objective(WeightedF1Objective):
    """Exact weighted ``F2(S) = sum p^L_uS`` (directed walks)."""

    name = "F2w"

    def value(self, targets: Collection[int]) -> float:
        p = weighted_hit_probability_vector(self._graph, set(targets), self._length)
        return float(p.sum())


def weighted_dpf1(
    graph: WeightedDiGraph, k: int, length: int, lazy: bool = True
) -> SelectionResult:
    """DP-based greedy for Problem 1 on a weighted digraph."""
    result = greedy_select(
        WeightedF1Objective(graph, length), k, lazy=lazy,
        algorithm_name="WeightedDPF1",
    )
    result.params.update({"L": length, "objective": "f1", "weighted": True})
    return result


def weighted_dpf2(
    graph: WeightedDiGraph, k: int, length: int, lazy: bool = True
) -> SelectionResult:
    """DP-based greedy for Problem 2 on a weighted digraph."""
    result = greedy_select(
        WeightedF2Objective(graph, length), k, lazy=lazy,
        algorithm_name="WeightedDPF2",
    )
    result.params.update({"L": length, "objective": "f2", "weighted": True})
    return result
