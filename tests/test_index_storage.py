"""Storage backends for the flat walk index (DESIGN.md §13).

Covers the delta codec primitives (``pack_value_blocks`` /
``unpack_value_blocks``), the three storage classes' parity on real
indexes, the per-candidate decode path the coverage kernel uses on
compressed storage, and the canonical-order precondition.  Archive-level
behavior (persistence v3) lives in ``test_persistence.py``; the
end-to-end build/edit/solve/serve parity lives in the differential
harness.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx_fast import approx_greedy_fast
from repro.core.coverage_kernel import GAIN_BACKENDS, CoverageKernel
from repro.errors import ParameterError
from repro.graphs.generators import power_law_graph, ring_graph, star_graph
from repro.walks.index import FlatWalkIndex
from repro.walks.persistence import as_format
from repro.walks.storage import (
    INDEX_FORMATS,
    CompressedStorage,
    pack_value_blocks,
    unpack_value_blocks,
    validate_index_format,
)


# ----------------------------------------------------------------------
# Codec primitives
# ----------------------------------------------------------------------
class TestPackUnpack:
    def _round_trip(self, values, counts, widths):
        values = np.asarray(values, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        widths = np.asarray(widths, dtype=np.int64)
        words, wordptr = pack_value_blocks(values, counts, widths)
        blocks = np.arange(counts.size, dtype=np.int64)
        decoded = unpack_value_blocks(words, wordptr, widths, counts, blocks)
        np.testing.assert_array_equal(decoded, values)
        return words, wordptr

    def test_empty_stream(self):
        words, wordptr = self._round_trip([], [0, 0, 0], [0, 0, 0])
        assert wordptr.tolist() == [0, 0, 0, 0]
        assert words.tolist() == [0]  # just the pad word

    def test_width_zero_blocks_store_nothing(self):
        words, wordptr = self._round_trip([0, 0, 0], [3], [0])
        assert wordptr.tolist() == [0, 0]

    def test_singleton_blocks(self):
        self._round_trip([5, 0, 7], [1, 1, 1], [3, 0, 3])

    def test_word_boundary_spill(self):
        """Values straddling a 64-bit word boundary (width 7, 10 values
        puts value 9 at bits 63..69)."""
        values = [(i * 37) % 128 for i in range(10)]
        self._round_trip(values, [10], [7])

    def test_max_width_63(self):
        hi = (1 << 52) + 12345
        self._round_trip([hi, 0, hi - 1], [3], [53])

    def test_mixed_width_blocks(self):
        values = [3, 1, 2] + [100, 350] + [] + [0]
        self._round_trip(values, [3, 2, 0, 1], [2, 9, 0, 1])

    def test_subset_decode(self):
        values = np.asarray([1, 2, 3, 40, 50, 6], dtype=np.int64)
        counts = np.asarray([3, 2, 1], dtype=np.int64)
        widths = np.asarray([2, 6, 3], dtype=np.int64)
        words, wordptr = pack_value_blocks(values, counts, widths)
        got = unpack_value_blocks(
            words, wordptr, widths, counts, np.asarray([2, 0], dtype=np.int64)
        )
        np.testing.assert_array_equal(got, [6, 1, 2, 3])

    def test_negative_values_rejected(self):
        with pytest.raises(ParameterError):
            pack_value_blocks(
                np.asarray([-1], dtype=np.int64),
                np.asarray([1], dtype=np.int64),
                np.asarray([4], dtype=np.int64),
            )

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_round_trip_property(self, data):
        num_blocks = data.draw(st.integers(0, 6))
        counts, values, widths = [], [], []
        for _ in range(num_blocks):
            # The codec's exact range is < 2**53 (frexp), so widths past
            # 52 cannot arise from in-range values.
            width = data.draw(st.integers(0, 52))
            count = data.draw(st.integers(0, 9))
            block = data.draw(
                st.lists(
                    st.integers(0, (1 << width) - 1 if width else 0),
                    min_size=count, max_size=count,
                )
            )
            widths.append(width)
            counts.append(count)
            values.extend(block)
        self._round_trip(values, counts or [0], widths or [0])


# ----------------------------------------------------------------------
# Storage classes on real indexes
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def built():
    graph = power_law_graph(90, 300, seed=11)
    index = FlatWalkIndex.build(graph, 5, 6, seed=12)
    return graph, index


class TestStorageParity:
    def test_validate_index_format(self):
        for fmt in INDEX_FORMATS:
            assert validate_index_format(fmt) == fmt
        with pytest.raises(ParameterError):
            validate_index_format("sparse")

    def test_variants_hold_identical_entries(self, built):
        _, index = built
        for fmt in INDEX_FORMATS:
            variant = as_format(index, fmt)
            assert variant.storage_format == fmt
            np.testing.assert_array_equal(variant.indptr, index.indptr)
            np.testing.assert_array_equal(variant.state, index.state)
            np.testing.assert_array_equal(variant.hop, index.hop)
            assert variant.state.dtype == index.state.dtype
            assert variant.hop.dtype == index.hop.dtype

    def test_per_node_slices_agree(self, built):
        _, index = built
        compressed = index.compress()
        for node in range(index.num_nodes):
            ds, dh = index.entries_for(node)
            cs, ch = compressed.entries_for(node)
            np.testing.assert_array_equal(cs, ds)
            np.testing.assert_array_equal(ch, dh)

    def test_packed_rows_for_matches_full_rows(self, built):
        _, index = built
        full = index.packed_hit_rows(include_self=True)
        compressed = index.compress()
        for lo, hi in [(0, 1), (7, 23), (0, index.num_nodes),
                       (index.num_nodes - 1, index.num_nodes)]:
            np.testing.assert_array_equal(
                compressed.packed_rows_for(lo, hi), full[lo:hi]
            )
        np.testing.assert_array_equal(
            compressed.packed_rows_for(0, index.num_nodes,
                                       include_self=False),
            index.packed_hit_rows(include_self=False),
        )

    def test_compression_shrinks_entry_bytes(self, built):
        _, index = built
        assert index.compress().storage_nbytes() < index.storage_nbytes()

    def test_densify_round_trip(self, built):
        _, index = built
        back = index.compress().densify()
        assert back.storage_format == "dense"
        np.testing.assert_array_equal(back.state, index.state)
        np.testing.assert_array_equal(back.hop, index.hop)

    def test_non_canonical_order_rejected(self):
        graph = ring_graph(8)
        index = FlatWalkIndex.build(graph, 3, 2, seed=1)
        state = index.state.copy()
        if state.size >= 2:
            # Swap two entries within the largest block.
            counts = np.diff(index.indptr)
            node = int(np.argmax(counts))
            lo = int(index.indptr[node])
            state[lo], state[lo + 1] = state[lo + 1], state[lo]
        with pytest.raises(ParameterError, match="canonical"):
            CompressedStorage.from_arrays(index.indptr, state, index.hop)

    def test_empty_index_compresses(self):
        from repro.graphs.builder import GraphBuilder

        builder = GraphBuilder()
        builder.touch_node(5)
        index = FlatWalkIndex.build(builder.build(), 3, 2, seed=5)
        compressed = index.compress()
        assert compressed.total_entries == 0
        np.testing.assert_array_equal(compressed.state, index.state)
        star = FlatWalkIndex.build(star_graph(6), 2, 3, seed=6)
        np.testing.assert_array_equal(
            star.compress().state, star.state
        )


# ----------------------------------------------------------------------
# Coverage kernel on compressed storage
# ----------------------------------------------------------------------
class TestKernelOnCompressed:
    def test_kernel_defaults_to_streaming_rows(self, built):
        _, index = built
        assert CoverageKernel.from_index(index).rows is not None
        kernel = CoverageKernel.from_index(index.compress())
        assert kernel._materialize_rows is False

    @pytest.mark.parametrize("backend", GAIN_BACKENDS)
    def test_selections_identical(self, built, backend):
        graph, index = built
        reference = approx_greedy_fast(
            graph, 8, index.length, index=index, objective="f2",
            gain_backend=backend,
        )
        for fmt in ("compressed", "mmap"):
            got = approx_greedy_fast(
                graph, 8, index.length, index=as_format(index, fmt),
                objective="f2", gain_backend=backend,
            )
            assert got.selected == reference.selected, fmt
            assert got.gains == reference.gains, fmt

    def test_f1_objective_identical(self, built):
        graph, index = built
        reference = approx_greedy_fast(
            graph, 6, index.length, index=index, objective="f1"
        )
        got = approx_greedy_fast(
            graph, 6, index.length, index=index.compress(), objective="f1"
        )
        assert got.selected == reference.selected
        assert got.gains == reference.gains

    def test_materialize_override(self, built):
        """Forcing materialization on compressed storage must agree with
        the streaming default (same decoded rows either way)."""
        graph, index = built
        compressed = index.compress()
        eager = CoverageKernel.from_index(
            compressed, objective="f2", materialize_rows=True
        )
        lazy = CoverageKernel.from_index(compressed, objective="f2")
        np.testing.assert_array_equal(
            eager.refresh_gains(), lazy.refresh_gains()
        )
