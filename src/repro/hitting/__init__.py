"""Exact hitting-time machinery: DP recursions, transition ops, bounds."""

from repro.hitting.bounds import (
    delta_for_sample_size,
    epsilon_for_sample_size,
    hoeffding_tail,
    sample_size_f1,
    sample_size_f2,
)
from repro.hitting.exact import (
    hit_probability_horizons,
    hit_probability_vector,
    hitting_time_horizons,
    hitting_time_matrix,
    hitting_time_vector,
    pairwise_hitting_time,
)
from repro.hitting.weighted import (
    weighted_hit_probability_vector,
    weighted_hitting_time_vector,
    weighted_transition_matrix,
)
from repro.hitting.transition import (
    absorbing_restriction,
    target_mask,
    transition_matrix,
)

__all__ = [
    "delta_for_sample_size",
    "epsilon_for_sample_size",
    "hoeffding_tail",
    "sample_size_f1",
    "sample_size_f2",
    "hit_probability_horizons",
    "hit_probability_vector",
    "hitting_time_horizons",
    "hitting_time_matrix",
    "hitting_time_vector",
    "pairwise_hitting_time",
    "absorbing_restriction",
    "target_mask",
    "transition_matrix",
    "weighted_hit_probability_vector",
    "weighted_hitting_time_vector",
    "weighted_transition_matrix",
]
