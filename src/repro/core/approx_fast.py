"""Approximate greedy — Algorithm 6 on the vectorized index engine.

Same estimator semantics as :mod:`repro.core.approx_greedy` (tests assert
exact agreement on shared walks), but all inner loops become numpy array
passes over the :class:`~repro.walks.index.FlatWalkIndex`:

* The ``D[1:R][1:n]`` matrix is one flat integer array ``d`` of length
  ``R * n``; index entry ``<v hits u at hop w, replicate i>`` touches
  ``d[i * n + v]``, which is exactly the pre-computed ``state`` column of
  the flat index.
* A full gain sweep (gain of *every* candidate) is: per-entry contribution
  ``max(D[state] - hop, 0)`` (Problem 1) or ``1 - D[state]`` (Problem 2),
  group-summed by hit node with an exact integer cumulative sum, plus the
  per-node column sums of ``D``.  One pass over the index — ``O(n R L)`` —
  matches the per-round cost the paper proves for Algorithm 6.
* Selecting ``u`` relaxes ``d`` on the entry slice of ``u`` only.

On top of the paper's full-sweep loop this engine optionally runs CELF lazy
evaluation (``lazy=True``, the default): the per-replicate estimated
objectives are genuine coverage-type submodular functions, so stale gains
are valid upper bounds and the selected set provably matches the full sweep
under the same smaller-id tie-breaking, while touching only the entry slices
of re-evaluated candidates.

``gain_backend`` selects the marginal-gain machinery (DESIGN.md §8):
``"entries"`` is the per-entry array path described above, ``"bitset"``
routes every query through the bit-packed
:class:`~repro.core.coverage_kernel.CoverageKernel`, which keeps all gains
materialized and propagates per-selection deltas instead of re-scanning the
index.  The two backends are bit-identical — same gains, same selections —
and differ only in speed and memory.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro import obs
from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.core.coverage_kernel import (
    CoverageKernel,
    validate_gain_backend,
    validate_rows_format,
)
from repro.core.result import SelectionResult
from repro.walks.backends import WalkEngine, get_engine
from repro.walks.index import FlatWalkIndex

__all__ = ["FastApproxEngine", "approx_greedy_fast"]

_OBJECTIVES = ("f1", "f2")


class FastApproxEngine:
    """Mutable Algorithm 6 state over a flat walk index.

    The engine owns the gain state and exposes gain queries and selection
    updates; :func:`approx_greedy_fast` drives it, and the extension solvers
    (:mod:`repro.core.coverage`, :mod:`repro.core.combined`) reuse it.  With
    ``gain_backend="entries"`` that state is the flat ``d`` array; with
    ``"bitset"`` it lives in a :class:`~repro.core.coverage_kernel.CoverageKernel`
    (and ``self.d`` is ``None``).
    """

    def __init__(
        self,
        index: FlatWalkIndex,
        objective: str = "f1",
        gain_backend: "str | None" = None,
        rows_format: "str | None" = None,
    ):
        if objective not in _OBJECTIVES:
            raise ParameterError(f"objective must be one of {_OBJECTIVES}")
        self.index = index
        self.objective = objective
        self.gain_backend = validate_gain_backend(gain_backend)
        n = index.num_nodes
        r = index.num_replicates
        if self.gain_backend == "bitset":
            self._kernel = CoverageKernel.from_index(
                index, objective, rows_format=rows_format
            )
            self.d = None
        else:
            # Coverage rows only exist in the bitset kernel; still reject
            # typos instead of silently ignoring the knob.
            validate_rows_format(rows_format)
            self._kernel = None
            if objective == "f1":
                fill = index.length
                self.d = np.full(n * r, fill, dtype=np.int32)
            else:
                self.d = np.zeros(n * r, dtype=np.int32)
        self._chosen = np.zeros(n, dtype=bool)
        # On compressed storage every states_for is a block decode, and
        # CELF re-evaluates its hot candidates across rounds — memoize
        # decoded blocks for this solve.  The cache is bounded by the
        # dense state array's size, lives only as long as the engine, and
        # entries are immutable, so sharing them is safe.
        self._block_cache: "dict[int, np.ndarray] | None" = (
            {} if index.storage_format == "compressed" else None
        )
        self.selected: list[int] = []
        self.gains: list[float] = []
        self.num_gain_evaluations = 0
        # Plain-int telemetry accumulators: incremented unconditionally in
        # the hot paths (cheaper than a branch) and flushed to the metrics
        # registry once per solve by the driver when telemetry is on.
        self.num_full_sweeps = 0
        self.block_cache_hits = 0
        self.block_cache_misses = 0

    def _states_of(self, node: int) -> np.ndarray:
        """``index.states_for`` with per-solve memoization (see above)."""
        cache = self._block_cache
        if cache is None:
            return self.index.states_for(node)
        states = cache.get(node)
        if states is None:
            self.block_cache_misses += 1
            states = cache[node] = self.index.states_for(node)
        else:
            self.block_cache_hits += 1
        return states

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.index.num_nodes

    @property
    def num_replicates(self) -> int:
        return self.index.num_replicates

    def distance_matrix(self) -> np.ndarray:
        """Current ``D`` as an ``(R, n)`` view (copy), for inspection."""
        if self._kernel is not None:
            return self._kernel.distance_matrix()
        return self.d.reshape(self.num_replicates, self.num_nodes).copy()

    # ------------------------------------------------------------------
    def gains_all(self) -> np.ndarray:
        """Raw gain sums (``sigma_u * R``) for every node.

        Kept as integers times ``R`` to stay exact; divide by ``R`` to match
        :func:`repro.core.approx_greedy.approx_gain`.  The entry backend
        pays one index pass; the bitset kernel returns its maintained gains.
        """
        self.num_full_sweeps += 1
        if self._kernel is not None:
            self.num_gain_evaluations += self.num_nodes
            return self._kernel.gains_all()
        index = self.index
        n = self.num_nodes
        if self.objective == "f2" and not self.d.any():
            # Nothing covered yet: every entry contributes exactly 1, so
            # the sweep is ``R + per-node entry counts`` — no state pass.
            # This is the first sweep of every fresh solve, and on
            # compressed storage it skips the full entry-stream decode.
            self.num_gain_evaluations += n
            return self.num_replicates + np.diff(index.indptr)
        # One materialization per sweep: ``state`` is a property that
        # decodes on every access for compressed storage, so localize it
        # (and ``hop``) before the arithmetic touches them repeatedly.
        state = index.state
        if self.objective == "f1":
            contrib = self.d[state].astype(np.int64) - index.hop
            np.maximum(contrib, 0, out=contrib)
        else:
            contrib = 1 - self.d[state].astype(np.int64)
        # Exact group sums by hit node: cumulative sum differences.  All
        # contributions are integers, so int64 cumsum is exact.
        running = np.zeros(state.size + 1, dtype=np.int64)
        np.cumsum(contrib, out=running[1:])
        entry_sums = running[index.indptr[1:]] - running[index.indptr[:-1]]
        if self.objective == "f1":
            base = self.d.reshape(self.num_replicates, n).sum(
                axis=0, dtype=np.int64
            )
        else:
            base = self.num_replicates - self.d.reshape(
                self.num_replicates, n
            ).sum(axis=0, dtype=np.int64)
        self.num_gain_evaluations += n
        return base + entry_sums

    def gain_of(self, node: int) -> int:
        """Raw gain sum (``sigma_u * R``) of a single candidate."""
        if not 0 <= node < self.num_nodes:
            raise ParameterError(f"node {node} out of range")
        if self._kernel is not None:
            self.num_gain_evaluations += 1
            return self._kernel.gain_of(node)
        if self.objective == "f1":
            state, hop = self.index.entries_for(node)
            contrib = self.d[state].astype(np.int64) - hop
            np.maximum(contrib, 0, out=contrib)
            base = int(
                self.d[node :: self.num_nodes].sum(dtype=np.int64)
            )
            self.num_gain_evaluations += 1
            return base + int(contrib.sum())
        # f2 never reads hops; skip their decode on compressed storage.
        # sum(1 - d[state]) == size - sum(d[state]) in two fewer passes.
        state = self._states_of(node)
        base = self.num_replicates - int(
            self.d[node :: self.num_nodes].sum(dtype=np.int64)
        )
        self.num_gain_evaluations += 1
        return base + int(state.size) - int(
            self.d[state].sum(dtype=np.int64)
        )

    def select(self, node: int, gain: "float | None" = None) -> None:
        """Commit one selection: record it and run Algorithm 5's update."""
        if self._chosen[node]:
            raise ParameterError(f"node {node} already selected")
        if self._kernel is not None:
            self._kernel.select(node)
            self._chosen[node] = True
            self.selected.append(int(node))
            self.gains.append(
                float(gain) / self.num_replicates
                if gain is not None
                else float("nan")
            )
            return
        if self.objective == "f1":
            state, hop = self.index.entries_for(node)
            self.d[node :: self.num_nodes] = 0
            # First-visit dedup guarantees one entry per (replicate, walker)
            # pair per hit node, so plain fancy assignment is race-free.
            self.d[state] = np.minimum(self.d[state], hop)
        else:
            self.d[node :: self.num_nodes] = 1
            self.d[self._states_of(node)] = 1
        self._chosen[node] = True
        self.selected.append(int(node))
        self.gains.append(
            float(gain) / self.num_replicates if gain is not None else float("nan")
        )

    # ------------------------------------------------------------------
    def run(self, k: int, lazy: bool = True) -> None:
        """Greedily select ``k`` nodes (continuing any prior selections)."""
        if not 0 <= k <= self.num_nodes - len(self.selected):
            raise ParameterError("k out of range for remaining candidates")
        if lazy:
            self._run_lazy(k)
        else:
            self._run_full(k)

    def _run_full(self, k: int) -> None:
        for _ in range(k):
            gains = self.gains_all()
            gains[self._chosen] = np.iinfo(np.int64).min
            best = int(gains.argmax())  # argmax takes the smallest id on ties
            self.select(best, gain=float(gains[best]))

    def _run_lazy(self, k: int) -> None:
        if k == 0:
            return
        gains = self.gains_all()
        stamp = len(self.selected)  # selections already folded into d
        heap = [
            (-int(gains[u]), u, stamp)
            for u in range(self.num_nodes)
            if not self._chosen[u]
        ]
        heapq.heapify(heap)
        for _ in range(k):
            current = len(self.selected)
            while True:
                neg_gain, node, seen = heapq.heappop(heap)
                if seen == current:
                    self.select(node, gain=float(-neg_gain))
                    break
                fresh = self.gain_of(node)
                heapq.heappush(heap, (-fresh, node, current))


def approx_greedy_fast(
    graph: Graph,
    k: int,
    length: int,
    num_replicates: int = 100,
    objective: str = "f1",
    seed: "int | np.random.Generator | None" = None,
    index: FlatWalkIndex | None = None,
    lazy: bool = True,
    engine: "str | WalkEngine | None" = None,
    gain_backend: "str | None" = None,
    rows_format: "str | None" = None,
) -> SelectionResult:
    """Algorithm 6 on the vectorized engine (``ApproxF1`` / ``ApproxF2``).

    Drop-in equivalent of :func:`repro.core.approx_greedy.approx_greedy`
    (same estimator, same tie-breaking); ``lazy`` switches between CELF and
    the paper's full sweep, which produce the same selection and differ only
    in work.  Supply a prebuilt ``index`` to reuse walks across runs.
    ``engine`` picks the walk backend used to materialize the index
    (:mod:`repro.walks.backends`; ignored when ``index`` is supplied); the
    ``"numpy"`` and ``"csr"`` backends yield identical selections under
    the same seed.  ``gain_backend`` picks the marginal-gain machinery
    (``"entries"`` or ``"bitset"``, see
    :mod:`repro.core.coverage_kernel`); both produce identical selections.
    ``rows_format`` picks the bitset kernel's coverage-row representation
    (``"dense"``, ``"stream"``, or ``"compressed"``; selections are
    bit-identical across all three) and is ignored by the entries backend
    beyond name validation.
    """
    if not 0 <= k <= graph.num_nodes:
        raise ParameterError(f"k={k} must lie in [0, n={graph.num_nodes}]")
    gain_backend = validate_gain_backend(gain_backend)
    walk_engine = get_engine(engine)
    started = time.perf_counter()
    with obs.span(
        "solve.greedy", objective=objective, k=k, gain_backend=gain_backend
    ):
        if index is None:
            index = FlatWalkIndex.build(
                graph, length, num_replicates, seed=seed, engine=walk_engine
            )
        elif index.num_nodes != graph.num_nodes:
            raise ParameterError("index was built for a different graph size")
        engine = FastApproxEngine(
            index,
            objective=objective,
            gain_backend=gain_backend,
            rows_format=rows_format,
        )
        engine.run(k, lazy=lazy)
    elapsed = time.perf_counter() - started
    if obs.enabled():
        labels = {"objective": objective, "gain_backend": gain_backend}
        obs.inc("solver_runs_total", help="Completed greedy solves.", **labels)
        obs.inc(
            "solver_gain_evaluations_total",
            engine.num_gain_evaluations,
            help="Marginal-gain evaluations across solves.",
            **labels,
        )
        obs.inc(
            "solver_full_sweeps_total",
            engine.num_full_sweeps,
            help="Full gain sweeps (kernel passes) across solves.",
            **labels,
        )
        obs.inc(
            "solver_block_cache_hits_total",
            engine.block_cache_hits,
            help="Decoded-block cache hits (compressed storage).",
        )
        obs.inc(
            "solver_block_cache_misses_total",
            engine.block_cache_misses,
            help="Decoded-block cache misses (compressed storage).",
        )
        obs.observe(
            "solver_solve_seconds",
            elapsed,
            help="End-to-end greedy solve wall time.",
            objective=objective,
        )
    name = "ApproxF1" if objective == "f1" else "ApproxF2"
    return SelectionResult(
        algorithm=name,
        selected=tuple(engine.selected),
        gains=tuple(engine.gains),
        elapsed_seconds=elapsed,
        num_gain_evaluations=engine.num_gain_evaluations,
        params={
            "k": k,
            "L": index.length,
            "R": index.num_replicates,
            "method": "approx-fast",
            "objective": objective,
            "engine": "vectorized",
            "walk_engine": walk_engine.name,
            "gain_backend": gain_backend,
            "lazy": lazy,
        },
    )
