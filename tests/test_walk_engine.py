"""Tests for the L-length random-walk engine."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.generators import path_graph
from repro.walks.engine import (
    batch_first_hits,
    batch_walks,
    first_hit_time,
    random_walk,
    walk_is_valid,
)


class TestRandomWalk:
    def test_length_and_start(self, small_power_law):
        walk = random_walk(small_power_law, 3, 7, seed=1)
        assert len(walk) == 8
        assert walk[0] == 3

    def test_all_steps_are_edges(self, small_power_law):
        walk = random_walk(small_power_law, 0, 20, seed=2)
        assert walk_is_valid(small_power_law, walk)

    def test_zero_length(self, small_power_law):
        assert random_walk(small_power_law, 5, 0, seed=1) == [5]

    def test_deterministic_by_seed(self, small_power_law):
        a = random_walk(small_power_law, 0, 10, seed=3)
        b = random_walk(small_power_law, 0, 10, seed=3)
        assert a == b

    def test_dangling_node_stays(self):
        g = Graph.from_edges([(0, 1)], num_nodes=3)
        assert random_walk(g, 2, 4, seed=1) == [2, 2, 2, 2, 2]

    def test_invalid_args(self, small_power_law):
        with pytest.raises(ParameterError):
            random_walk(small_power_law, 0, -1)
        with pytest.raises(ParameterError):
            random_walk(small_power_law, 999, 2)


class TestBatchWalks:
    def test_shape_and_starts(self, small_power_law):
        starts = np.array([0, 1, 2, 2])
        walks = batch_walks(small_power_law, starts, 5, seed=1)
        assert walks.shape == (4, 6)
        assert walks[:, 0].tolist() == [0, 1, 2, 2]

    def test_every_transition_is_an_edge(self, small_power_law):
        starts = np.arange(small_power_law.num_nodes)
        walks = batch_walks(small_power_law, starts, 8, seed=4)
        for row in walks:
            assert walk_is_valid(small_power_law, row.tolist())

    def test_zero_length(self, small_power_law):
        walks = batch_walks(small_power_law, [1, 2], 0, seed=1)
        assert walks.shape == (2, 1)

    def test_empty_batch(self, small_power_law):
        walks = batch_walks(small_power_law, [], 5, seed=1)
        assert walks.shape == (0, 6)

    def test_dangling_stays(self):
        g = Graph.from_edges([(0, 1)], num_nodes=3)
        walks = batch_walks(g, [2, 2], 3, seed=1)
        assert (walks == 2).all()

    def test_out_of_range_start(self, small_power_law):
        with pytest.raises(ParameterError):
            batch_walks(small_power_law, [0, 999], 3)

    def test_uniform_neighbor_choice(self):
        # From the center of a star every leaf should be roughly equally
        # likely at step 1.
        from repro.graphs.generators import star_graph

        g = star_graph(4)
        walks = batch_walks(g, np.zeros(8000, dtype=int), 1, seed=5)
        counts = np.bincount(walks[:, 1], minlength=5)[1:]
        assert counts.min() > 0.8 * counts.mean()

    def test_path_parity(self):
        # On a path, position after one step differs by exactly 1.
        g = path_graph(10)
        walks = batch_walks(g, np.full(100, 5), 1, seed=6)
        assert set(np.abs(walks[:, 1] - 5).tolist()) == {1}


class TestFirstHit:
    def test_hit_at_start(self):
        assert first_hit_time([3, 1, 2], {3}) == 0

    def test_hit_later(self):
        assert first_hit_time([3, 1, 2], {2}) == 2

    def test_miss(self):
        assert first_hit_time([3, 1, 2], {9}) is None

    def test_empty_targets(self):
        assert first_hit_time([3, 1, 2], set()) is None

    def test_batch_matches_scalar(self, small_power_law):
        starts = np.arange(small_power_law.num_nodes)
        walks = batch_walks(small_power_law, starts, 6, seed=7)
        targets = {0, 5, 9}
        mask = np.zeros(small_power_law.num_nodes, dtype=bool)
        mask[list(targets)] = True
        batch = batch_first_hits(walks, mask)
        for row, hit in zip(walks, batch):
            scalar = first_hit_time(row.tolist(), targets)
            assert (scalar if scalar is not None else -1) == hit

    def test_batch_requires_matrix(self):
        with pytest.raises(ParameterError):
            batch_first_hits(np.zeros(3, dtype=int), np.zeros(3, dtype=bool))


class TestWalkIsValid:
    def test_empty_walk_invalid(self, small_power_law):
        assert not walk_is_valid(small_power_law, [])

    def test_teleport_invalid(self, ring6):
        assert not walk_is_valid(ring6, [0, 3])

    def test_staying_invalid_for_connected_node(self, ring6):
        assert not walk_is_valid(ring6, [0, 0])
