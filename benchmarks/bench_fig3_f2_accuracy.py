"""Fig. 3: effectiveness of DPF2 vs ApproxF2 as a function of R.

Paper shape: ApproxF2's EHN tracks DPF2's closely for every R in the grid.
"""

from repro.experiments.figures import fig3


def test_fig3(benchmark, config, report):
    table = benchmark.pedantic(lambda: fig3(config), rounds=1, iterations=1)
    report(table, "fig3.txt")
    for length in (5, 10):
        dp_rows = table.filtered(L=length, algorithm="DPF2")
        dp_ehn = dp_rows[0][table.columns.index("EHN")]
        for row in table.filtered(L=length, algorithm="ApproxF2"):
            approx_ehn = row[table.columns.index("EHN")]
            assert abs(approx_ehn - dp_ehn) <= 0.05 * dp_ehn
