"""Exhaustive optimum and the empirical (1 - 1/e) guarantee."""

import math
from itertools import combinations

import pytest

import repro
from repro.core.dp_greedy import dpf1, dpf2
from repro.core.exact_optimal import optimal_select, optimal_value
from repro.core.objectives import F1Objective, F2Objective
from repro.core.approx_fast import approx_greedy_fast
from repro.errors import ParameterError
from repro.graphs.generators import (
    paper_example_graph,
    power_law_graph,
    ring_graph,
    star_graph,
    two_cluster_graph,
)

GREEDY_FACTOR = 1.0 - 1.0 / math.e


class TestOptimalSelect:
    def test_matches_brute_force_scan(self):
        graph = paper_example_graph()
        objective = F2Objective(graph, length=3)
        result = optimal_select(objective, 2)
        best = max(
            combinations(range(graph.num_nodes), 2),
            key=lambda s: objective.value(s),
        )
        assert objective.value(result.selected) == pytest.approx(
            objective.value(best)
        )

    def test_k_zero(self):
        graph = ring_graph(5)
        result = optimal_select(F1Objective(graph, 2), 0)
        assert result.selected == ()

    def test_k_equals_n(self):
        graph = ring_graph(5)
        result = optimal_select(F2Objective(graph, 2), 5)
        assert set(result.selected) == set(range(5))

    def test_refuses_large_instances(self):
        graph = power_law_graph(100, 300, seed=1)
        with pytest.raises(ParameterError):
            optimal_select(F1Objective(graph, 3), 50)

    def test_max_subsets_override(self):
        graph = ring_graph(6)
        with pytest.raises(ParameterError):
            optimal_select(F1Objective(graph, 2), 3, max_subsets=5)

    def test_rejects_bad_k(self):
        graph = ring_graph(5)
        with pytest.raises(ParameterError):
            optimal_select(F1Objective(graph, 2), 6)

    def test_star_optimum_is_center(self):
        graph = star_graph(8)
        result = optimal_select(F2Objective(graph, 2), 1)
        assert result.selected == (0,)

    def test_optimal_value_helper(self):
        graph = ring_graph(6)
        objective = F2Objective(graph, 3)
        result = optimal_select(objective, 2)
        assert optimal_value(objective, 2) == pytest.approx(
            objective.value(result.selected)
        )

    def test_two_clusters_optimum_spans_both(self):
        graph = two_cluster_graph(6, bridge_edges=1, seed=3)
        result = optimal_select(F2Objective(graph, 4), 2)
        sides = {v // 6 for v in result.selected}
        assert sides == {0, 1}


class TestApproximationGuarantee:
    """Every greedy solver must reach (1 - 1/e) * OPT on exact objectives.

    The paper's Theorem-level claim, checked end-to-end on instances small
    enough for exhaustive search.  Greedy on submodular objectives is
    usually much closer to OPT than the bound; the assertions use the bound
    itself so they can never flake.
    """

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_dpf1_guarantee(self, k):
        graph = paper_example_graph()
        objective = F1Objective(graph, length=4)
        greedy = dpf1(graph, k, 4)
        opt = optimal_value(objective, k)
        assert objective.value(greedy.selected) >= GREEDY_FACTOR * opt - 1e-9

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_dpf2_guarantee(self, k):
        graph = paper_example_graph()
        objective = F2Objective(graph, length=4)
        greedy = dpf2(graph, k, 4)
        opt = optimal_value(objective, k)
        assert objective.value(greedy.selected) >= GREEDY_FACTOR * opt - 1e-9

    def test_guarantee_on_random_graphs(self):
        for seed in (1, 2, 3):
            graph = power_law_graph(14, 30, seed=seed)
            objective = F2Objective(graph, length=3)
            greedy = dpf2(graph, 3, 3)
            opt = optimal_value(objective, 3)
            assert (
                objective.value(greedy.selected) >= GREEDY_FACTOR * opt - 1e-9
            )

    def test_approx_greedy_near_guarantee(self):
        """Sampled greedy gets 1 - 1/e - eps; allow a small sampling slack."""
        graph = power_law_graph(14, 30, seed=5)
        objective = F2Objective(graph, length=3)
        approx = approx_greedy_fast(
            graph, 3, 3, num_replicates=300, objective="f2", seed=8
        )
        opt = optimal_value(objective, 3)
        assert objective.value(approx.selected) >= (GREEDY_FACTOR - 0.05) * opt

    def test_greedy_well_above_worst_case_bound(self):
        """Greedy typically lands far above (1 - 1/e) * OPT in practice.

        On the paper's example graph with k=2, L=4 the optimum pairs two
        complementary nodes that greedy's one-at-a-time choices miss — a
        real instance of greedy sub-optimality — yet the ratio stays above
        0.9, well clear of the 0.632 worst case.
        """
        graph = paper_example_graph()
        objective = F2Objective(graph, length=4)
        greedy = dpf2(graph, 2, 4)
        opt = optimal_value(objective, 2)
        ratio = objective.value(greedy.selected) / opt
        assert GREEDY_FACTOR <= ratio < 1.0
        assert ratio > 0.9

    def test_exposed_at_top_level(self):
        assert repro.optimal_select is optimal_select
        assert repro.optimal_value is optimal_value
