"""Selection results returned by every solver in :mod:`repro.core`.

A :class:`SelectionResult` records not just the chosen set but the greedy
*order* and per-round gains, because the evaluation protocol of the paper
(Figs. 6-7) reads quality at several budgets ``k`` out of a single greedy
run — greedy selections are prefixes of each other.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["SelectionResult"]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a target-set selection.

    Attributes
    ----------
    algorithm:
        Human-readable solver name (``"DPF1"``, ``"ApproxF2"``, ...).
    selected:
        Nodes in selection order; ``selected[:k']`` is the solver's answer
        for any smaller budget ``k'``.
    gains:
        Marginal gain credited to each selection, in the solver's own
        objective scale (empty for non-greedy baselines that have no
        meaningful gain, e.g. random selection).
    elapsed_seconds:
        Wall-clock time of the selection phase (excludes graph loading).
    num_gain_evaluations:
        How many marginal-gain evaluations the solver performed; the
        lazy-vs-full ablation reads this.
    params:
        Echo of solver parameters (k, L, R, seed, ...), for provenance.
    """

    algorithm: str
    selected: tuple[int, ...]
    gains: tuple[float, ...] = ()
    elapsed_seconds: float = 0.0
    num_gain_evaluations: int = 0
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "selected", tuple(int(v) for v in self.selected))
        object.__setattr__(self, "gains", tuple(float(g) for g in self.gains))
        if len(set(self.selected)) != len(self.selected):
            raise ValueError("selected nodes must be distinct")

    @property
    def selected_set(self) -> frozenset[int]:
        """The selection as a set (order erased)."""
        return frozenset(self.selected)

    def prefix(self, k: int) -> tuple[int, ...]:
        """First ``k`` selections (the answer for budget ``k``)."""
        if k < 0:
            raise ValueError("k must be non-negative")
        return self.selected[:k]

    def summary(self) -> str:
        """One-line description for logs."""
        return (
            f"{self.algorithm}: |S|={len(self.selected)} "
            f"in {self.elapsed_seconds:.3f}s "
            f"({self.num_gain_evaluations} gain evals)"
        )

    # ------------------------------------------------------------------
    # Serialization (CLI output, experiment archiving)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form with only JSON-representable values."""
        return {
            "algorithm": self.algorithm,
            "selected": list(self.selected),
            "gains": list(self.gains),
            "elapsed_seconds": self.elapsed_seconds,
            "num_gain_evaluations": self.num_gain_evaluations,
            "params": {k: _jsonable(v) for k, v in self.params.items()},
        }

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SelectionResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            algorithm=data["algorithm"],
            selected=tuple(data["selected"]),
            gains=tuple(data.get("gains", ())),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            num_gain_evaluations=int(data.get("num_gain_evaluations", 0)),
            params=dict(data.get("params", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "SelectionResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars and other oddities to JSON-friendly values."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def as_node_tuple(nodes: Sequence[int]) -> tuple[int, ...]:
    """Normalize a node sequence to a tuple of ints (shared helper)."""
    return tuple(int(v) for v in nodes)
