"""Walk dispatch shared by the simulators.

The simulators accept either the undirected :class:`~repro.graphs.adjacency.
Graph` or the directed, weighted :class:`~repro.graphs.weighted.
WeightedDiGraph` (the paper's Section 2 extension) — a browsing user in a
trust network follows recommendations with probability proportional to
trust.  This module hides the walk-backend dispatch so each simulator is
written once: the graph flavor and the ``engine=`` selection
(:mod:`repro.walks.backends`) are both resolved here.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.adjacency import Graph
from repro.graphs.weighted import WeightedDiGraph
from repro.walks.backends import WalkEngine, get_engine

__all__ = ["run_walks", "run_first_hits", "node_count"]


def node_count(graph: "Graph | WeightedDiGraph") -> int:
    """Node count for either graph flavor."""
    return graph.num_nodes


def run_walks(
    graph: "Graph | WeightedDiGraph",
    starts: np.ndarray,
    length: int,
    rng: np.random.Generator,
    engine: "str | WalkEngine | None" = None,
) -> np.ndarray:
    """Batch of L-length walks on an unweighted or weighted graph."""
    return get_engine(engine).run_walks(graph, starts, length, seed=rng)


def run_first_hits(
    graph: "Graph | WeightedDiGraph",
    starts: np.ndarray,
    length: int,
    target_mask: np.ndarray,
    rng: np.random.Generator,
    engine: "str | WalkEngine | None" = None,
) -> np.ndarray:
    """First-hit hop per walk (``-1`` on miss), without keeping the walks.

    The CSR backend fuses walk generation with hit detection, so a
    simulation never materializes its ``(sessions, L+1)`` walk matrix.
    """
    return get_engine(engine).walk_first_hits(
        graph, starts, length, target_mask, seed=rng
    )
