"""Typed JSON request/response schemas for the HTTP serving tier.

The wire format of :mod:`repro.serve.http` (DESIGN.md §12.1).  Each query
kind accepted by :class:`~repro.serve.service.DominationService` has one
frozen request dataclass, and :func:`decode_request` turns a parsed JSON
body into that dataclass — or raises
:class:`~repro.errors.ParameterError` naming the offending field, the
same context discipline as the line numbers of
:func:`repro.serve.loadgen.parse_workload`.  Validation here is
*structural* (types, enumerations, unknown fields); range checks against
the served graph (``k <= n``, target ids in range, reachable coverage
fractions) stay inside the service, which raises the same
``ParameterError`` the direct solver call would.

The encode/decode pair round-trips exactly::

    decode_request(*encode_request(req)) == req

for every valid request, which is what lets the HTTP load generator and
the property suite (``tests/test_http_serve.py``) assert wire answers
bit-identical to in-process calls.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from math import isfinite
from typing import TYPE_CHECKING, Any

from repro.errors import ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.service import DominationService

__all__ = [
    "REQUEST_KINDS",
    "SelectRequest",
    "MetricsRequest",
    "CoverageRequest",
    "MinTargetsRequest",
    "decode_request",
    "encode_request",
    "encode_response",
]

#: Query kinds with a wire schema, in the order they are documented.
#: These are the path segments of ``POST /query/<kind>`` — note
#: ``min_targets`` (underscore, like the service method), where workload
#: files spell the same query ``min-targets``.
REQUEST_KINDS = ("select", "metrics", "coverage", "min_targets")

_OBJECTIVES = ("f1", "f2")


@dataclass(frozen=True)
class SelectRequest:
    """``POST /query/select`` — best-``k`` placement."""

    k: int
    objective: str = "f2"

    kind = "select"

    def issue(self, service: "DominationService"):
        return service.select(self.k, objective=self.objective)


@dataclass(frozen=True)
class MetricsRequest:
    """``POST /query/metrics`` — sampled coverage/AHT of a placement."""

    targets: tuple[int, ...]

    kind = "metrics"

    def issue(self, service: "DominationService"):
        return service.metrics(self.targets)


@dataclass(frozen=True)
class CoverageRequest:
    """``POST /query/coverage`` — covered fraction of a placement."""

    targets: tuple[int, ...]

    kind = "coverage"

    def issue(self, service: "DominationService"):
        return service.coverage(self.targets)


@dataclass(frozen=True)
class MinTargetsRequest:
    """``POST /query/min_targets`` — smallest set reaching a coverage."""

    fraction: float
    max_size: "int | None" = None

    kind = "min_targets"

    def issue(self, service: "DominationService"):
        return service.min_targets(self.fraction, max_size=self.max_size)


# ----------------------------------------------------------------------
# Field decoders.  Each raises ParameterError with a message fragment;
# decode_request prefixes the kind/field context.  bool is explicitly
# rejected wherever an int is expected — JSON true/false would otherwise
# pass isinstance(int) and silently become 1/0.
# ----------------------------------------------------------------------
def _decode_int(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ParameterError(f"expected an integer, got {value!r}")
    return int(value)


def _decode_objective(value: Any) -> str:
    if not isinstance(value, str) or value not in _OBJECTIVES:
        raise ParameterError(
            f"expected one of {_OBJECTIVES}, got {value!r}"
        )
    return value


def _decode_targets(value: Any) -> tuple[int, ...]:
    if not isinstance(value, (list, tuple)):
        raise ParameterError(
            f"expected an array of node ids, got {value!r}"
        )
    return tuple(_decode_int(item) for item in value)


def _decode_fraction(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ParameterError(f"expected a number, got {value!r}")
    result = float(value)
    if not isfinite(result):
        raise ParameterError(f"expected a finite number, got {value!r}")
    return result


def _decode_max_size(value: Any) -> "int | None":
    if value is None:
        return None
    return _decode_int(value)


#: ``kind -> (request class, {field: (decoder, required)})``.  The field
#: tables mirror the dataclass fields exactly, which is what makes the
#: encode/decode round-trip an identity.
_SPECS: dict[str, tuple[type, dict[str, tuple]]] = {
    "select": (
        SelectRequest,
        {"k": (_decode_int, True), "objective": (_decode_objective, False)},
    ),
    "metrics": (MetricsRequest, {"targets": (_decode_targets, True)}),
    "coverage": (CoverageRequest, {"targets": (_decode_targets, True)}),
    "min_targets": (
        MinTargetsRequest,
        {
            "fraction": (_decode_fraction, True),
            "max_size": (_decode_max_size, False),
        },
    ),
}


def decode_request(kind: str, payload: Any):
    """Validate a parsed JSON body into the request dataclass for ``kind``.

    Raises :class:`~repro.errors.ParameterError` with kind and field
    context on an unknown kind, a non-object body, unknown or missing
    fields, or a field value of the wrong shape.  Never raises anything
    else, whatever the payload — the HTTP tier relies on that to turn
    every malformed body into a typed 4xx instead of a traceback.
    """
    if kind not in _SPECS:
        raise ParameterError(
            f"unknown query kind {kind!r} (expected one of {REQUEST_KINDS})"
        )
    if not isinstance(payload, dict):
        raise ParameterError(
            f"{kind} request body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    cls, spec = _SPECS[kind]
    unknown = sorted(set(payload) - set(spec))
    if unknown:
        raise ParameterError(
            f"{kind} request: unknown field(s) {', '.join(map(repr, unknown))} "
            f"(expected {', '.join(map(repr, spec))})"
        )
    kwargs = {}
    for name, (decode, required) in spec.items():
        if name not in payload:
            if required:
                raise ParameterError(
                    f"{kind} request: missing required field {name!r}"
                )
            continue
        try:
            kwargs[name] = decode(payload[name])
        except ParameterError as exc:
            raise ParameterError(
                f"{kind} request field {name!r}: {exc}"
            ) from None
    return cls(**kwargs)


def encode_request(request) -> tuple[str, dict]:
    """``(kind, JSON-ready payload)`` for a request dataclass.

    Inverse of :func:`decode_request`; tuples become JSON arrays.
    """
    payload = {}
    for field in fields(request):
        value = getattr(request, field.name)
        payload[field.name] = list(value) if isinstance(value, tuple) else value
    return request.kind, payload


def encode_response(kind: str, value) -> dict:
    """JSON-ready body for one answered query.

    ``select``/``min_targets`` serialize the full
    :class:`~repro.core.result.SelectionResult` (its ``to_dict`` form, so
    ``selected``/``gains`` survive the wire bit-exactly — ``json`` emits
    ``repr``-round-trippable floats); ``metrics`` and ``coverage`` wrap
    their plain values.
    """
    if kind in ("select", "min_targets"):
        return value.to_dict()
    if kind == "metrics":
        return {"metrics": {k: float(v) for k, v in value.items()}}
    if kind == "coverage":
        return {"coverage_fraction": float(value)}
    raise ParameterError(
        f"unknown query kind {kind!r} (expected one of {REQUEST_KINDS})"
    )
