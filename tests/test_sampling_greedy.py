"""Tests for the sampling-based greedy (Algorithm 1 + Algorithm 2 gains)."""


from repro.graphs.generators import star_graph
from repro.core.dp_greedy import dpf1, dpf2
from repro.core.objectives import F1Objective, F2Objective
from repro.core.sampling_greedy import sampling_greedy_f1, sampling_greedy_f2


class TestSelectionQuality:
    def test_star_center_first(self):
        result = sampling_greedy_f2(star_graph(8), 1, 2, num_replicates=200, seed=1)
        assert result.selected == (0,)

    def test_close_to_dp_on_small_graph(self, small_power_law):
        # With enough samples the noisy greedy should land within a few
        # percent of the DP greedy's objective value.
        k, length = 4, 4
        dp = dpf1(small_power_law, k, length)
        sampled = sampling_greedy_f1(
            small_power_law, k, length, num_replicates=300, seed=2
        )
        objective = F1Objective(small_power_law, length)
        assert objective.value(set(sampled.selected)) >= 0.9 * objective.value(
            set(dp.selected)
        )

    def test_f2_variant(self, small_power_law):
        k, length = 4, 4
        dp = dpf2(small_power_law, k, length)
        sampled = sampling_greedy_f2(
            small_power_law, k, length, num_replicates=300, seed=3
        )
        objective = F2Objective(small_power_law, length)
        assert objective.value(set(sampled.selected)) >= 0.9 * objective.value(
            set(dp.selected)
        )


class TestDeterminism:
    def test_same_seed_same_selection(self, small_power_law):
        a = sampling_greedy_f1(small_power_law, 3, 3, num_replicates=50, seed=7)
        b = sampling_greedy_f1(small_power_law, 3, 3, num_replicates=50, seed=7)
        assert a.selected == b.selected


class TestMetadata:
    def test_params(self, small_power_law):
        result = sampling_greedy_f1(
            small_power_law, 2, 3, num_replicates=20, seed=1
        )
        assert result.params["R"] == 20
        assert result.algorithm == "SamplingF1"

    def test_distinct_selection(self, small_power_law):
        result = sampling_greedy_f2(
            small_power_law, 5, 3, num_replicates=30, seed=4
        )
        assert len(set(result.selected)) == 5
