"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`RwdomError`, so callers can catch library failures with a single
``except RwdomError`` clause while programming errors (plain ``TypeError``,
``AttributeError``, ...) still propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "RwdomError",
    "ParameterError",
    "GraphFormatError",
    "DatasetError",
]


class RwdomError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(RwdomError, ValueError):
    """An argument value is outside its documented domain.

    Also a :class:`ValueError` so that generic validation code that expects
    ``ValueError`` keeps working.
    """


class GraphFormatError(RwdomError, ValueError):
    """An edge-list file or in-memory edge description is malformed."""


class DatasetError(RwdomError, KeyError):
    """An unknown dataset name was requested from the registry."""
