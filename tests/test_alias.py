"""Tests for the alias-method weighted walk sampler."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.generators import power_law_graph
from repro.graphs.weighted import WeightedDiGraph
from repro.walks.alias import (
    AliasSampler,
    weighted_batch_walks,
    weighted_random_walk,
)


class TestAliasDistribution:
    def test_two_to_one_weighting(self):
        # From 0: edge to 1 has weight 2, edge to 2 has weight 1.
        g = WeightedDiGraph.from_edges([(0, 1, 2.0), (0, 2, 1.0)])
        sampler = AliasSampler(g)
        rng = np.random.default_rng(1)
        current = np.zeros(30_000, dtype=np.int64)
        nxt = sampler.step(current, rng)
        frac_to_1 = (nxt == 1).mean()
        assert frac_to_1 == pytest.approx(2 / 3, abs=0.02)

    def test_uniform_weights_match_unweighted(self):
        g = WeightedDiGraph.from_edges(
            [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0)]
        )
        sampler = AliasSampler(g)
        rng = np.random.default_rng(2)
        nxt = sampler.step(np.zeros(40_000, dtype=np.int64), rng)
        counts = np.bincount(nxt, minlength=5)[1:]
        assert counts.min() > 0.9 * counts.mean()

    def test_extreme_skew(self):
        g = WeightedDiGraph.from_edges([(0, 1, 1000.0), (0, 2, 1.0)])
        sampler = AliasSampler(g)
        rng = np.random.default_rng(3)
        nxt = sampler.step(np.zeros(20_000, dtype=np.int64), rng)
        assert (nxt == 1).mean() > 0.99

    def test_many_edges_distribution(self):
        rng = np.random.default_rng(4)
        weights = rng.random(12) + 0.05
        g = WeightedDiGraph.from_edges(
            [(0, i + 1, float(w)) for i, w in enumerate(weights)]
        )
        sampler = AliasSampler(g)
        nxt = sampler.step(np.zeros(120_000, dtype=np.int64), np.random.default_rng(5))
        counts = np.bincount(nxt, minlength=13)[1:]
        empirical = counts / counts.sum()
        expected = weights / weights.sum()
        assert np.allclose(empirical, expected, atol=0.01)

    def test_dangling_stays(self):
        g = WeightedDiGraph.from_edges([(0, 1, 1.0)])
        sampler = AliasSampler(g)
        nxt = sampler.step(np.ones(10, dtype=np.int64), np.random.default_rng(6))
        assert (nxt == 1).all()

    def test_edge_probability(self):
        g = WeightedDiGraph.from_edges([(0, 1, 3.0), (0, 2, 1.0)])
        sampler = AliasSampler(g)
        assert sampler.edge_probability(0, 0) == pytest.approx(0.75)
        with pytest.raises(ParameterError):
            sampler.edge_probability(0, 5)


class TestWeightedWalks:
    def test_walk_shape_and_start(self):
        g = WeightedDiGraph.from_undirected(power_law_graph(30, 90, seed=1))
        walks = weighted_batch_walks(g, np.arange(30), 5, seed=2)
        assert walks.shape == (30, 6)
        assert walks[:, 0].tolist() == list(range(30))

    def test_walk_follows_arcs(self):
        g = WeightedDiGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]
        )
        walk = weighted_random_walk(g, 0, 6, seed=3)
        # The only trajectory is the directed cycle.
        assert walk == [0, 1, 2, 0, 1, 2, 0]

    def test_deterministic_by_seed(self):
        g = WeightedDiGraph.from_undirected(power_law_graph(30, 90, seed=1))
        a = weighted_batch_walks(g, np.arange(30), 4, seed=9)
        b = weighted_batch_walks(g, np.arange(30), 4, seed=9)
        assert np.array_equal(a, b)

    def test_validation(self):
        g = WeightedDiGraph.from_edges([(0, 1, 1.0)])
        with pytest.raises(ParameterError):
            weighted_batch_walks(g, np.array([0]), -1)
        with pytest.raises(ParameterError):
            weighted_batch_walks(g, np.array([5]), 2)
