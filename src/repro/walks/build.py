"""Out-of-core index construction: external sort into v3 archives (DESIGN.md §15).

``FlatWalkIndex.build`` historically concatenated every first-visit
record, then argsorted the lot — peak build memory a multiple of the
final index, so the largest graph the package could *serve* (mmap or
compressed storage, DESIGN.md §13) was far larger than the largest it
could *build*.  This module closes that gap (ROADMAP item 3) by turning
the build into a streaming pipeline:

1. The walk engine yields per-chunk record arrays
   (:meth:`~repro.walks.backends.WalkEngine.iter_walk_records`).
2. A :class:`RecordSink` consumes them.  The concrete
   :class:`ExternalSortSink` reduces each record to its canonical sort
   key (:func:`~repro.walks.parallel.canonical_record_key` — the key is
   decodable, so ``(hit, state)`` need not be stored) plus its ``int16``
   hop, 10 bytes per record; when a ``memory_budget`` is set and the
   buffer exceeds it, the buffer is sorted and spilled as one *run* to a
   temp file next to the target.
3. At finalize the runs are k-way merged — vectorized: emit every
   buffered record up to the smallest "last buffered key" of any run
   with unread data, refill, repeat — into an *entry writer*.  Keys are
   globally unique, so the merged stream equals the in-memory
   ``argsort`` exactly, and the in-memory path is the degenerate
   one-run case of the same pipeline (no temp I/O at all).

Three writers close the loop: :class:`DenseEntryWriter` materializes the
flat arrays (what ``FlatWalkIndex.build`` uses, any budget), and the two
archive writers append entry bytes to staged sibling files as the merge
emits them — the delta codec is per-hit-node-block, so complete block
runs encode incrementally and concatenate to the whole-index encoding —
then assemble the v3 container through the same atomic header/layout
writer ``save_index`` uses.  The result is **byte-identical** to saving
the in-memory build, for every engine and any budget, while peak memory
is O(budget + chunk walks + per-node metadata) instead of O(entries).
"""

from __future__ import annotations

import os
import tempfile
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro import obs
from repro.errors import GraphFormatError, ParameterError
from repro.graphs.adjacency import Graph
from repro.walks.backends import WalkEngine, get_engine
from repro.walks.index import (
    FlatWalkIndex,
    _validate_params,
    scatter_or_bits,
    walker_major_starts,
)
from repro.walks.parallel import canonical_record_key
from repro.walks.persistence import (
    FileArraySource,
    _atomic_write_v3,
    _resolve_archive_path,
    _resolve_row_mode,
    save_index,
    v3_index_header,
)
from repro.walks.rng import resolve_rng
from repro.walks.rows import CompressedRows, encode_row_span
from repro.walks.storage import (
    block_delta_encode,
    entry_state_dtype,
    pack_value_blocks,
    validate_index_format,
)

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "RecordSink",
    "ExternalSortSink",
    "DenseEntryWriter",
    "BuildReport",
    "build_index_archive",
]

#: The default walk chunk granularity, shared with ``FlatWalkIndex.build``
#: and surfaced on the CLI as ``--chunk-rows``.  Chunking is part of the
#: RNG contract (chunk c's draws precede chunk c+1's), so two builds
#: compare byte-for-byte only under the same value.
DEFAULT_CHUNK_ROWS = 1 << 19

#: One spilled record: the canonical int64 key plus the int16 hop.
_RUN_DTYPE = np.dtype([("key", "<i8"), ("hop", "<i2")])
_RECORD_BYTES = _RUN_DTYPE.itemsize

#: Floor for the per-run merge read block, so a pathologically small
#: budget still merges in sane-sized I/O units.
_MIN_MERGE_BLOCK = 4096

#: Packed hit rows are built in sub-batches of roughly this many bytes
#: during an mmap-format merge, independent of the sort budget.
_ROW_BATCH_BYTES = 8 << 20


class RecordSink(ABC):
    """Consumer seam for streamed first-visit record chunks.

    ``consume`` is called once per chunk the walk engine yields;
    ``finalize`` drains whatever the sink retained into an entry writer
    and returns the writer's result.  The seam exists so the build loop
    (walks → records) is independent of what happens to the records —
    today one implementation (the external sorter), but the shape admits
    others (direct aggregators, samplers) without touching the engines.
    """

    @abstractmethod
    def consume(
        self, hits: np.ndarray, states: np.ndarray, hops: np.ndarray
    ) -> None:
        """Absorb one chunk of ``(hit, state, hop)`` record arrays."""

    @abstractmethod
    def finalize(self, writer: "EntryWriter"):
        """Drain into ``writer`` and return ``writer.finalize()``."""

    def close(self) -> None:
        """Release temp resources; idempotent, safe after errors."""

    def __enter__(self) -> "RecordSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class EntryWriter(ABC):
    """Receiver of the merged, canonically ordered entry stream.

    ``begin`` is called once with the full per-node layout (counts are
    known before the merge starts — the sink bincounts during consume),
    then ``emit`` receives sorted ``(key, hop)`` batches covering the
    entries exactly once, in canonical order, and ``finalize`` assembles
    the result.  ``abort`` must release staged temp files after a failed
    merge; it is never called after a successful ``finalize``.
    """

    @abstractmethod
    def begin(
        self,
        indptr: np.ndarray,
        counts: np.ndarray,
        total: int,
        max_hop: int,
    ) -> None: ...

    @abstractmethod
    def emit(self, keys: np.ndarray, hops: np.ndarray) -> None: ...

    @abstractmethod
    def finalize(self): ...

    def abort(self) -> None: ...


# ----------------------------------------------------------------------
# The external sorter
# ----------------------------------------------------------------------
class ExternalSortSink(RecordSink):
    """Bounded-memory record sorter: buffer, spill sorted runs, merge.

    With ``memory_budget=None`` (the default) nothing ever spills and
    ``finalize`` is exactly the historical in-memory sort — one argsort
    over the buffered keys, no temp I/O (the degenerate one-run case).
    With a budget, the record buffer is capped at ``budget`` bytes at 10
    bytes per record; overflow sorts and spills the buffer as a run file
    in ``spill_dir`` (the archive's directory on the archive path, the
    system temp dir otherwise), and ``finalize`` streams the k-way merge
    of all runs — plus the unsorted tail, sorted in place as one more
    run — into the writer.  Run files are deleted on every exit path.

    Per-node metadata (the bincounted ``counts`` that become ``indptr``)
    stays in memory — the O(metadata) term of the build's footprint.
    """

    def __init__(
        self,
        num_nodes: int,
        num_replicates: int,
        memory_budget: "int | None" = None,
        spill_dir: "str | Path | None" = None,
    ):
        if memory_budget is not None and memory_budget <= 0:
            raise ParameterError("memory_budget must be a positive byte count")
        self._num_nodes = int(num_nodes)
        self._num_states = int(num_nodes) * int(num_replicates)
        self._budget = None if memory_budget is None else int(memory_budget)
        self._spill_dir = (
            Path(spill_dir) if spill_dir is not None
            else Path(tempfile.gettempdir())
        )
        self._counts = np.zeros(self._num_nodes, dtype=np.int64)
        self._key_parts: list[np.ndarray] = []
        self._hop_parts: list[np.ndarray] = []
        self._buffered = 0
        self._runs: "list[tuple[Path, int]]" = []
        self._readers: "list[_FileRun]" = []
        self.total_records = 0
        self.max_hop = 0
        self.spilled_bytes = 0

    @property
    def spill_runs(self) -> int:
        """Runs spilled to disk so far (0 on the in-memory fast path)."""
        return len(self._runs)

    # ------------------------------------------------------------------
    def consume(self, hits, states, hops) -> None:
        if hits.size == 0:
            return
        self._counts += np.bincount(hits, minlength=self._num_nodes)
        self._key_parts.append(
            canonical_record_key(hits, states, self._num_states)
        )
        self._hop_parts.append(hops.astype(np.int16, copy=False))
        self._buffered += int(hits.size)
        self.total_records += int(hits.size)
        self.max_hop = max(self.max_hop, int(hops.max()))
        if (
            self._budget is not None
            and self._buffered * _RECORD_BYTES > self._budget
        ):
            self._spill()

    def _sorted_buffer(self) -> tuple[np.ndarray, np.ndarray]:
        keys = np.concatenate(self._key_parts)
        hops = np.concatenate(self._hop_parts)
        # Keys are globally unique (states are unique within a hit block),
        # so the argsort permutation — hence every downstream byte — is
        # independent of the sort algorithm and of how records were
        # partitioned into chunks, shards, or runs.
        order = np.argsort(keys)
        self._key_parts.clear()
        self._hop_parts.clear()
        self._buffered = 0
        return keys[order], hops[order]

    def _spill(self) -> None:
        records = self._buffered
        with obs.span(
            "index.build.spill", run=len(self._runs) + 1, records=records
        ):
            keys, hops = self._sorted_buffer()
            rec = np.empty(records, dtype=_RUN_DTYPE)
            rec["key"] = keys
            rec["hop"] = hops
            fd, name = tempfile.mkstemp(
                dir=self._spill_dir, prefix=".rwidx-run-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    rec.tofile(fh)
            except BaseException:
                os.unlink(name)
                raise
            self._runs.append((Path(name), records))
            self.spilled_bytes += rec.nbytes
        if obs.enabled():
            obs.inc(
                "index_build_runs_total",
                help="External-sort runs spilled by index builds.",
            )
            obs.inc(
                "index_build_spill_bytes_total",
                rec.nbytes,
                help="Bytes of sorted runs spilled by index builds.",
            )

    # ------------------------------------------------------------------
    def finalize(self, writer: EntryWriter):
        try:
            indptr = np.zeros(self._num_nodes + 1, dtype=np.int64)
            np.cumsum(self._counts, out=indptr[1:])
            writer.begin(
                indptr, self._counts, self.total_records, self.max_hop
            )
            if not self._runs:
                # Single-run fast path: the whole record set is in memory;
                # one sort, one emit, zero temp I/O.
                if self._buffered:
                    writer.emit(*self._sorted_buffer())
            else:
                runs: list = [
                    self._open_run(path, total) for path, total in self._runs
                ]
                if self._buffered:
                    runs.append(_ArrayRun(*self._sorted_buffer()))
                block = _MIN_MERGE_BLOCK
                if self._budget is not None:
                    block = max(
                        _MIN_MERGE_BLOCK,
                        self._budget // (_RECORD_BYTES * len(runs)),
                    )
                with obs.span("index.build.merge", runs=len(runs)):
                    for keys, hops in _merge_sorted_runs(runs, block):
                        writer.emit(keys, hops)
            result = writer.finalize()
        except BaseException:
            writer.abort()
            raise
        finally:
            self.close()
        return result

    def _open_run(self, path: Path, total: int) -> "_FileRun":
        reader = _FileRun(path, total)
        self._readers.append(reader)
        return reader

    def close(self) -> None:
        for reader in self._readers:
            reader.close()
        self._readers.clear()
        for path, _ in self._runs:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._runs.clear()
        self._key_parts.clear()
        self._hop_parts.clear()
        self._buffered = 0


class _FileRun:
    """Sequential reader over one spilled run file."""

    def __init__(self, path: Path, total: int):
        self._path = path
        self._fh = open(path, "rb")
        self.remaining = int(total)

    def read(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        count = min(int(count), self.remaining)
        rec = np.fromfile(self._fh, dtype=_RUN_DTYPE, count=count)
        if rec.shape[0] != count:
            raise GraphFormatError(
                f"{self._path}: spilled run truncated "
                f"(wanted {count} records, read {rec.shape[0]})"
            )
        self.remaining -= count
        return (
            np.ascontiguousarray(rec["key"]),
            np.ascontiguousarray(rec["hop"]),
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class _ArrayRun:
    """The sorted in-memory tail, served through the run-reader protocol."""

    def __init__(self, keys: np.ndarray, hops: np.ndarray):
        self._keys = keys
        self._hops = hops
        self._pos = 0

    @property
    def remaining(self) -> int:
        return self._keys.size - self._pos

    def read(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        lo = self._pos
        hi = min(lo + int(count), self._keys.size)
        self._pos = hi
        return self._keys[lo:hi], self._hops[lo:hi]

    def close(self) -> None:  # pragma: no cover - protocol symmetry
        pass


def _merge_sorted_runs(
    runs: list, block_records: int
) -> "Iterator[tuple[np.ndarray, np.ndarray]]":
    """Vectorized k-way merge of sorted runs, yielding sorted batches.

    Each round computes the *safe boundary* — the smallest last-buffered
    key among runs that still have unread records; everything unread is
    strictly greater (runs are sorted, keys globally unique) — emits the
    ``<= boundary`` prefix of every buffer in one concatenate + argsort,
    and refills drained buffers.  No per-record Python loop, and each
    emitted batch is bounded by the total buffered footprint (~the sort
    budget).  When every run is fully buffered the boundary vanishes and
    the remainder flushes in one batch.
    """
    buffers = []
    for run in runs:
        keys, hops = run.read(block_records)
        if keys.size:
            buffers.append([keys, hops, run])
    while buffers:
        capped = [b for b in buffers if b[2].remaining > 0]
        boundary = min(int(b[0][-1]) for b in capped) if capped else None
        key_parts: list[np.ndarray] = []
        hop_parts: list[np.ndarray] = []
        next_buffers = []
        for keys, hops, run in buffers:
            take = (
                keys.size if boundary is None
                else int(np.searchsorted(keys, boundary, side="right"))
            )
            if take:
                key_parts.append(keys[:take])
                hop_parts.append(hops[:take])
                keys = keys[take:]
                hops = hops[take:]
            if keys.size == 0 and run.remaining > 0:
                keys, hops = run.read(block_records)
            if keys.size:
                next_buffers.append([keys, hops, run])
        buffers = next_buffers
        if key_parts:
            merged_keys = np.concatenate(key_parts)
            merged_hops = np.concatenate(hop_parts)
            order = np.argsort(merged_keys)
            yield merged_keys[order], merged_hops[order]


# ----------------------------------------------------------------------
# Entry writers
# ----------------------------------------------------------------------
class DenseEntryWriter(EntryWriter):
    """Materialize the flat entry arrays — ``FlatWalkIndex.build``'s sink."""

    def __init__(self, num_nodes: int, num_replicates: int):
        self._num_states = num_nodes * num_replicates
        self._state_dtype = entry_state_dtype(num_nodes, num_replicates)

    def begin(self, indptr, counts, total, max_hop) -> None:
        self._indptr = indptr
        self._state = np.empty(total, dtype=self._state_dtype)
        self._hop = np.empty(total, dtype=np.int16)
        self._pos = 0

    def emit(self, keys, hops) -> None:
        if keys.size == 0:
            return
        hits, states = np.divmod(keys, self._num_states)
        lo = self._pos
        self._pos = lo + keys.size
        # Assignment narrows int64 -> int32 exactly like the historical
        # ``states[order].astype(state_dtype)`` (values fit by range).
        self._state[lo : self._pos] = states
        self._hop[lo : self._pos] = hops

    def finalize(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self._indptr, self._state, self._hop


class _BlockGrouper:
    """Regroup the sorted entry stream into complete hit-node block spans.

    The compressed codec and the packed hit rows are per-hit-node-block
    structures, so the archive writers may only encode a block once all
    its entries have arrived.  Entries arrive in canonical order, so the
    only incomplete block at any moment is the last one seen: ``push``
    returns the newly completed span ``[next, last_hit)`` (with per-block
    counts — interior empty blocks included) and carries the trailing
    block's entries; ``flush`` closes out the final span up to ``n``.
    Carry memory is one block — O(the most-hit node's entries).
    """

    def __init__(self, num_nodes: int):
        self._num_nodes = num_nodes
        self._next = 0
        self._carry: "list[tuple[np.ndarray, np.ndarray, np.ndarray]]" = []

    def push(
        self, hits: np.ndarray, states: np.ndarray, hops: np.ndarray
    ) -> "list[tuple[int, int, np.ndarray, np.ndarray, np.ndarray]]":
        if hits.size == 0:
            return []
        last = int(hits[-1])
        if last == self._next:
            self._carry.append((hits, states, hops))
            return []
        cut = int(np.searchsorted(hits, last, side="left"))
        span = self._make_span(last, (hits[:cut], states[:cut], hops[:cut]))
        self._carry = [(hits[cut:], states[cut:], hops[cut:])]
        self._next = last
        return [span]

    def flush(self) -> tuple[int, int, np.ndarray, np.ndarray, np.ndarray]:
        span = self._make_span(self._num_nodes, None)
        self._carry = []
        self._next = self._num_nodes
        return span

    def _make_span(self, hi: int, extra):
        lo = self._next
        parts = list(self._carry)
        if extra is not None and extra[0].size:
            parts.append(extra)
        if parts:
            span_hits = np.concatenate([p[0] for p in parts])
            states = np.concatenate([p[1] for p in parts])
            hops = np.concatenate([p[2] for p in parts])
            counts = np.bincount(span_hits - lo, minlength=hi - lo)
        else:
            states = np.empty(0, dtype=np.int64)
            hops = np.empty(0, dtype=np.int16)
            counts = np.zeros(hi - lo, dtype=np.int64)
        return lo, hi, counts, states, hops


class _ArchiveWriter(EntryWriter):
    """Shared staging/assembly plumbing of the incremental v3 writers.

    Big arrays are appended to staged sibling temp files as the merge
    emits entries; O(n) metadata stays in memory.  ``finalize`` builds
    the exact header ``save_index`` would and hands the staged files to
    the shared v3 serializer as :class:`FileArraySource`\\ s — one
    streamed copy into an atomic temp, then ``os.replace``, so a crash
    anywhere leaves any prior archive untouched and ``abort``/cleanup
    removes every staged temp.
    """

    def __init__(self, out: Path, header: dict):
        self._out = out
        self._header = header
        self._staged: "dict[str, tuple[object, Path]]" = {}

    def _stage(self, label: str):
        fd, name = tempfile.mkstemp(
            dir=self._out.parent,
            prefix=f".{self._out.name}-{label}-",
            suffix=".tmp",
        )
        fh = os.fdopen(fd, "wb")
        self._staged[label] = (fh, Path(name))
        return fh

    def _staged_source(self, label: str, dtype, shape) -> FileArraySource:
        fh, path = self._staged[label]
        fh.close()
        return FileArraySource(path, dtype, shape)

    def _cleanup(self) -> None:
        for fh, path in self._staged.values():
            try:
                fh.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._staged.clear()

    def abort(self) -> None:
        self._cleanup()

    def _assemble(self, arrays: dict) -> Path:
        try:
            _atomic_write_v3(self._out, self._header, arrays)
        finally:
            self._cleanup()
        return self._out


class _MmapArchiveWriter(_ArchiveWriter):
    """Incremental v3 ``encoding="dense"`` writer (the ``mmap`` format).

    The coverage rows stream out span-wise as hit-node blocks close:
    dense mode packs each span into ``uint64`` row batches, compressed
    mode (DESIGN.md §16) encodes each span's containers through the same
    :func:`~repro.walks.rows.encode_row_span` the in-memory encoder
    uses — containers never span rows, so the staged spans concatenate
    to exactly the arrays ``save_index`` would write.
    """

    def __init__(
        self,
        out: Path,
        header: dict,
        num_nodes: int,
        num_replicates: int,
        include_rows: "bool | None",
        rows_format: "str | None" = None,
    ):
        super().__init__(out, header)
        self._num_nodes = num_nodes
        self._num_replicates = num_replicates
        self._num_states = num_nodes * num_replicates
        self._state_dtype = entry_state_dtype(num_nodes, num_replicates)
        self._words = (self._num_states + 63) >> 6
        self._rows_mode = _resolve_row_mode(
            num_nodes, self._num_states, include_rows, rows_format
        )
        self._rows_per_batch = max(1, _ROW_BATCH_BYTES // max(8, self._words * 8))

    def begin(self, indptr, counts, total, max_hop) -> None:
        self._indptr = indptr
        self._total = total
        self._state_f = self._stage("state")
        self._hop_f = self._stage("hop")
        if self._rows_mode == "dense":
            self._rows_f = self._stage("rows")
        elif self._rows_mode == "compressed":
            for label in CompressedRows.ARRAY_NAMES[1:]:
                self._stage(label)
            self._crow_counts = np.zeros(self._num_nodes, dtype=np.int64)
            self._crow_containers = 0
            self._crow_data_total = 0
        if self._rows_mode != "stream":
            self._grouper = _BlockGrouper(self._num_nodes)

    def emit(self, keys, hops) -> None:
        if keys.size == 0:
            return
        hits, states = np.divmod(keys, self._num_states)
        self._state_f.write(states.astype(self._state_dtype).tobytes())
        self._hop_f.write(
            np.ascontiguousarray(hops, dtype=np.int16).tobytes()
        )
        if self._rows_mode == "dense":
            for span in self._grouper.push(hits, states, hops):
                self._emit_rows(span)
        elif self._rows_mode == "compressed":
            for span in self._grouper.push(hits, states, hops):
                self._emit_crows(span)

    def _emit_rows(self, span) -> None:
        lo, hi, counts, states, _hops = span
        n, reps = self._num_nodes, self._num_replicates
        pos = 0
        for batch_lo in range(lo, hi, self._rows_per_batch):
            batch_hi = min(hi, batch_lo + self._rows_per_batch)
            cnt = counts[batch_lo - lo : batch_hi - lo]
            take = int(cnt.sum())
            rows = np.zeros((batch_hi - batch_lo, self._words), dtype=np.uint64)
            owners = np.repeat(
                np.arange(batch_hi - batch_lo, dtype=np.int64), cnt
            )
            scatter_or_bits(rows, owners, states[pos : pos + take])
            # Self bits, exactly as packed_hit_rows(include_self=True):
            # walker v is its own hop-0 hit in every replicate.
            node_ids = np.arange(batch_lo, batch_hi, dtype=np.int64)
            self_states = (
                node_ids[None, :]
                + np.int64(n) * np.arange(reps, dtype=np.int64)[:, None]
            ).ravel()
            self_owners = np.tile(
                np.arange(batch_hi - batch_lo, dtype=np.int64), reps
            )
            scatter_or_bits(rows, self_owners, self_states)
            self._rows_f.write(rows.tobytes())
            pos += take

    def _emit_crows(self, span) -> None:
        lo, hi, counts, states, _hops = span
        n, reps = self._num_nodes, self._num_replicates
        span_rows = hi - lo
        owners = np.repeat(np.arange(span_rows, dtype=np.int64), counts)
        positions = states.astype(np.int64)
        # Self bits, exactly as compressed_hit_rows(include_self=True).
        node_ids = np.arange(lo, hi, dtype=np.int64)
        self_states = (
            node_ids[None, :]
            + np.int64(n) * np.arange(reps, dtype=np.int64)[:, None]
        ).ravel()
        self_owners = np.tile(np.arange(span_rows, dtype=np.int64), reps)
        owners = np.concatenate([owners, self_owners])
        positions = np.concatenate([positions, self_states])
        order = np.argsort(
            owners * np.int64(max(self._num_states, 1)) + positions
        )
        c_counts, chunk_ids, types, cards, sizes, data = encode_row_span(
            owners[order], positions[order], span_rows, self._num_states
        )
        self._crow_counts[lo:hi] = c_counts
        self._staged["crow_chunks"][0].write(chunk_ids.tobytes())
        self._staged["crow_types"][0].write(types.tobytes())
        self._staged["crow_cards"][0].write(cards.tobytes())
        data_ptr = self._crow_data_total + (np.cumsum(sizes) - sizes)
        self._staged["crow_dataptr"][0].write(
            data_ptr.astype(np.int64).tobytes()
        )
        self._staged["crow_data"][0].write(data.tobytes())
        self._crow_containers += int(types.size)
        self._crow_data_total += int(sizes.sum())

    def finalize(self) -> Path:
        if self._rows_mode != "stream":
            span = self._grouper.flush()
            if self._rows_mode == "dense":
                self._emit_rows(span)
            else:
                self._emit_crows(span)
        self._header["state_dtype"] = self._state_dtype.str
        arrays: dict = {
            "indptr": self._indptr,
            "state": self._staged_source(
                "state", self._state_dtype, (self._total,)
            ),
            "hop": self._staged_source("hop", np.int16, (self._total,)),
        }
        if self._rows_mode == "dense":
            arrays["rows"] = self._staged_source(
                "rows", np.uint64, (self._num_nodes, self._words)
            )
        elif self._rows_mode == "compressed":
            # Trailing sentinel closes the last container's payload span.
            self._staged["crow_dataptr"][0].write(
                np.asarray([self._crow_data_total], dtype=np.int64).tobytes()
            )
            row_ptr = np.zeros(self._num_nodes + 1, dtype=np.int64)
            np.cumsum(self._crow_counts, out=row_ptr[1:])
            containers = self._crow_containers
            arrays["crow_ptr"] = row_ptr
            arrays["crow_chunks"] = self._staged_source(
                "crow_chunks", np.int32, (containers,)
            )
            arrays["crow_types"] = self._staged_source(
                "crow_types", np.uint8, (containers,)
            )
            arrays["crow_cards"] = self._staged_source(
                "crow_cards", np.int32, (containers,)
            )
            arrays["crow_dataptr"] = self._staged_source(
                "crow_dataptr", np.int64, (containers + 1,)
            )
            arrays["crow_data"] = self._staged_source(
                "crow_data", np.uint16, (self._crow_data_total,)
            )
        return self._assemble(arrays)


class _CompressedArchiveWriter(_ArchiveWriter):
    """Incremental v3 ``encoding="compressed"`` writer.

    The codec is per-hit-node-block (:mod:`repro.walks.storage`): each
    block owns an independent word region in ``delta_words`` and
    ``hop_words``, so any complete span of blocks encodes through the
    same :func:`block_delta_encode` + :func:`pack_value_blocks` the
    whole-index encoder uses, and the staged regions concatenate — plus
    the single global pad word at the end — to exactly the arrays
    ``CompressedStorage.from_arrays`` would produce.  The global
    ``hop_width`` is the spill phase's running max, known before the
    merge begins.
    """

    def __init__(
        self, out: Path, header: dict, num_nodes: int, num_replicates: int
    ):
        super().__init__(out, header)
        self._num_nodes = num_nodes
        self._num_states = num_nodes * num_replicates
        self._state_dtype = entry_state_dtype(num_nodes, num_replicates)

    def begin(self, indptr, counts, total, max_hop) -> None:
        n = self._num_nodes
        self._indptr = indptr
        self._hop_width = int(max_hop).bit_length() if total else 0
        self._heads = np.zeros(n, dtype=np.int64)
        self._widths = np.zeros(n, dtype=np.uint8)
        self._delta_word_counts = np.zeros(n, dtype=np.int64)
        hop_word_counts = (counts * self._hop_width + 63) >> 6
        self._hop_wordptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(hop_word_counts, out=self._hop_wordptr[1:])
        self._delta_f = self._stage("delta")
        self._hop_f = self._stage("hops")
        self._grouper = _BlockGrouper(n)

    def emit(self, keys, hops) -> None:
        if keys.size == 0:
            return
        hits, states = np.divmod(keys, self._num_states)
        for span in self._grouper.push(hits, states, hops):
            self._encode_span(span)

    def _encode_span(self, span) -> None:
        lo, hi, counts, states, hops = span
        heads, widths, gaps, gap_counts = block_delta_encode(states, counts)
        self._heads[lo:hi] = heads
        self._widths[lo:hi] = widths
        delta_words, delta_wordptr = pack_value_blocks(
            gaps, gap_counts, widths
        )
        self._delta_word_counts[lo:hi] = np.diff(delta_wordptr)
        self._delta_f.write(delta_words[: delta_wordptr[-1]].tobytes())
        hop_words, hop_wordptr = pack_value_blocks(
            hops, counts, np.full(hi - lo, self._hop_width, dtype=np.int64)
        )
        self._hop_f.write(hop_words[: hop_wordptr[-1]].tobytes())

    def finalize(self) -> Path:
        self._encode_span(self._grouper.flush())
        # The one global trailing pad word of each packed array (decoders
        # read words[i + 1] unconditionally).
        pad = np.zeros(1, dtype=np.uint64).tobytes()
        self._delta_f.write(pad)
        self._hop_f.write(pad)
        n = self._num_nodes
        delta_wordptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self._delta_word_counts, out=delta_wordptr[1:])
        self._header["state_dtype"] = self._state_dtype.str
        self._header["hop_width"] = self._hop_width
        arrays = {
            "indptr": self._indptr,
            "heads": self._heads,
            "delta_widths": self._widths,
            "delta_words": self._staged_source(
                "delta", np.uint64, (int(delta_wordptr[-1]) + 1,)
            ),
            "delta_wordptr": delta_wordptr,
            "hop_words": self._staged_source(
                "hops", np.uint64, (int(self._hop_wordptr[-1]) + 1,)
            ),
            "hop_wordptr": self._hop_wordptr,
        }
        return self._assemble(arrays)


# ----------------------------------------------------------------------
# The archive build entry point
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BuildReport:
    """What :func:`build_index_archive` did: where, how much, how spilled."""

    path: Path
    format: str
    total_entries: int
    num_runs: int
    spilled_bytes: int


def build_index_archive(
    graph: Graph,
    length: int,
    num_replicates: int,
    out: "str | Path",
    format: str = "mmap",
    seed: "int | np.random.Generator | None" = None,
    engine: "str | WalkEngine | None" = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    memory_budget: "int | None" = None,
    spill_dir: "str | Path | None" = None,
    include_rows: "bool | None" = None,
    gain_backend: "str | None" = None,
    rows_format: "str | None" = None,
) -> BuildReport:
    """Build a walk-index archive without materializing the index.

    The streaming composition of ``FlatWalkIndex.build`` +
    ``save_index``: walk chunks stream through the external sorter
    straight into an incremental v3 writer, so peak memory is
    O(``memory_budget`` + one chunk's walks + per-node metadata) while
    the archive bytes are **identical** to saving the in-memory build of
    the same ``(seed, chunk_rows, engine)`` — byte-for-byte for the v3
    families (``mmap``/``compressed``), array-for-array for ``dense``
    (the npz container timestamps its members, and holding the dense
    arrays is O(entries) regardless, so that format gains no memory —
    it exists here for CLI uniformity).  Run files and staged arrays
    live next to the target and are removed on every exit path; the
    final rename is atomic, so a crash mid-build leaves any existing
    archive at ``out`` intact.

    ``rows_format`` (``mmap`` archives only) picks the stored
    coverage-row representation — dense packed matrix, roaring
    containers, or none — resolved exactly as :func:`save_index`
    resolves it, spans streaming out as hit-node blocks close.
    """
    validate_index_format(format)
    if rows_format is not None and format != "mmap":
        raise ParameterError(
            "rows_format applies to mmap archives only (dense/compressed "
            "archives never store coverage rows)"
        )
    n = graph.num_nodes
    _validate_params(n, length, num_replicates)
    walk_engine = get_engine(engine)
    engine_meta = engine if isinstance(engine, str) else (
        engine.name if isinstance(engine, WalkEngine) else None
    )
    rng = resolve_rng(seed)
    suffix = ".npz" if format == "dense" else ".idx3"
    out = _resolve_archive_path(Path(out), default_suffix=suffix)
    with obs.span(
        "index.build", engine=walk_engine.name, num_nodes=n,
        length=length, num_replicates=num_replicates,
    ):
        starts = walker_major_starts(n, num_replicates)
        row_ids = np.arange(starts.size, dtype=np.int64)
        states = (row_ids % num_replicates) * n + starts
        with ExternalSortSink(
            n, num_replicates, memory_budget=memory_budget,
            spill_dir=out.parent if spill_dir is None else spill_dir,
        ) as sink:
            for chunk in walk_engine.iter_walk_records(
                graph, starts, length, states, seed=rng,
                chunk_rows=chunk_rows,
            ):
                sink.consume(*chunk)
            num_runs = sink.spill_runs + (1 if sink._buffered else 0)
            if format == "dense":
                indptr, state, hop = sink.finalize(
                    DenseEntryWriter(n, num_replicates)
                )
                index = FlatWalkIndex(
                    indptr=indptr, state=state, hop=hop, num_nodes=n,
                    length=length, num_replicates=num_replicates,
                )
                written = save_index(
                    index, out, graph=graph, engine=engine_meta, seed=seed,
                    gain_backend=gain_backend, format="dense",
                )
            else:
                header = v3_index_header(
                    n, length, num_replicates,
                    encoding=(
                        "compressed" if format == "compressed" else "dense"
                    ),
                    engine=engine_meta, seed=seed,
                    gain_backend=gain_backend, graph=graph,
                )
                if format == "compressed":
                    writer: _ArchiveWriter = _CompressedArchiveWriter(
                        out, header, n, num_replicates
                    )
                else:
                    writer = _MmapArchiveWriter(
                        out, header, n, num_replicates, include_rows,
                        rows_format,
                    )
                written = sink.finalize(writer)
            report = BuildReport(
                path=written,
                format=format,
                total_entries=sink.total_records,
                num_runs=num_runs,
                spilled_bytes=sink.spilled_bytes,
            )
    if obs.enabled():
        obs.inc(
            "index_builds_total",
            help="Flat walk-index builds.",
            engine=walk_engine.name,
        )
        obs.inc(
            "index_entries_total",
            report.total_entries,
            help="Index entries produced by builds.",
        )
    return report
