"""Concurrent query serving vs one-solver-call-per-query — head-to-head.

The acceptance benchmark for the serving layer (:mod:`repro.serve`,
DESIGN.md §10).  The gated workload is the paper's online pattern: many
clients concurrently asking "best k hosts" at different budgets against
one precomputed index.  The claims:

* **bit-identical answers** — every served ``select``/``metrics``/
  ``min_targets`` reply equals the direct solver call on the same index
  (hard assertions, never gated off); and
* **>= 2x batched concurrent throughput** over the naive loop that runs
  one :func:`~repro.core.approx_fast.approx_greedy_fast` call per query
  (a timing assertion, demoted to report-only under
  ``--no-timing-gate``).  The mechanism is request micro-batching:
  budgets arriving within the window share one greedy pass (greedy
  selections are prefixes of each other), so a 32-budget sweep costs a
  few kernel passes instead of 32.

Key reference (all via ``bench_record`` for the ``--json`` report and
``tools/check_bench_regression.py``):

* ``serving.naive_select_loop_s`` / ``serving.served_select_s`` /
  ``serving.batched_speedup_x`` — the gated head-to-head.
* ``serving.latency_p50_s`` / ``serving.latency_p99_s`` — client-side
  latency on the gated select workload (report-only).
* ``serving.mixed_p50_s`` / ``serving.mixed_p99_s`` — a mixed
  select/metrics/coverage/min-targets workload with repeats, where the
  cache also participates (report-only).
* ``serving.select_parity`` / ``serving.metrics_parity`` /
  ``serving.min_targets_parity`` / ``serving.batched_answers_parity`` —
  the hard contract.
"""

import pytest

from benchmarks.conftest import best_of

from repro.graphs.generators import power_law_graph
from repro.core.approx_fast import approx_greedy_fast
from repro.core.coverage import min_targets_for_coverage
from repro.serve import DominationService, IndexSnapshot, WorkloadQuery, run_load
from repro.walks.index import FlatWalkIndex

#: The benchmark instance (paper-default R) and the gated workload: a
#: closed-loop budget sweep, every k distinct so the result cache cannot
#: shortcut the comparison — only batching can win.
NODES = 2_000
EDGES = 12_000
LENGTH = 6
REPLICATES = 100
SEED = 11
KS = tuple(range(1, 33))
CLIENTS = 16
WINDOW_S = 0.010


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(NODES, EDGES, seed=7)


@pytest.fixture(scope="module")
def index(graph):
    return FlatWalkIndex.build(
        graph, LENGTH, REPLICATES, seed=SEED, engine="csr"
    )


def _fresh_service(graph, index, window=WINDOW_S):
    return DominationService(
        IndexSnapshot.capture(graph, index), batch_window=window
    )


def test_served_answer_parity(graph, index, bench_record):
    """Hard contract: served replies == direct solver calls, bit for bit."""
    service = _fresh_service(graph, index, window=0.0)
    select_parity = True
    for k in (1, 5, 17, 32):
        served = service.select(k)
        direct = approx_greedy_fast(
            graph, k, LENGTH, index=index, objective="f2"
        )
        select_parity &= (
            served.selected == direct.selected and served.gains == direct.gains
        )
    placement = service.select(17).selected
    metrics_parity = (
        service.metrics(placement) == index.selection_metrics(placement)
        and service.coverage(placement)
        == index.selection_metrics(placement)["coverage_fraction"]
    )
    served_mt = service.min_targets(0.5)
    direct_mt = min_targets_for_coverage(graph, 0.5, LENGTH, index=index)
    min_targets_parity = (
        served_mt.selected == direct_mt.selected
        and served_mt.gains == direct_mt.gains
    )
    bench_record("serving.select_parity", select_parity)
    bench_record("serving.metrics_parity", metrics_parity)
    bench_record("serving.min_targets_parity", min_targets_parity)
    assert select_parity, "served select diverged from approx_greedy_fast"
    assert metrics_parity, "served metrics diverged from selection_metrics"
    assert min_targets_parity, (
        "served min_targets diverged from min_targets_for_coverage"
    )


def test_batched_throughput_gated(graph, index, bench_record, timing_gate):
    """The standing claim: batched concurrent serving >= 2x the naive loop."""
    naive_s, naive_results = best_of(2, lambda: [
        approx_greedy_fast(graph, k, LENGTH, index=index, objective="f2")
        for k in KS
    ])

    queries = [WorkloadQuery(kind="select", k=k) for k in KS]
    served_s = float("inf")
    report = service = None
    for _ in range(2):
        service = _fresh_service(graph, index)
        current = run_load(service, queries, num_clients=CLIENTS)
        if current.elapsed_seconds < served_s:
            served_s, report = current.elapsed_seconds, current
        answers_parity = all(
            service.select(k).selected == naive.selected
            and service.select(k).gains == naive.gains
            for k, naive in zip(KS, naive_results)
        )
        assert answers_parity, "concurrent batched answers diverged"
        assert current.errors == 0

    stats = report.stats
    speedup = naive_s / served_s
    bench_record("serving.naive_select_loop_s", naive_s)
    bench_record("serving.served_select_s", served_s)
    bench_record("serving.batched_speedup_x", speedup)
    bench_record("serving.latency_p50_s", report.latency_p50_ms / 1e3)
    bench_record("serving.latency_p99_s", report.latency_p99_ms / 1e3)
    bench_record("serving.batched_answers_parity", answers_parity)
    print(
        f"\nserving head-to-head (n={NODES}, R={REPLICATES}, L={LENGTH}, "
        f"{len(KS)} budgets, {CLIENTS} clients): naive loop "
        f"{naive_s * 1e3:.0f} ms, served {served_s * 1e3:.0f} ms "
        f"({stats.kernel_passes} kernel passes for {len(KS)} queries, "
        f"p50 {report.latency_p50_ms:.1f} ms / "
        f"p99 {report.latency_p99_ms:.1f} ms) -> {speedup:.1f}x"
    )
    # Micro-batching must actually collapse the sweep — a pass-per-query
    # run would make the throughput claim vacuous even if it squeaked by.
    assert stats.kernel_passes < len(KS), (
        f"{stats.kernel_passes} kernel passes for {len(KS)} select "
        "queries: micro-batching did not engage"
    )
    if timing_gate:
        assert speedup >= 2.0, (
            f"served throughput only {speedup:.2f}x the naive "
            "one-query-per-solver-call loop"
        )
    elif speedup < 2.0:
        print(f"TIMING (report-only): speedup {speedup:.2f}x < 2.0x floor")


def test_mixed_workload_report(graph, index, bench_record):
    """Context: a mixed query stream with repeats (cache participates)."""
    placement = approx_greedy_fast(
        graph, 10, LENGTH, index=index, objective="f2"
    ).selected
    targets = ",".join(str(v) for v in placement)
    queries = [
        WorkloadQuery(kind="select", k=k) for k in (5, 10, 20)
    ] + [
        WorkloadQuery(kind="metrics", targets=tuple(placement)),
        WorkloadQuery(kind="coverage", targets=tuple(placement[:5])),
        WorkloadQuery(kind="min-targets", fraction=0.4),
    ]
    service = _fresh_service(graph, index)
    report = run_load(service, queries, num_clients=4, repeat=4)
    bench_record("serving.mixed_p50_s", report.latency_p50_ms / 1e3)
    bench_record("serving.mixed_p99_s", report.latency_p99_ms / 1e3)
    print(
        f"\nmixed workload ({report.num_queries} queries over "
        f"{targets.count(',') + 1}-node placements): "
        f"{report.throughput_qps:.0f} q/s, cache hits "
        f"{report.stats.cache_hits}, kernel passes "
        f"{report.stats.kernel_passes}"
    )
    assert report.errors == 0
