"""Tests for the AHT / EHN metrics."""

import pytest

from repro.errors import ParameterError
from repro.graphs.generators import complete_graph, star_graph
from repro.metrics.evaluation import (
    average_hitting_time,
    evaluate_selection,
    expected_hit_nodes,
)


class TestAverageHittingTime:
    def test_empty_set_is_length(self, small_power_law):
        assert average_hitting_time(small_power_law, set(), 6) == pytest.approx(6.0)

    def test_full_set_is_zero(self, small_power_law):
        n = small_power_law.num_nodes
        assert average_hitting_time(small_power_law, range(n), 6) == 0.0

    def test_star_center(self):
        # Every leaf hits the center in exactly one hop.
        assert average_hitting_time(star_graph(5), {0}, 4) == pytest.approx(1.0)

    def test_bounded_by_length(self, small_power_law):
        aht = average_hitting_time(small_power_law, {0}, 5)
        assert 0.0 <= aht <= 5.0

    def test_more_targets_lower_aht(self, small_power_law):
        a = average_hitting_time(small_power_law, {0}, 5)
        b = average_hitting_time(small_power_law, {0, 3, 9, 14}, 5)
        assert b <= a + 1e-9

    def test_sampled_close_to_exact(self, small_power_law):
        exact = average_hitting_time(small_power_law, {0, 5}, 5)
        sampled = average_hitting_time(
            small_power_law, {0, 5}, 5, method="sampled", num_samples=4000, seed=1
        )
        assert sampled == pytest.approx(exact, rel=0.05)

    def test_bad_method(self, small_power_law):
        with pytest.raises(ParameterError):
            average_hitting_time(small_power_law, {0}, 3, method="guess")


class TestExpectedHitNodes:
    def test_empty_set_zero(self, small_power_law):
        assert expected_hit_nodes(small_power_law, set(), 5) == 0.0

    def test_full_set_n(self, small_power_law):
        n = small_power_law.num_nodes
        assert expected_hit_nodes(small_power_law, range(n), 5) == pytest.approx(n)

    def test_star_center_everyone(self):
        g = star_graph(5)
        assert expected_hit_nodes(g, {0}, 2) == pytest.approx(6.0)

    def test_complete_graph_value(self):
        n, length = 6, 3
        g = complete_graph(n)
        q = 1 / (n - 1)
        p_hit = 1 - (1 - q) ** length
        assert expected_hit_nodes(g, {0}, length) == pytest.approx(
            1 + (n - 1) * p_hit
        )

    def test_monotone_in_targets(self, small_power_law):
        a = expected_hit_nodes(small_power_law, {0}, 5)
        b = expected_hit_nodes(small_power_law, {0, 7}, 5)
        assert b >= a - 1e-9

    def test_sampled_close_to_exact(self, small_power_law):
        exact = expected_hit_nodes(small_power_law, {2, 9}, 5)
        sampled = expected_hit_nodes(
            small_power_law, {2, 9}, 5, method="sampled", num_samples=4000, seed=2
        )
        assert sampled == pytest.approx(exact, rel=0.05)


class TestEvaluateSelection:
    def test_both_metrics(self, small_power_law):
        metrics = evaluate_selection(small_power_law, {1, 2}, 4)
        assert set(metrics) == {"aht", "ehn"}
        assert metrics["aht"] == pytest.approx(
            average_hitting_time(small_power_law, {1, 2}, 4)
        )
        assert metrics["ehn"] == pytest.approx(
            expected_hit_nodes(small_power_law, {1, 2}, 4)
        )


class TestComparePlacements:
    def test_table_structure(self):
        from repro.metrics import compare_placements
        from repro.graphs.generators import ring_graph

        graph = ring_graph(12)
        table = compare_placements(
            graph, {"a": [0, 6], "b": [1, 2]}, length=4
        )
        assert table.columns == ("placement", "k", "AHT", "EHN")
        assert len(table.rows) == 2
        assert set(table.column("placement")) == {"a", "b"}

    def test_budget_sweep_uses_prefixes(self):
        from repro.metrics import compare_placements, evaluate_selection
        from repro.graphs.generators import power_law_graph

        graph = power_law_graph(40, 120, seed=3)
        order = [5, 9, 1, 30]
        table = compare_placements(
            graph, {"greedy": order}, length=4, budgets=(1, 2, 4)
        )
        assert table.column("k") == [1, 2, 4]
        k2 = table.filtered(k=2)[0]
        expected = evaluate_selection(graph, order[:2], 4)
        aht = table.columns.index("AHT")
        assert k2[aht] == pytest.approx(expected["aht"])

    def test_spread_beats_clump_on_ring(self):
        from repro.metrics import compare_placements
        from repro.graphs.generators import ring_graph

        graph = ring_graph(20)
        table = compare_placements(
            graph, {"spread": [0, 10], "clump": [0, 1]}, length=5
        )
        aht = table.columns.index("AHT")
        spread = table.filtered(placement="spread")[0][aht]
        clump = table.filtered(placement="clump")[0][aht]
        assert spread < clump

    def test_rejects_empty_and_bad_budget(self):
        from repro.errors import ParameterError
        from repro.metrics import compare_placements
        from repro.graphs.generators import ring_graph

        graph = ring_graph(6)
        with pytest.raises(ParameterError):
            compare_placements(graph, {}, length=3)
        with pytest.raises(ParameterError):
            compare_placements(graph, {"a": [0]}, length=3, budgets=(2,))
