"""Tests for the dataset registry and synthetic replicas."""

import pytest

from repro.errors import DatasetError, ParameterError
from repro.graphs.datasets import (
    TABLE2_DATASETS,
    dataset_names,
    dataset_spec,
    load_dataset,
    paper_synthetic_graph,
    scalability_graph,
)
from repro.graphs.io import write_edge_list
from repro.graphs.generators import power_law_graph


class TestRegistry:
    def test_names_in_paper_order(self):
        assert dataset_names() == ["CAGrQc", "CAHepPh", "Brightkite", "Epinions"]

    def test_table2_counts(self):
        expected = {
            "CAGrQc": (5_242, 28_968),
            "CAHepPh": (12_008, 236_978),
            "Brightkite": (58_228, 428_156),
            "Epinions": (75_872, 396_026),
        }
        for spec in TABLE2_DATASETS:
            assert (spec.num_nodes, spec.num_edges) == expected[spec.name]

    def test_lookup_case_insensitive(self):
        assert dataset_spec("cagrqc").name == "CAGrQc"

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            dataset_spec("Facebook")


class TestReplicas:
    def test_full_scale_matches_spec(self):
        g = load_dataset("CAGrQc")
        spec = dataset_spec("CAGrQc")
        assert g.num_nodes == spec.num_nodes
        assert g.num_edges == spec.num_edges

    def test_scaled_replica(self):
        g = load_dataset("CAGrQc", scale=0.1)
        spec = dataset_spec("CAGrQc")
        assert g.num_nodes == round(spec.num_nodes * 0.1)
        assert g.num_edges == round(spec.num_edges * 0.1)

    def test_deterministic(self):
        assert load_dataset("CAGrQc", scale=0.05) == load_dataset(
            "CAGrQc", scale=0.05
        )

    def test_scale_validated(self):
        with pytest.raises(ParameterError):
            load_dataset("CAGrQc", scale=0.0)
        with pytest.raises(ParameterError):
            load_dataset("CAGrQc", scale=1.5)

    def test_genuine_file_preferred(self, tmp_path):
        g = power_law_graph(30, 60, seed=1)
        write_edge_list(g, tmp_path / dataset_spec("CAGrQc").snap_filename)
        loaded = load_dataset("CAGrQc", data_dir=tmp_path)
        # The reader relabels by first appearance; sizes and the degree
        # multiset identify the file over the synthetic fallback.
        assert loaded.num_nodes == 30 and loaded.num_edges == 60
        assert sorted(loaded.degrees.tolist()) == sorted(g.degrees.tolist())

    def test_missing_genuine_file_falls_back(self, tmp_path):
        g = load_dataset("CAGrQc", scale=0.05, data_dir=tmp_path)
        assert g.num_nodes == round(5242 * 0.05)


class TestSyntheticFamilies:
    def test_paper_synthetic_graph(self):
        g = paper_synthetic_graph()
        assert (g.num_nodes, g.num_edges) == (1000, 9956)

    def test_scalability_sizes(self):
        g = scalability_graph(2, scale=0.01)
        assert g.num_nodes == 2000
        assert g.num_edges == 20_000

    def test_scalability_index_validated(self):
        with pytest.raises(ParameterError):
            scalability_graph(0)
        with pytest.raises(ParameterError):
            scalability_graph(11)

    def test_scalability_grows_linearly(self):
        a = scalability_graph(1, scale=0.005)
        b = scalability_graph(2, scale=0.005)
        assert b.num_nodes == 2 * a.num_nodes
        assert b.num_edges == 2 * a.num_edges
