"""End-to-end tests for the HTTP serving tier (repro.serve.http/schemas).

Fast-lane tests stand a real asyncio server up on an ephemeral port and
talk to it over sockets: wire answers must be bit-identical to direct
:class:`DominationService` calls for every query kind, malformed input
must come back as typed 4xx JSON (never a traceback), readiness must
track the snapshot lifecycle atomically through ``sync()`` epoch swaps,
and saturation must produce bounded in-flight work with fast 503s.  The
exhaustive schema round-trip/fuzz properties are hypothesis suites in
the slow lane.
"""

import json
import socket
import threading
import time

import pytest

from repro.core.approx_fast import approx_greedy_fast
from repro.core.coverage import min_targets_for_coverage
from repro.errors import ParameterError
from repro.graphs.generators import power_law_graph
from repro.dynamic import DynamicGraph, DynamicWalkIndex
from repro.serve import (
    DominationService,
    IndexSnapshot,
    WorkloadQuery,
    decode_request,
    encode_request,
    parse_workload,
    run_load,
    start_http_server,
)
from repro.serve.loadgen import _HttpClient
from repro.serve.schemas import (
    CoverageRequest,
    MetricsRequest,
    MinTargetsRequest,
    SelectRequest,
)
from repro.walks.index import FlatWalkIndex

LENGTH = 5
REPLICATES = 20


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(120, 420, seed=1)


@pytest.fixture(scope="module")
def index(graph):
    return FlatWalkIndex.build(graph, LENGTH, REPLICATES, seed=2)


def _service(graph, index, **kwargs):
    kwargs.setdefault("batch_window", 0.0)
    return DominationService(IndexSnapshot.capture(graph, index), **kwargs)


def _absent_edges(graph, count):
    """Deterministic ``count`` non-edges of ``graph`` (insertable)."""
    found = []
    for u in range(graph.num_nodes):
        for v in range(u + 1, graph.num_nodes):
            if not graph.has_edge(u, v):
                found.append((u, v))
                if len(found) == count:
                    return found
    raise AssertionError("graph too dense for the test instance")


@pytest.fixture(scope="module")
def server(graph, index):
    """One shared read-only server for the parity/error tests."""
    handle = start_http_server(_service(graph, index))
    yield handle
    handle.stop()


def _post(handle, kind, payload):
    client = _HttpClient(handle.base_url)
    try:
        return client.request("POST", f"/query/{kind}", payload)
    finally:
        client.close()


def _get(handle, path):
    client = _HttpClient(handle.base_url)
    try:
        return client.request("GET", path)
    finally:
        client.close()


class TestWireParity:
    """Every HTTP answer == the direct service/solver call, bit for bit."""

    def test_select_both_objectives(self, graph, index, server):
        for objective in ("f1", "f2"):
            for k in (0, 1, 6, 15):
                status, answer = _post(
                    server, "select", {"k": k, "objective": objective}
                )
                direct = approx_greedy_fast(
                    graph, k, LENGTH, index=index, objective=objective
                )
                assert status == 200
                assert tuple(answer["selected"]) == direct.selected
                assert tuple(answer["gains"]) == direct.gains
                assert answer["algorithm"] == direct.algorithm

    def test_select_both_gain_backends(self, graph, index):
        for gain_backend in ("entries", "bitset"):
            handle = start_http_server(
                _service(graph, index, gain_backend=gain_backend)
            )
            try:
                status, answer = _post(handle, "select", {"k": 8})
                direct = approx_greedy_fast(
                    graph, 8, LENGTH, index=index, objective="f2",
                    gain_backend=gain_backend,
                )
                assert status == 200
                assert tuple(answer["selected"]) == direct.selected
                assert tuple(answer["gains"]) == direct.gains
            finally:
                handle.stop()

    def test_metrics_and_coverage(self, graph, index, server):
        placement = approx_greedy_fast(
            graph, 6, LENGTH, index=index, objective="f2"
        ).selected
        expected = index.selection_metrics(placement)
        status, answer = _post(
            server, "metrics", {"targets": list(placement)}
        )
        assert status == 200
        assert answer["metrics"] == {
            key: float(value) for key, value in expected.items()
        }
        status, answer = _post(
            server, "coverage", {"targets": list(placement)}
        )
        assert status == 200
        assert answer["coverage_fraction"] == float(
            expected["coverage_fraction"]
        )

    def test_min_targets(self, graph, index, server):
        direct = min_targets_for_coverage(graph, 0.3, LENGTH, index=index)
        status, answer = _post(server, "min_targets", {"fraction": 0.3})
        assert status == 200
        assert tuple(answer["selected"]) == direct.selected
        assert tuple(answer["gains"]) == direct.gains
        # max_size passes through: capping at exactly the uncapped size
        # must give the identical answer.
        cap = len(direct.selected)
        capped = min_targets_for_coverage(
            graph, 0.3, LENGTH, index=index, max_size=cap
        )
        status, answer = _post(
            server, "min_targets", {"fraction": 0.3, "max_size": cap}
        )
        assert status == 200
        assert tuple(answer["selected"]) == capped.selected

    def test_http_loadgen_matches_service_counters(self, graph, index, server):
        queries = parse_workload(
            "select 4\nselect 4 f1\nmetrics 1,2\ncoverage 3,4\n"
            "min-targets 0.2\n"
        )
        before = server.server._service.stats.queries
        report = run_load(
            None, queries, num_clients=2, repeat=2,
            transport="http", base_url=server.base_url,
        )
        assert report.num_queries == 10
        assert report.errors == 0
        assert report.rejections == 0
        # service=None: counters come from GET /stats and must reflect
        # exactly the queries this run issued.
        assert report.stats.queries == before + 10


class TestTypedErrors:
    """Malformed input -> typed 4xx JSON with context, never a traceback."""

    def test_malformed_json_body(self, server):
        client = _HttpClient(server.base_url)
        try:
            client._conn.request(
                "POST", "/query/select", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = client._conn.getresponse()
            payload = json.loads(response.read())
        finally:
            client.close()
        assert response.status == 400
        assert payload["error"]["type"] == "ParameterError"
        assert "not valid JSON" in payload["error"]["message"]

    def test_unknown_kind_lists_kinds(self, server):
        status, payload = _post(server, "frobnicate", {})
        assert status == 404
        assert "unknown query kind" in payload["error"]["message"]
        assert "min_targets" in payload["error"]["message"]

    def test_unknown_field_named(self, server):
        status, payload = _post(server, "select", {"k": 3, "kk": 4})
        assert status == 400
        assert "'kk'" in payload["error"]["message"]

    def test_missing_required_field(self, server):
        status, payload = _post(server, "select", {})
        assert status == 400
        assert "missing required field 'k'" in payload["error"]["message"]

    def test_wrong_type_names_field(self, server):
        status, payload = _post(server, "select", {"k": "five"})
        assert status == 400
        assert "field 'k'" in payload["error"]["message"]
        # JSON booleans must not pass as integers.
        status, payload = _post(server, "select", {"k": True})
        assert status == 400
        status, payload = _post(
            server, "metrics", {"targets": [1, "two"]}
        )
        assert status == 400
        assert "field 'targets'" in payload["error"]["message"]

    def test_service_level_rejections_are_400(self, graph, server):
        status, payload = _post(
            server, "select", {"k": graph.num_nodes + 7}
        )
        assert status == 400
        assert payload["error"]["type"] == "ParameterError"
        status, payload = _post(server, "min_targets", {"fraction": 2.0})
        assert status == 400
        status, payload = _post(server, "metrics", {"targets": [10_000]})
        assert status == 400

    def test_method_and_route_errors(self, server):
        client = _HttpClient(server.base_url)
        try:
            status, payload = client.request("GET", "/query/select")
            assert status == 405
            status, payload = client.request("POST", "/healthz", {})
            assert status == 405
            status, payload = client.request("GET", "/nope")
            assert status == 404
            assert "/query/" in payload["error"]["message"]
        finally:
            client.close()

    def test_malformed_request_line_gets_400(self, server):
        with socket.create_connection(
            ("127.0.0.1", server.server.port), timeout=5
        ) as sock:
            sock.sendall(b"GARBAGE\r\n\r\n")
            response = sock.recv(65536).decode()
        assert response.startswith("HTTP/1.1 400")
        assert "malformed request line" in response

    def test_internal_errors_do_not_leak_tracebacks(self, graph, index):
        service = _service(graph, index)

        def boom(selection):
            raise RuntimeError("secret internals")

        service.metrics = boom
        handle = start_http_server(service)
        try:
            status, payload = _post(handle, "metrics", {"targets": [1]})
        finally:
            handle.stop()
        assert status == 500
        assert payload["error"]["type"] == "InternalError"
        assert "secret internals" not in json.dumps(payload)
        assert "Traceback" not in json.dumps(payload)


class TestHealthAndReadiness:
    def test_healthz_describes_snapshot(self, graph, index, server):
        status, payload = _get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["num_nodes"] == graph.num_nodes
        assert payload["length"] == LENGTH
        assert payload["num_replicates"] == REPLICATES

    def test_ready_up_and_drain(self, graph, index):
        handle = start_http_server(_service(graph, index))
        try:
            status, payload = _get(handle, "/readyz")
            assert (status, payload["ready"]) == (200, True)
            handle.drain()
            status, payload = _get(handle, "/readyz")
            assert (status, payload["ready"]) == (503, False)
            # Health and straggler traffic keep working while drained.
            assert _get(handle, "/healthz")[0] == 200
            assert _post(handle, "coverage", {"targets": [1]})[0] == 200
        finally:
            handle.stop()

    def test_readiness_never_flickers_during_epoch_swaps(self, graph):
        dgraph = DynamicGraph(graph)
        dyn = DynamicWalkIndex.build(graph, LENGTH, REPLICATES, seed=4)
        service = DominationService.from_dynamic(dyn, batch_window=0.0)
        handle = start_http_server(service)
        stop = threading.Event()
        not_ready: list = []

        def poll():
            client = _HttpClient(handle.base_url)
            try:
                while not stop.is_set():
                    status, payload = client.request("GET", "/readyz")
                    if status != 200 or not payload["ready"]:
                        not_ready.append((status, payload))
            finally:
                client.close()

        poller = threading.Thread(target=poll, daemon=True)
        try:
            poller.start()
            for epoch, edge in enumerate(_absent_edges(graph, 5)):
                dgraph.apply_batch([edge], [])
                service.sync(dgraph)
                assert service.epoch == epoch + 1
        finally:
            stop.set()
            poller.join()
            handle.stop()
        assert not_ready == []


class TestConcurrentChurnOverHttp:
    def test_no_torn_answers_during_sync_publishes(self, graph):
        """Concurrent HTTP clients during sync() epoch publishes always
        see the answer of *some* published epoch's snapshot — never a
        torn one — and never a dropped connection."""
        k = 4
        placement = (3, 17, 42)
        dgraph = DynamicGraph(graph)
        dyn = DynamicWalkIndex.build(graph, LENGTH, REPLICATES, seed=5)
        service = DominationService.from_dynamic(
            dyn, batch_window=0.0, cache_size=0
        )
        handle = start_http_server(service, max_inflight=16)
        snapshots = {0: service.snapshot}
        observed: list = []
        failures: list = []
        stop = threading.Event()

        def client() -> None:
            http = _HttpClient(handle.base_url)
            try:
                while not stop.is_set():
                    status, answer = http.request(
                        "POST", "/query/select", {"k": k}
                    )
                    if status != 200:
                        failures.append(("select", status, answer))
                        return
                    status, metrics = http.request(
                        "POST", "/query/metrics",
                        {"targets": list(placement)},
                    )
                    if status != 200:
                        failures.append(("metrics", status, metrics))
                        return
                    observed.append((
                        tuple(answer["selected"]),
                        tuple(answer["gains"]),
                        answer["params"]["epoch"],
                        metrics["metrics"],
                    ))
            except Exception as exc:  # noqa: BLE001 - asserted below
                failures.append(("exception", repr(exc)))
            finally:
                http.close()

        workers = [
            threading.Thread(target=client, daemon=True) for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        try:
            for edge in _absent_edges(graph, 6):
                dgraph.apply_batch([edge], [])
                service.sync(dgraph)
                snapshots[service.epoch] = service.snapshot
                time.sleep(0.01)
        finally:
            stop.set()
            for worker in workers:
                worker.join()
            handle.stop()
        assert failures == []
        assert observed, "clients never completed a query pair"
        expected_select = {
            epoch: approx_greedy_fast(
                snap.graph, k, LENGTH, index=snap.index, objective="f2"
            )
            for epoch, snap in snapshots.items()
        }
        expected_metrics = [
            {key: float(value) for key, value
             in snap.index.selection_metrics(placement).items()}
            for snap in snapshots.values()
        ]
        for selected, gains, epoch, metrics in observed:
            assert epoch in snapshots, f"answer from unpublished epoch {epoch}"
            direct = expected_select[epoch]
            assert selected == direct.selected, (
                f"epoch-{epoch} selection does not match its snapshot "
                "(torn answer?)"
            )
            assert gains == direct.gains
            # Metrics answers carry no epoch tag; they must still equal
            # some published snapshot's exact metrics.
            assert metrics in expected_metrics, (
                "served metrics match no published epoch (torn snapshot?)"
            )


class _GatedService(DominationService):
    """Service whose metrics path blocks until released (saturation rig)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.entered = threading.Event()
        self.release = threading.Event()

    def metrics(self, selection):
        self.entered.set()
        assert self.release.wait(10), "saturation test never released"
        return super().metrics(selection)


class TestBackpressure:
    def test_saturated_server_returns_fast_503(self, graph, index):
        service = _GatedService(
            IndexSnapshot.capture(graph, index), batch_window=0.0
        )
        handle = start_http_server(service, max_inflight=1, retry_after=2.0)
        results: list = []

        def occupant():
            results.append(_post(handle, "metrics", {"targets": [1]}))

        blocker = threading.Thread(target=occupant, daemon=True)
        try:
            blocker.start()
            assert service.entered.wait(10)
            # The lone in-flight slot is held: the next query must be
            # rejected immediately, not queued behind it.
            started = time.perf_counter()
            status, body = _post(handle, "coverage", {"targets": [2]})
            elapsed = time.perf_counter() - started
            assert status == 503
            assert "in-flight limit" in body["error"]["message"]
            assert elapsed < 1.0, (
                f"503 took {elapsed:.2f}s — the request queued instead "
                "of failing fast"
            )
            # The 503 advertises the configured Retry-After.
            client = _HttpClient(handle.base_url)
            try:
                client._conn.request(
                    "POST", "/query/coverage",
                    body=json.dumps({"targets": [2]}),
                    headers={"Content-Type": "application/json"},
                )
                response = client._conn.getresponse()
                response.read()
                assert response.status == 503
                assert response.headers["Retry-After"] == "2"
            finally:
                client.close()
            # Health/stats endpoints bypass admission control.
            assert _get(handle, "/healthz")[0] == 200
            status, stats = _get(handle, "/stats")
            assert status == 200
            assert stats["server"]["in_flight"] == 1
            assert stats["endpoints"]["coverage"]["rejections"] == 2
        finally:
            service.release.set()
            blocker.join()
            handle.stop()
        assert results and results[0][0] == 200

    def test_rejections_counted_by_http_loadgen(self, graph, index):
        service = _GatedService(
            IndexSnapshot.capture(graph, index), batch_window=0.0
        )
        handle = start_http_server(service, max_inflight=1)
        try:
            # One gated slot, several clients: some queries answer, the
            # overflow is counted as rejections, and nothing queues
            # without bound or tears the run down.
            queries = [WorkloadQuery(kind="metrics", targets=(1,))] * 6
            reports: list = []

            def run():
                reports.append(run_load(
                    service, queries, num_clients=3,
                    transport="http", base_url=handle.base_url,
                ))

            runner = threading.Thread(target=run, daemon=True)
            runner.start()
            assert service.entered.wait(10)
            time.sleep(0.1)
            service.release.set()
            runner.join(timeout=30)
            assert not runner.is_alive()
            report = reports[0]
            assert report.num_queries == 6
            assert report.errors == 0
            assert 0 < report.rejections < 6
        finally:
            service.release.set()
            handle.stop()

    def test_connection_cap_rejects_fast(self, graph, index):
        handle = start_http_server(
            _service(graph, index), max_connections=1
        )
        try:
            first = _HttpClient(handle.base_url)
            try:
                assert first.request("GET", "/healthz")[0] == 200
                # The lone connection slot is held by the keep-alive
                # client above; a second connection gets 503 and close.
                with socket.create_connection(
                    ("127.0.0.1", handle.server.port), timeout=5
                ) as sock:
                    sock.sendall(
                        b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
                    )
                    response = sock.recv(65536).decode()
                assert response.startswith("HTTP/1.1 503")
                assert "Retry-After" in response
                assert "connection limit" in response
                # The admitted connection keeps working.
                assert first.request("GET", "/healthz")[0] == 200
            finally:
                first.close()
        finally:
            handle.stop()


class TestLifecycle:
    def test_ephemeral_port_and_stop_idempotent(self, graph, index):
        handle = start_http_server(_service(graph, index), port=0)
        port = handle.server.port
        assert 1024 <= port <= 65535
        assert _get(handle, "/healthz")[0] == 200
        handle.stop()
        handle.stop()  # idempotent
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=0.5)

    def test_constructor_validation(self, graph, index):
        from repro.serve import DominationHttpServer

        service = _service(graph, index)
        with pytest.raises(ParameterError):
            DominationHttpServer(service, max_inflight=0)
        with pytest.raises(ParameterError):
            DominationHttpServer(service, max_connections=0)
        with pytest.raises(ParameterError):
            DominationHttpServer(service, retry_after=-1)
        with pytest.raises(ParameterError):
            DominationHttpServer(service).port  # not started

    def test_keep_alive_and_connection_close(self, graph, index, server):
        with socket.create_connection(
            ("127.0.0.1", server.server.port), timeout=5
        ) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            first = sock.recv(65536).decode()
            assert "Connection: keep-alive" in first
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                b"Connection: close\r\n\r\n"
            )
            second = sock.recv(65536).decode()
            assert "Connection: close" in second
            assert sock.recv(1024) == b""  # server closed as promised

    def test_oversized_body_rejected(self, graph, index, server):
        with socket.create_connection(
            ("127.0.0.1", server.server.port), timeout=5
        ) as sock:
            sock.sendall(
                b"POST /query/select HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 999999999\r\n\r\n"
            )
            response = sock.recv(65536).decode()
        assert response.startswith("HTTP/1.1 413")


class TestSchemaUnits:
    """Fast structural checks; the exhaustive fuzz lives in the slow lane."""

    def test_round_trip_identity(self):
        for req in (
            SelectRequest(k=5),
            SelectRequest(k=0, objective="f1"),
            MetricsRequest(targets=(3, 1, 2)),
            CoverageRequest(targets=()),
            MinTargetsRequest(fraction=0.4),
            MinTargetsRequest(fraction=1.0, max_size=3),
        ):
            assert decode_request(*encode_request(req)) == req

    def test_decode_rejects_non_object_bodies(self):
        for body in (None, 3, "x", [1]):
            with pytest.raises(ParameterError, match="JSON object"):
                decode_request("select", body)

    def test_fraction_must_be_finite_number(self):
        with pytest.raises(ParameterError, match="field 'fraction'"):
            decode_request("min_targets", {"fraction": float("inf")})
        with pytest.raises(ParameterError, match="field 'fraction'"):
            decode_request("min_targets", {"fraction": True})
        assert decode_request(
            "min_targets", {"fraction": 1}
        ) == MinTargetsRequest(fraction=1.0)

    def test_workload_query_to_request(self):
        assert WorkloadQuery(kind="select", k=3).to_request() == (
            SelectRequest(k=3)
        )
        assert WorkloadQuery(
            kind="min-targets", fraction=0.5
        ).to_request() == MinTargetsRequest(fraction=0.5)
        with pytest.raises(ParameterError):
            WorkloadQuery(kind="nope").to_request()


# ----------------------------------------------------------------------
# Exhaustive schema properties: slow lane (hypothesis).
# ----------------------------------------------------------------------
pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

valid_requests = st.one_of(
    st.builds(
        SelectRequest,
        k=st.integers(min_value=0, max_value=10**9),
        objective=st.sampled_from(["f1", "f2"]),
    ),
    st.builds(
        MetricsRequest,
        targets=st.lists(
            st.integers(min_value=0, max_value=10**9), max_size=16
        ).map(tuple),
    ),
    st.builds(
        CoverageRequest,
        targets=st.lists(
            st.integers(min_value=0, max_value=10**9), max_size=16
        ).map(tuple),
    ),
    st.builds(
        MinTargetsRequest,
        fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        max_size=st.one_of(st.none(), st.integers(1, 10**6)),
    ),
)

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


@pytest.mark.slow
class TestSchemaProperties:
    @settings(deadline=None, max_examples=200)
    @given(req=valid_requests)
    def test_round_trip_is_identity(self, req):
        kind, payload = encode_request(req)
        # The wire payload must survive JSON serialization bit-exactly.
        payload = json.loads(json.dumps(payload))
        assert decode_request(kind, payload) == req

    @settings(deadline=None, max_examples=300)
    @given(
        kind=st.one_of(
            st.sampled_from(
                ["select", "metrics", "coverage", "min_targets"]
            ),
            st.text(max_size=12),
        ),
        payload=json_values,
    )
    def test_fuzzed_payloads_yield_typed_errors(self, kind, payload):
        """decode_request either returns a request dataclass or raises
        ParameterError — nothing else, whatever the payload."""
        try:
            req = decode_request(kind, payload)
        except ParameterError:
            return
        assert type(req) in (
            SelectRequest, MetricsRequest, CoverageRequest,
            MinTargetsRequest,
        )


@pytest.mark.slow
class TestWireFuzz:
    """Fuzzed bodies through a real socket: always a typed JSON answer,
    never a traceback, and the connection stays usable."""

    @pytest.fixture(scope="class")
    def fuzz_server(self):
        graph = power_law_graph(30, 60, seed=9)
        index = FlatWalkIndex.build(graph, 3, 4, seed=9)
        handle = start_http_server(
            DominationService(
                IndexSnapshot.capture(graph, index), batch_window=0.0
            )
        )
        yield handle
        handle.stop()

    @settings(
        deadline=None,
        max_examples=150,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(body=st.binary(max_size=512))
    def test_arbitrary_bytes_never_crash_the_connection(
        self, fuzz_server, body
    ):
        client = _HttpClient(fuzz_server.base_url)
        try:
            client._conn.request(
                "POST", "/query/select", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = client._conn.getresponse()
            payload = json.loads(response.read())
            assert response.status in (200, 400)
            if response.status != 200:
                assert payload["error"]["type"] == "ParameterError"
                assert "Traceback" not in json.dumps(payload)
            # Same connection answers a well-formed follow-up.
            status, answer = client.request(
                "POST", "/query/select", {"k": 1}
            )
            assert status == 200
        finally:
            client.close()
