"""Telemetry overhead gate — enabled instrumentation is ~free.

The acceptance benchmark for the unified telemetry subsystem
(:mod:`repro.obs`, DESIGN.md §14) on the serving-tier instance.  The
claims:

* **bit-identical results** — an end-to-end greedy solve with the
  metrics registry and span tracer enabled returns exactly the
  selections/gains of the disabled run (hard parity, never gated off);
  instrumentation observes, it must not perturb; and
* **bounded overhead** — the enabled solve stays within **5%** of the
  disabled solve (soft timing gate, honors ``--no-timing-gate``).  The
  instrumentation pattern that makes this hold: hot loops accumulate
  plain ints on the engine and flush to the registry once per solve.

Keys (via ``bench_record`` for the ``--json`` report and
``tools/check_bench_regression.py``):

* ``observability.solve_parity`` — the hard result contract.
* ``observability.solve_disabled_s`` / ``observability.solve_enabled_s``
  — best-of-N end-to-end solve times (absolute: soft on shared runners).
* ``observability.telemetry_overhead_x`` — disabled over enabled time
  (higher is better; ~1.0 when instrumentation is free, gated in-bench
  at >= 1/1.05).
"""

import pytest

from repro import obs
from repro.core.approx_fast import approx_greedy_fast
from repro.graphs.generators import power_law_graph
from repro.walks.index import FlatWalkIndex

from benchmarks.conftest import best_of

#: Same instance family as bench_serving.py / bench_http_serving.py.
NODES = 2_000
EDGES = 12_000
LENGTH = 6
REPLICATES = 100
SEED = 11
K = 32
REPEATS = 5
OVERHEAD_CEILING = 1.05


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(NODES, EDGES, seed=7)


@pytest.fixture(scope="module")
def index(graph):
    return FlatWalkIndex.build(
        graph, LENGTH, REPLICATES, seed=SEED, engine="csr"
    )


def test_telemetry_overhead_and_parity(
    graph, index, bench_record, timing_gate
):
    """Enabled vs disabled end-to-end solve: same answer, <=5% slower."""

    def solve():
        return approx_greedy_fast(
            graph, K, LENGTH, index=index, objective="f2"
        )

    obs.disable()
    disabled_s, baseline = best_of(REPEATS, solve)

    obs.configure()
    try:
        enabled_s, instrumented = best_of(REPEATS, solve)
        snap = obs.snapshot()
        events = obs.tracer().events()
    finally:
        obs.disable()

    parity = (
        instrumented.selected == baseline.selected
        and instrumented.gains == baseline.gains
    )
    overhead_x = disabled_s / enabled_s
    bench_record("observability.solve_parity", parity)
    bench_record("observability.solve_disabled_s", disabled_s)
    bench_record("observability.solve_enabled_s", enabled_s)
    bench_record("observability.telemetry_overhead_x", overhead_x)
    print(
        f"\ntelemetry overhead (n={NODES}, R={REPLICATES}, L={LENGTH}, "
        f"k={K}, best of {REPEATS}): disabled {disabled_s * 1e3:.1f} ms, "
        f"enabled {enabled_s * 1e3:.1f} ms "
        f"({enabled_s / disabled_s:.3f}x)"
    )

    assert parity, "telemetry changed the solver's answer"
    # The enabled run must actually have recorded something — a silent
    # no-op would pass any overhead gate.
    counters = {name for (name, _labels) in snap.counters}
    assert "solver_runs_total" in counters
    assert "solver_gain_evaluations_total" in counters
    assert any(event["name"] == "solve.greedy" for event in events)

    if enabled_s <= disabled_s * OVERHEAD_CEILING:
        pass
    elif timing_gate:
        raise AssertionError(
            f"telemetry overhead {enabled_s / disabled_s:.3f}x exceeds "
            f"the {OVERHEAD_CEILING}x ceiling"
        )
    else:
        print(
            f"TIMING (report-only, --no-timing-gate): telemetry overhead "
            f"{enabled_s / disabled_s:.3f}x exceeds the "
            f"{OVERHEAD_CEILING}x ceiling"
        )
