"""Tests for SNAP-format edge-list IO."""

import gzip

import pytest

from repro.errors import GraphFormatError
from repro.graphs.generators import power_law_graph
from repro.graphs.io import read_edge_list, write_edge_list


class TestRoundTrip:
    def test_write_then_read(self, tmp_path, small_power_law):
        path = tmp_path / "graph.txt"
        write_edge_list(small_power_law, path)
        loaded = read_edge_list(path, relabel=False)
        assert loaded == small_power_law

    def test_header_written_as_comments(self, tmp_path, small_power_law):
        path = tmp_path / "graph.txt"
        write_edge_list(small_power_law, path, header="source: test\nrun: 1")
        text = path.read_text()
        assert text.startswith("# source: test\n# run: 1\n")

    def test_gzip_round_trip(self, tmp_path):
        g = power_law_graph(50, 120, seed=2)
        path = tmp_path / "graph.txt.gz"
        write_edge_list(g, path)
        with gzip.open(path, "rt") as handle:
            assert handle.readline().startswith("#")
        assert read_edge_list(path, relabel=False) == g


class TestReading:
    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n% other comment\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_relabel_compacts_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 200\n200 300\n")
        g = read_edge_list(path, relabel=True)
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_no_relabel_keeps_gaps(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n5 6\n")
        g = read_edge_list(path, relabel=False)
        assert g.num_nodes == 7
        assert g.degree(3) == 0

    def test_directed_duplicates_collapse(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n")
        assert read_edge_list(path).num_edges == 1

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        assert read_edge_list(path).num_edges == 1

    def test_tab_and_space_separators(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\t1\n1   2\n")
        assert read_edge_list(path).num_edges == 2

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5\n")
        assert read_edge_list(path).num_edges == 1


class TestErrors:
    def test_single_column_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("42\n")
        with pytest.raises(GraphFormatError, match="two endpoints"):
            read_edge_list(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            read_edge_list(path)

    def test_error_mentions_line_number(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\nbroken\n")
        with pytest.raises(GraphFormatError, match=":2:"):
            read_edge_list(path)
