"""Tests for the problem dataclasses and the solve() dispatcher."""

import pytest

from repro.errors import ParameterError
from repro.core.problems import SOLVER_NAMES, Problem1, Problem2, solve


class TestProblemSpecs:
    def test_objective_tags(self, small_power_law):
        assert Problem1(small_power_law, 3, 5).objective == "f1"
        assert Problem2(small_power_law, 3, 5).objective == "f2"

    def test_k_validated(self, small_power_law):
        with pytest.raises(ParameterError):
            Problem1(small_power_law, -1, 5)
        with pytest.raises(ParameterError):
            Problem1(small_power_law, small_power_law.num_nodes + 1, 5)

    def test_length_validated(self, small_power_law):
        with pytest.raises(ParameterError):
            Problem2(small_power_law, 3, -1)


class TestSolveDispatch:
    @pytest.mark.parametrize("method", ["approx-fast", "degree", "dominate"])
    def test_fast_methods_both_problems(self, small_power_law, method):
        for problem in (
            Problem1(small_power_law, 3, 4),
            Problem2(small_power_law, 3, 4),
        ):
            result = solve(problem, method=method, **(
                {"seed": 1, "num_replicates": 10}
                if method == "approx-fast"
                else {}
            ))
            assert len(result.selected) == 3

    def test_dp_method(self, small_power_law):
        result = solve(Problem1(small_power_law, 2, 3), method="dp")
        assert result.algorithm == "DPF1"
        result = solve(Problem2(small_power_law, 2, 3), method="dp")
        assert result.algorithm == "DPF2"

    def test_sampling_method(self, small_power_law):
        result = solve(
            Problem1(small_power_law, 2, 3), method="sampling",
            num_replicates=30, seed=2,
        )
        assert result.algorithm == "SamplingF1"

    def test_approx_reference_method(self, small_power_law):
        result = solve(
            Problem2(small_power_law, 2, 3), method="approx",
            num_replicates=5, seed=3,
        )
        assert result.algorithm == "ApproxF2"

    def test_random_method(self, small_power_law):
        result = solve(Problem1(small_power_law, 4, 3), method="random", seed=1)
        assert len(set(result.selected)) == 4

    def test_unknown_method(self, small_power_law):
        with pytest.raises(ParameterError, match="unknown method"):
            solve(Problem1(small_power_law, 2, 3), method="magic")

    def test_solver_names_all_dispatch(self, small_power_law):
        problem = Problem1(small_power_law, 2, 3)
        for method in SOLVER_NAMES:
            options = {}
            if method in ("sampling", "approx", "approx-fast"):
                options = {"num_replicates": 5, "seed": 1}
            elif method == "random":
                options = {"seed": 1}
            result = solve(problem, method=method, **options)
            assert len(result.selected) == 2
