"""Directed, weighted domination: placement in a trust network.

The paper develops its machinery on undirected, unweighted graphs and
remarks that it "can also be easily extended to directed and weighted
graphs" — this example exercises that extension end to end.  We build an
Epinions-style trust digraph where arc weight encodes trust strength, so a
browsing user follows a recommendation with probability proportional to
trust.  The weighted Algorithm 6 (``repro.weighted_approx_greedy``) places
the items; the weighted DP greedy cross-checks it on a subsampled graph.

Run:  python examples/directed_trust_network.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.hitting.weighted import weighted_hit_probability_vector

CIRCLES = 10        # trust circles (communities)
CIRCLE_SIZE = 150
USERS = CIRCLES * CIRCLE_SIZE
K = 10
LENGTH = 5


def build_trust_graph(seed: int) -> repro.WeightedDiGraph:
    """Community-structured trust digraph with lognormal trust weights.

    Users trust mostly within their own circle; cross-circle trust is rare
    and weak.  Placement has to cover circles, which in-strength ranking
    misses (the strongest hubs concentrate in a few circles).
    """
    from repro.graphs.generators import planted_partition_graph

    rng = np.random.default_rng(seed)
    base = planted_partition_graph(
        CIRCLES, CIRCLE_SIZE, intra_probability=0.05,
        inter_probability=0.0008, seed=rng,
    )
    triples = []
    for u, v in base.edges():
        same_circle = (u // CIRCLE_SIZE) == (v // CIRCLE_SIZE)
        scale = 1.0 if same_circle else 0.3  # cross-circle trust is weak
        # Trust is asymmetric: draw each direction separately, and drop a
        # third of the reverse arcs entirely.
        triples.append((u, v, scale * float(rng.lognormal(0.0, 0.75))))
        if rng.random() < 0.67:
            triples.append((v, u, scale * float(rng.lognormal(0.0, 0.75))))
    return repro.WeightedDiGraph.from_edges(triples, num_nodes=USERS)


def main() -> None:
    graph = build_trust_graph(seed=21)
    print(f"trust network: {graph}")

    result = repro.weighted_approx_greedy(
        graph, K, LENGTH, num_replicates=100, objective="f2", seed=4
    )
    print(f"\n{result.algorithm} selected {len(result.selected)} hosts "
          f"in {result.elapsed_seconds:.2f}s")

    coverage = weighted_hit_probability_vector(
        graph, set(result.selected), LENGTH
    )
    print(f"expected users reached (weighted EHN): {coverage.sum():,.1f} "
          f"of {USERS}")

    # Compare against placing on the strongest trust hubs (in-strength).
    in_strength = np.zeros(USERS)
    for u, v, w in graph.arcs():
        in_strength[v] += w
    hubs = tuple(int(v) for v in np.argsort(-in_strength)[:K])
    hub_coverage = weighted_hit_probability_vector(graph, set(hubs), LENGTH)
    print(f"trust-hub placement reaches:           "
          f"{hub_coverage.sum():,.1f} of {USERS}")

    greedy_circles = len({v // CIRCLE_SIZE for v in result.selected})
    hub_circles = len({v // CIRCLE_SIZE for v in hubs})
    print(f"\ncircles covered: greedy {greedy_circles}/{CIRCLES}, "
          f"trust hubs {hub_circles}/{CIRCLES}")
    print("Greedy should win: trust hubs cluster, greedy spreads.")


if __name__ == "__main__":
    main()
