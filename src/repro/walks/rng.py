"""Randomness discipline for the whole package.

Every stochastic public API in :mod:`repro` accepts a ``seed`` argument that
may be ``None`` (fresh OS entropy), an ``int`` (reproducible), or an existing
:class:`numpy.random.Generator` (caller-managed stream).  This module is the
single place that interprets that convention.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "resolve_rng",
    "spawn_children",
    "stream_state",
    "generator_at",
    "advance_stream",
    "SeedLike",
]

SeedLike = "int | numpy.random.Generator | None"

#: Bit generators whose ``advance(k)`` is exactly "as if ``k`` 64-bit draws
#: were made" — the property the stream-slicing parallel backends rely on.
#: (Philox also has ``advance`` but counts 256-bit blocks, so it is *not*
#: sliceable this way; it is deliberately absent.)
_SLICEABLE_BIT_GENERATORS = ("PCG64", "PCG64DXSM")


def resolve_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Turn a seed-like value into a :class:`numpy.random.Generator`.

    ``None`` draws fresh entropy, an ``int`` seeds a PCG64 stream, and a
    ``Generator`` is returned unchanged (shared, not copied) so a caller can
    thread one stream through several calls.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ParameterError("integer seeds must be non-negative")
        return np.random.default_rng(int(seed))
    raise ParameterError(f"cannot interpret {type(seed).__name__} as a seed")


def spawn_children(
    seed: "int | np.random.Generator | None", count: int
) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used where work is split into phases (e.g. one stream per replicate of
    the walk index) so that changing one phase's consumption pattern does not
    perturb the others.
    """
    if count < 0:
        raise ParameterError("count must be non-negative")
    return resolve_rng(seed).spawn(count)


# ----------------------------------------------------------------------
# Stream slicing (the substrate of the sharded / multiproc walk backends)
# ----------------------------------------------------------------------
# A PCG64 ``Generator`` consumes exactly one 64-bit state step per
# ``random()`` double, and ``bit_generator.advance(k)`` repositions the
# stream as if ``k`` such draws had been made.  Together these make the
# single logical stream *sliceable*: a worker can reconstruct the
# generator from its picklable state dict, jump straight to its slice of
# a ``rng.random(batch)`` block, draw its rows, and skip over everyone
# else's — producing bit-identical uniforms to the sequential engines
# without any cross-worker communication.

def stream_state(rng: np.random.Generator) -> "tuple[str, dict] | None":
    """Picklable ``(bit-generator class name, state dict)`` of a stream.

    Returns ``None`` when the generator's bit generator is not sliceable
    (its ``advance`` does not count 64-bit draws, or it has none), which
    tells the parallel backends to fall back to a sequential kernel.
    """
    bit_gen = rng.bit_generator
    name = type(bit_gen).__name__
    if name not in _SLICEABLE_BIT_GENERATORS:
        return None
    return name, bit_gen.state


def generator_at(state: "tuple[str, dict]", offset: int) -> np.random.Generator:
    """A fresh :class:`~numpy.random.Generator` positioned ``offset``
    64-bit draws into the captured stream.

    The returned generator owns a private bit generator, so advancing it
    never perturbs the stream the state was captured from.
    """
    name, raw = state
    bit_gen = getattr(np.random, name)()
    bit_gen.state = raw
    if offset:
        bit_gen.advance(offset)
    return np.random.Generator(bit_gen)


def advance_stream(rng: np.random.Generator, count: int) -> None:
    """Advance ``rng`` as if ``count`` doubles had been drawn from it.

    Used by the parallel backends to move the *caller's* generator past
    the draws their workers consumed, so a shared stream threaded through
    several calls stays aligned with the sequential backends.  The 32-bit
    spill buffer (``has_uint32``/``uinteger``) is preserved — double
    draws never touch it, but ``advance`` would clear it.
    """
    if count <= 0:
        return
    bit_gen = rng.bit_generator
    before = bit_gen.state
    bit_gen.advance(count)
    if isinstance(before, dict) and before.get("has_uint32"):
        after = bit_gen.state
        after["has_uint32"] = before["has_uint32"]
        after["uinteger"] = before["uinteger"]
        bit_gen.state = after
