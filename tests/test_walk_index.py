"""Tests for the inverted walk index (Algorithm 3), both representations.

The strongest oracle here is the paper itself: Table 1 prints the exact
inverted index produced by the Example 3.1 walks, and we assert our builders
reproduce it entry-for-entry.
"""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.generators import power_law_graph
from repro.walks.engine import batch_walks
from repro.walks.index import (
    FlatWalkIndex,
    IndexEntry,
    InvertedIndex,
    walker_major_starts,
)

#: Table 1 of the paper, 0-based: hit node -> [(walker, hop), ...].
PAPER_TABLE1 = {
    0: [],
    1: [(0, 1), (2, 1), (4, 1)],
    2: [(0, 2), (1, 1)],
    3: [(7, 2)],
    4: [(1, 2), (2, 2), (3, 2), (5, 2), (6, 1)],
    5: [(4, 2)],
    6: [(3, 1), (5, 1), (7, 1)],
    7: [],
}


class TestPaperTable1:
    def test_reference_index_matches_paper(self, example_walks):
        index = InvertedIndex.from_walks(example_walks, num_nodes=8, num_replicates=1)
        for node, expected in PAPER_TABLE1.items():
            got = sorted((e.walker, e.hop) for e in index.entries(0, node))
            assert got == sorted(expected), f"node v{node + 1}"

    def test_flat_index_matches_paper(self, example_walks):
        index = FlatWalkIndex.from_walks(example_walks, num_nodes=8, num_replicates=1)
        for node, expected in PAPER_TABLE1.items():
            got = [(walker, hop) for _, walker, hop in index.entry_records(node)]
            assert sorted(got) == sorted(expected), f"node v{node + 1}"

    def test_repeated_node_not_double_indexed(self, example_walks):
        # Walk (v7, v5, v7): v7 revisits itself; no entry may appear for it.
        index = InvertedIndex.from_walks(example_walks, num_nodes=8, num_replicates=1)
        walkers_into_6 = [e.walker for e in index.entries(0, 6)]
        assert 6 not in walkers_into_6


class TestReferenceBuilder:
    def test_build_first_visits_only(self, small_power_law):
        index = InvertedIndex.build(small_power_law, length=6, num_replicates=3, seed=1)
        for i in range(3):
            for v in range(small_power_law.num_nodes):
                walkers = [e.walker for e in index.entries(i, v)]
                assert len(walkers) == len(set(walkers)), "duplicate walker entry"

    def test_hops_in_range(self, small_power_law):
        index = InvertedIndex.build(small_power_law, length=5, num_replicates=2, seed=2)
        for i in range(2):
            for v in range(small_power_law.num_nodes):
                for entry in index.entries(i, v):
                    assert 1 <= entry.hop <= 5

    def test_start_node_never_indexes_itself(self, small_power_law):
        index = InvertedIndex.build(small_power_law, length=6, num_replicates=2, seed=3)
        for i in range(2):
            for v in range(small_power_law.num_nodes):
                assert all(e.walker != v for e in index.entries(i, v))

    def test_zero_length_walks_empty_index(self, small_power_law):
        index = InvertedIndex.build(small_power_law, length=0, num_replicates=2, seed=4)
        assert index.total_entries == 0

    def test_from_walks_validation(self):
        with pytest.raises(ParameterError):
            InvertedIndex.from_walks([[0, 1]], num_nodes=2, num_replicates=2)
        with pytest.raises(ParameterError):
            # wrong start node for walker-major layout
            InvertedIndex.from_walks([[1, 0], [1, 0]], num_nodes=2, num_replicates=1)
        with pytest.raises(ParameterError):
            # inconsistent lengths
            InvertedIndex.from_walks(
                [[0, 1], [1, 0, 1]], num_nodes=2, num_replicates=1
            )

    def test_param_validation(self):
        with pytest.raises(ParameterError):
            InvertedIndex(num_nodes=2, length=-1, num_replicates=1)
        with pytest.raises(ParameterError):
            InvertedIndex(num_nodes=2, length=1, num_replicates=0)


class TestFlatEqualsReference:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_entries_on_shared_walks(self, seed):
        graph = power_law_graph(40, 120, seed=seed)
        replicates = 4
        starts = walker_major_starts(graph.num_nodes, replicates)
        walks = batch_walks(graph, starts, 5, seed=seed)
        ref = InvertedIndex.from_walks(walks, graph.num_nodes, replicates)
        flat = FlatWalkIndex.from_walks(walks, graph.num_nodes, replicates)
        assert ref.total_entries == flat.total_entries
        for v in range(graph.num_nodes):
            ref_records = sorted(
                (i, e.walker, e.hop)
                for i in range(replicates)
                for e in ref.entries(i, v)
            )
            assert flat.entry_records(v) == ref_records

    def test_to_flat_round_trip(self, example_walks):
        ref = InvertedIndex.from_walks(example_walks, num_nodes=8, num_replicates=1)
        flat = ref.to_flat()
        for v in range(8):
            assert flat.entry_records(v) == sorted(
                (0, e.walker, e.hop) for e in ref.entries(0, v)
            )


class TestFlatBuilder:
    def test_chunked_build_deterministic(self):
        # Same seed and chunking -> identical index.  (Different chunk sizes
        # legitimately consume the RNG stream differently.)
        graph = power_law_graph(50, 150, seed=7)
        a = FlatWalkIndex.build(graph, 4, 3, seed=11, chunk_rows=8)
        b = FlatWalkIndex.build(graph, 4, 3, seed=11, chunk_rows=8)
        assert a.total_entries == b.total_entries
        for v in range(graph.num_nodes):
            assert a.entry_records(v) == b.entry_records(v)

    def test_chunked_build_invariants(self):
        # Tiny chunks must still yield a well-formed index: hops in range,
        # one entry per (replicate, walker) per hit node, no self entries.
        graph = power_law_graph(40, 100, seed=8)
        flat = FlatWalkIndex.build(graph, 5, 3, seed=12, chunk_rows=7)
        for v in range(graph.num_nodes):
            records = flat.entry_records(v)
            pairs = [(rep, walker) for rep, walker, _ in records]
            assert len(pairs) == len(set(pairs))
            assert all(walker != v for _, walker, _ in records)
            assert all(1 <= hop <= 5 for _, _, hop in records)

    def test_indptr_shape(self, small_power_law):
        flat = FlatWalkIndex.build(small_power_law, 5, 2, seed=1)
        assert flat.indptr.size == small_power_law.num_nodes + 1
        assert flat.indptr[-1] == flat.total_entries

    def test_entries_for_out_of_range(self, small_power_law):
        flat = FlatWalkIndex.build(small_power_law, 3, 1, seed=1)
        with pytest.raises(ParameterError):
            flat.entries_for(small_power_law.num_nodes)

    def test_entry_bound(self, small_power_law):
        # At most one entry per (walker, replicate, hop-distinct node):
        # total <= n * R * L.
        flat = FlatWalkIndex.build(small_power_law, 5, 2, seed=2)
        assert flat.total_entries <= small_power_law.num_nodes * 2 * 5

    def test_state_encoding(self, example_walks):
        flat = FlatWalkIndex.from_walks(example_walks, num_nodes=8, num_replicates=1)
        state, hop = flat.entries_for(1)
        # replicate 0 -> state == walker id
        assert sorted(state.tolist()) == [0, 2, 4]
        assert hop.tolist() == [1, 1, 1]


class TestWalkerMajorStarts:
    def test_layout(self):
        starts = walker_major_starts(3, 2)
        assert starts.tolist() == [0, 0, 1, 1, 2, 2]


class TestCanonicalRecordKey:
    """The sort key must be immune to int32 record arrays (NEP 50).

    ``hits * num_states + states`` with int32 inputs stays int32 under
    both numpy 1.26 value-based casting and 2.x weak scalars whenever
    ``num_states`` fits int32 — wrapping the product silently once
    ``hit * num_states`` crosses 2^31 and scrambling the sort.  The key
    helper forces int64 before multiplying; these tests pin that on the
    1.26/2.x CI matrix.
    """

    def test_int32_inputs_do_not_wrap(self):
        from repro.walks.parallel import canonical_record_key

        num_states = 70_000  # fits int32, so the product would stay int32
        hits = np.array([40_000, 40_001], dtype=np.int32)
        states = np.array([5, 3], dtype=np.int32)
        keys = canonical_record_key(hits, states, num_states)
        assert keys.dtype == np.int64
        # 40_000 * 70_000 = 2.8e9 > 2^31: would be negative if wrapped.
        assert keys[0] == 40_000 * 70_000 + 5
        assert (keys >= 0).all()
        assert keys[0] < keys[1]

    def test_from_records_orders_past_int32_range(self):
        # End-to-end: records for high node ids in a state space whose
        # key range exceeds int32 must land in their indptr slices in
        # ascending state order.
        num_nodes, reps = 70_000, 1
        hits = np.array([60_000, 40_000, 60_000], dtype=np.int32)
        states = np.array([9, 2, 4], dtype=np.int32)
        hops = np.array([1, 2, 3], dtype=np.int32)
        flat = FlatWalkIndex._from_records(
            hits, states, hops, num_nodes=num_nodes, length=3,
            num_replicates=reps,
        )
        s, h = flat.entries_for(40_000)
        assert s.tolist() == [2] and h.tolist() == [2]
        s, h = flat.entries_for(60_000)
        assert s.tolist() == [4, 9] and h.tolist() == [3, 1]
