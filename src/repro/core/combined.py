"""Combined objective — the paper's first future-work problem.

Section 5 suggests optimizing a positively weighted combination of the two
objectives, noting it stays submodular:

    ``F_w(S) = w1 * F1(S) + w2 * F2(S)``,  ``w1, w2 >= 0``.

* :class:`CombinedObjective` — exact, pluggable into the generic greedy.
* :func:`approx_combined` — Algorithm 6 machinery: two
  :class:`FastApproxEngine` instances share one walk index; the blended raw
  gain drives the argmax and both states are updated after each pick.

Because ``F1`` is measured in hops (scale ``~ n L``) and ``F2`` in nodes
(scale ``~ n``), callers who want a balanced trade-off typically pass
``w1 = lambda / L`` and ``w2 = 1 - lambda`` — helper
:func:`balanced_weights` does exactly that.
"""

from __future__ import annotations

import time
from typing import Collection

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.core.approx_fast import FastApproxEngine
from repro.core.coverage_kernel import validate_gain_backend
from repro.core.greedy import greedy_select
from repro.core.objectives import F1Objective, F2Objective
from repro.core.result import SelectionResult
from repro.walks.index import FlatWalkIndex

__all__ = ["CombinedObjective", "balanced_weights", "combined_greedy", "approx_combined"]


def _check_weights(weight_f1: float, weight_f2: float) -> None:
    if weight_f1 < 0 or weight_f2 < 0:
        raise ParameterError("weights must be non-negative")
    if weight_f1 == 0 and weight_f2 == 0:
        raise ParameterError("at least one weight must be positive")


def balanced_weights(trade_off: float, length: int) -> tuple[float, float]:
    """Weights putting ``F1`` and ``F2`` on comparable scales.

    ``trade_off = 1`` is pure (scaled) ``F1``; ``trade_off = 0`` is pure
    ``F2``.  ``F1`` is divided by ``L`` so one fully-dominated node is worth
    one unit under either term.
    """
    if not 0.0 <= trade_off <= 1.0:
        raise ParameterError("trade_off must lie in [0, 1]")
    if length <= 0:
        raise ParameterError("length must be positive to balance scales")
    return trade_off / length, 1.0 - trade_off


class CombinedObjective:
    """Exact ``w1 F1 + w2 F2`` — nondecreasing submodular by closure."""

    name = "F1+F2"

    def __init__(
        self, graph: Graph, length: int, weight_f1: float, weight_f2: float
    ):
        _check_weights(weight_f1, weight_f2)
        self._f1 = F1Objective(graph, length)
        self._f2 = F2Objective(graph, length)
        self.weight_f1 = weight_f1
        self.weight_f2 = weight_f2

    @property
    def num_nodes(self) -> int:
        return self._f1.num_nodes

    def value(self, targets: Collection[int]) -> float:
        return self.weight_f1 * self._f1.value(targets) + self.weight_f2 * (
            self._f2.value(targets)
        )

    def marginal_gain(self, targets: Collection[int], candidate: int) -> float:
        return self.weight_f1 * self._f1.marginal_gain(targets, candidate) + (
            self.weight_f2 * self._f2.marginal_gain(targets, candidate)
        )


def combined_greedy(
    graph: Graph,
    k: int,
    length: int,
    weight_f1: float,
    weight_f2: float,
    lazy: bool = True,
) -> SelectionResult:
    """Exact greedy on the combined objective."""
    objective = CombinedObjective(graph, length, weight_f1, weight_f2)
    result = greedy_select(objective, k, lazy=lazy, algorithm_name="CombinedDP")
    result.params.update(
        {"L": length, "w1": weight_f1, "w2": weight_f2, "objective": "combined"}
    )
    return result


def approx_combined(
    graph: Graph,
    k: int,
    length: int,
    weight_f1: float,
    weight_f2: float,
    num_replicates: int = 100,
    seed: "int | np.random.Generator | None" = None,
    index: FlatWalkIndex | None = None,
    gain_backend: "str | None" = None,
) -> SelectionResult:
    """Index-based greedy on ``w1 F1 + w2 F2`` (one shared walk index).

    Runs full gain sweeps (no CELF) for clarity; the blended gains remain
    submodular, so a lazy variant would also be sound.  Both engines honor
    ``gain_backend`` (:mod:`repro.core.coverage_kernel`) and the raw gains
    are backend-independent, so the blended argmax is too.
    """
    _check_weights(weight_f1, weight_f2)
    if not 0 <= k <= graph.num_nodes:
        raise ParameterError(f"k={k} must lie in [0, n={graph.num_nodes}]")
    gain_backend = validate_gain_backend(gain_backend)
    started = time.perf_counter()
    if index is None:
        index = FlatWalkIndex.build(graph, length, num_replicates, seed=seed)
    elif index.num_nodes != graph.num_nodes:
        raise ParameterError("index was built for a different graph size")
    engine_f1 = FastApproxEngine(index, objective="f1", gain_backend=gain_backend)
    engine_f2 = FastApproxEngine(index, objective="f2", gain_backend=gain_backend)
    selected: list[int] = []
    gains: list[float] = []
    chosen = np.zeros(graph.num_nodes, dtype=bool)
    for _ in range(k):
        blended = weight_f1 * engine_f1.gains_all().astype(np.float64) + (
            weight_f2 * engine_f2.gains_all().astype(np.float64)
        )
        blended[chosen] = -np.inf
        best = int(blended.argmax())
        selected.append(best)
        gains.append(float(blended[best]) / index.num_replicates)
        chosen[best] = True
        engine_f1.select(best)
        engine_f2.select(best)
    elapsed = time.perf_counter() - started
    return SelectionResult(
        algorithm="CombinedApprox",
        selected=tuple(selected),
        gains=tuple(gains),
        elapsed_seconds=elapsed,
        num_gain_evaluations=engine_f1.num_gain_evaluations
        + engine_f2.num_gain_evaluations,
        params={
            "k": k,
            "L": index.length,
            "R": index.num_replicates,
            "w1": weight_f1,
            "w2": weight_f2,
            "objective": "combined",
            "gain_backend": gain_backend,
        },
    )
