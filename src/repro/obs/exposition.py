"""Prometheus text exposition for :class:`~repro.obs.registry.MetricsSnapshot`.

Renders the version-0.0.4 text format (the one every Prometheus scraper
speaks): ``# HELP``/``# TYPE`` headers per metric family, label sets in
``{key="value"}`` form with backslash/quote/newline escaping, histogram
families expanded into cumulative ``_bucket{le="..."}`` series plus
``_sum``/``_count``.  All metric names get a ``repro_`` prefix here, so
call sites stay short (``http_requests_total`` →
``repro_http_requests_total``).
"""

from __future__ import annotations

from repro.obs.registry import MetricsSnapshot

__all__ = ["render_prometheus"]

PREFIX = "repro_"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(labels, extra=()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in pairs
    )
    return "{" + body + "}"


def _header(lines, name, kind, help_text):
    if help_text:
        lines.append(f"# HELP {name} {_escape_label(help_text)}")
    lines.append(f"# TYPE {name} {kind}")


def render_prometheus(
    *snapshots: MetricsSnapshot, prefix: str = PREFIX
) -> str:
    """All snapshots merged and rendered as Prometheus text exposition."""
    snap = MetricsSnapshot.merge_all(snapshots)
    lines: list = []

    def by_name(table):
        grouped: dict = {}
        for (name, labels), value in table.items():
            grouped.setdefault(name, []).append((labels, value))
        return sorted(grouped.items())

    for name, series in by_name(snap.counters):
        full = prefix + name
        _header(lines, full, "counter", snap.help.get(name, ""))
        for labels, value in sorted(series):
            lines.append(f"{full}{_labels_text(labels)} {_format_value(value)}")

    for name, series in by_name(snap.gauges):
        full = prefix + name
        _header(lines, full, "gauge", snap.help.get(name, ""))
        for labels, value in sorted(series):
            lines.append(f"{full}{_labels_text(labels)} {_format_value(value)}")

    for name, series in by_name(snap.histograms):
        full = prefix + name
        _header(lines, full, "histogram", snap.help.get(name, ""))
        for labels, state in sorted(series):
            cumulative = 0
            for bound, count in zip(state.bounds, state.counts):
                cumulative += count
                le = _labels_text(labels, [("le", _format_value(bound))])
                lines.append(f"{full}_bucket{le} {cumulative}")
            inf = _labels_text(labels, [("le", "+Inf")])
            lines.append(f"{full}_bucket{inf} {state.count}")
            lines.append(
                f"{full}_sum{_labels_text(labels)} {_format_value(state.sum)}"
            )
            lines.append(f"{full}_count{_labels_text(labels)} {state.count}")

    return "\n".join(lines) + ("\n" if lines else "")
