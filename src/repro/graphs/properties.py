"""Structural graph statistics.

These are the quantities reported in dataset summaries (Table 2 style) and
used by tests to sanity-check generators: degree profile, connectivity, and
distance bounds.  Everything here is exact and deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph

__all__ = [
    "DegreeSummary",
    "degree_summary",
    "connected_components",
    "largest_component",
    "is_connected",
    "bfs_distances",
    "eccentricity",
    "density",
    "degeneracy_order",
]


@dataclass(frozen=True)
class DegreeSummary:
    """Five-number degree profile plus mean, as floats."""

    minimum: int
    maximum: int
    mean: float
    median: float
    std: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"deg[min={self.minimum}, med={self.median:.0f}, "
            f"mean={self.mean:.2f}, max={self.maximum}]"
        )


def degree_summary(graph: Graph) -> DegreeSummary:
    """Summarize the degree distribution of ``graph``."""
    if graph.num_nodes == 0:
        raise ParameterError("degree_summary of an empty graph is undefined")
    deg = graph.degrees
    return DegreeSummary(
        minimum=int(deg.min()),
        maximum=int(deg.max()),
        mean=float(deg.mean()),
        median=float(np.median(deg)),
        std=float(deg.std()),
    )


def connected_components(graph: Graph) -> np.ndarray:
    """Component label per node (labels are ``0..c-1`` by discovery order)."""
    n = graph.num_nodes
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for start in range(n):
        if labels[start] >= 0:
            continue
        labels[start] = current
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if labels[v] < 0:
                    labels[v] = current
                    queue.append(int(v))
        current += 1
    return labels


def largest_component(graph: Graph) -> np.ndarray:
    """Node ids of the largest connected component (sorted)."""
    labels = connected_components(graph)
    if labels.size == 0:
        return np.empty(0, dtype=np.int64)
    counts = np.bincount(labels)
    return np.flatnonzero(labels == counts.argmax())


def is_connected(graph: Graph) -> bool:
    """Whether the graph has exactly one connected component."""
    if graph.num_nodes == 0:
        return True
    return bool(connected_components(graph).max() == 0)


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Hop distance from ``source`` to every node (-1 if unreachable)."""
    if not 0 <= source < graph.num_nodes:
        raise ParameterError(f"source {source} out of range")
    dist = np.full(graph.num_nodes, -1, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(int(v))
    return dist


def eccentricity(graph: Graph, source: int) -> int:
    """Largest finite BFS distance from ``source``."""
    dist = bfs_distances(graph, source)
    reachable = dist[dist >= 0]
    return int(reachable.max())


def density(graph: Graph) -> float:
    """``2m / (n (n - 1))`` — fraction of possible edges present."""
    n = graph.num_nodes
    if n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (n * (n - 1))


def degeneracy_order(graph: Graph) -> np.ndarray:
    """Nodes in degeneracy (smallest-last) order.

    Repeatedly removes a minimum-degree node.  Used by tests as an
    independent, deterministic node ranking to compare selections against.
    """
    n = graph.num_nodes
    deg = graph.degrees.copy()
    removed = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    # Bucket queue over degrees keeps this O(n + m).
    buckets: list[set[int]] = [set() for _ in range(int(deg.max(initial=0)) + 1)]
    for u in range(n):
        buckets[deg[u]].add(u)
    cursor = 0
    for i in range(n):
        while not buckets[cursor]:
            cursor += 1
        u = buckets[cursor].pop()
        order[i] = u
        removed[u] = True
        for v in graph.neighbors(u):
            if not removed[v]:
                buckets[deg[v]].discard(int(v))
                deg[v] -= 1
                buckets[deg[v]].add(int(v))
        # A neighbor may have dropped one bucket below the cursor.
        cursor = max(0, cursor - 1)
    return order
