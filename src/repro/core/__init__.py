"""The paper's contribution: objectives, greedy solvers, baselines."""

from repro.core.approx_fast import FastApproxEngine, approx_greedy_fast
from repro.core.approx_greedy import (
    approx_gain,
    approx_greedy,
    initial_distances,
    update_distances,
)
from repro.core.baselines import degree_baseline, dominate_baseline, random_baseline
from repro.core.combined import (
    CombinedObjective,
    approx_combined,
    balanced_weights,
    combined_greedy,
)
from repro.core.coverage import (
    min_targets_for_coverage,
    min_targets_for_coverage_exact,
)
from repro.core.coverage_kernel import (
    GAIN_BACKENDS,
    CoverageKernel,
    validate_gain_backend,
)
from repro.core.dp_greedy import dpf1, dpf2
from repro.core.edge_domination import (
    EdgeDominationEngine,
    EdgeWalkIndex,
    edge_domination_greedy,
    estimate_f3,
    expected_edges_traversed,
    prefix_edge_counts,
)
from repro.core.exact_optimal import optimal_select, optimal_value
from repro.core.greedy import greedy_select
from repro.core.objectives import (
    F1Objective,
    F2Objective,
    SampledF1,
    SampledF2,
    SetObjective,
)
from repro.core.problems import SOLVER_NAMES, Problem1, Problem2, solve
from repro.core.result import SelectionResult
from repro.core.weighted import (
    WeightedF1Objective,
    WeightedF2Objective,
    build_weighted_index,
    weighted_approx_greedy,
    weighted_dpf1,
    weighted_dpf2,
)
from repro.core.sampling_greedy import sampling_greedy_f1, sampling_greedy_f2
from repro.core.stochastic import (
    sample_size_per_round,
    stochastic_approx_greedy,
    stochastic_greedy_select,
)

__all__ = [
    "FastApproxEngine",
    "approx_greedy_fast",
    "approx_gain",
    "approx_greedy",
    "initial_distances",
    "update_distances",
    "degree_baseline",
    "dominate_baseline",
    "random_baseline",
    "CombinedObjective",
    "approx_combined",
    "balanced_weights",
    "combined_greedy",
    "min_targets_for_coverage",
    "min_targets_for_coverage_exact",
    "GAIN_BACKENDS",
    "CoverageKernel",
    "validate_gain_backend",
    "dpf1",
    "dpf2",
    "EdgeDominationEngine",
    "EdgeWalkIndex",
    "edge_domination_greedy",
    "estimate_f3",
    "expected_edges_traversed",
    "prefix_edge_counts",
    "optimal_select",
    "optimal_value",
    "greedy_select",
    "sample_size_per_round",
    "stochastic_approx_greedy",
    "stochastic_greedy_select",
    "F1Objective",
    "F2Objective",
    "SampledF1",
    "SampledF2",
    "SetObjective",
    "SOLVER_NAMES",
    "Problem1",
    "Problem2",
    "solve",
    "SelectionResult",
    "sampling_greedy_f1",
    "sampling_greedy_f2",
    "WeightedF1Objective",
    "WeightedF2Objective",
    "build_weighted_index",
    "weighted_approx_greedy",
    "weighted_dpf1",
    "weighted_dpf2",
]
