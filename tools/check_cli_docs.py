#!/usr/bin/env python
"""Documentation consistency checker (run by CI and tests/test_docs.py).

Verifies that the documentation layer cannot silently drift from the code:

1. README.md documents every `repro` CLI subcommand (as a `### <name>`
   heading), the `--engine` flag with every registered backend name, the
   `--gain-backend` flag with every gain backend name, the
   `--rows-format` flag with every rows-format name, the
   `--telemetry`/`--trace-out` observability flags, and every long
   option of the `serve` and `index` subcommands.
2. Every `DESIGN.md §N[.M]` reference in the source tree points at a
   numbered section that actually exists in DESIGN.md.
3. Every documentation file mentioned from package docstrings
   (README.md, DESIGN.md, EXPERIMENTS.md) exists.
4. EXPERIMENTS.md covers every `benchmarks/bench_*.py` script.

Exits non-zero with a list of problems; prints nothing on success unless
``--verbose``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _cli_subcommands() -> list[str]:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._actions:  # noqa: SLF001 - argparse has no public API
        if getattr(action, "choices", None):
            return sorted(action.choices)
    raise AssertionError("CLI parser has no subcommands")


def _engine_names() -> list[str]:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.walks.backends import available_engines

    return list(available_engines())


def _gain_backend_names() -> list[str]:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.coverage_kernel import GAIN_BACKENDS

    return list(GAIN_BACKENDS)


def _rows_format_names() -> list[str]:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.coverage_kernel import ROWS_FORMATS

    return list(ROWS_FORMATS)


def _subcommand_options(name: str) -> list[str]:
    """All long option strings of one subcommand (minus ``--help``)."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import build_parser

    parser = build_parser()
    sub = next(
        action
        for action in parser._actions  # noqa: SLF001 - argparse has no public API
        if getattr(action, "choices", None)
    )
    options: set[str] = set()
    for action in sub.choices[name]._actions:  # noqa: SLF001
        for option in action.option_strings:
            if option.startswith("--") and option != "--help":
                options.add(option)
    return sorted(options)


def _design_sections(design_text: str) -> set[str]:
    """Section numbers declared by DESIGN.md headings (e.g. {'2', '4.4'})."""
    sections = set()
    for match in re.finditer(
        r"^#{2,4}\s+(\d+(?:\.\d+)*)[.\s]", design_text, re.MULTILINE
    ):
        number = match.group(1)
        sections.add(number)
        # A section implies all its ancestors ("4.4" implies "4").
        while "." in number:
            number = number.rsplit(".", 1)[0]
            sections.add(number)
    return sections


def check_docs() -> list[str]:
    """Return a list of problems (empty when the docs are consistent)."""
    problems: list[str] = []

    readme_path = REPO_ROOT / "README.md"
    design_path = REPO_ROOT / "DESIGN.md"
    experiments_path = REPO_ROOT / "EXPERIMENTS.md"
    for path in (readme_path, design_path, experiments_path):
        if not path.is_file():
            problems.append(f"missing documentation file: {path.name}")
    if problems:
        return problems

    readme = readme_path.read_text(encoding="utf-8")
    design = design_path.read_text(encoding="utf-8")
    experiments = experiments_path.read_text(encoding="utf-8")

    # 1. CLI coverage in README.
    for command in _cli_subcommands():
        if not re.search(rf"^### {re.escape(command)}\s*$", readme, re.MULTILINE):
            problems.append(
                f"README.md lacks a '### {command}' CLI reference section"
            )
    if "--engine" not in readme:
        problems.append("README.md does not document the --engine flag")
    for engine in _engine_names():
        if engine not in readme:
            problems.append(f"README.md does not mention engine {engine!r}")
    if "--gain-backend" not in readme:
        problems.append("README.md does not document the --gain-backend flag")
    for flag in ("--telemetry", "--trace-out"):
        if flag not in readme:
            problems.append(f"README.md does not document the {flag} flag")
    for backend in _gain_backend_names():
        if backend not in readme:
            problems.append(
                f"README.md does not mention gain backend {backend!r}"
            )
    if "--rows-format" not in readme:
        problems.append("README.md does not document the --rows-format flag")
    for rows_format in _rows_format_names():
        if rows_format not in readme:
            problems.append(
                f"README.md does not mention rows format {rows_format!r}"
            )
    for subcommand in ("serve", "index"):
        for option in _subcommand_options(subcommand):
            if option not in readme:
                problems.append(
                    f"README.md does not document the {subcommand} "
                    f"flag {option}"
                )

    # 2. DESIGN.md section references from the source tree.
    sections = _design_sections(design)
    for py in sorted((REPO_ROOT / "src").rglob("*.py")):
        text = py.read_text(encoding="utf-8")
        for match in re.finditer(r"DESIGN\.md\s+§(\d+(?:\.\d+)*)", text):
            if match.group(1) not in sections:
                problems.append(
                    f"{py.relative_to(REPO_ROOT)} references DESIGN.md "
                    f"§{match.group(1)}, which has no matching heading"
                )

    # 3. Doc files referenced from source docstrings exist (checked above
    # for the three core files); also catch references to other .md names.
    for py in sorted((REPO_ROOT / "src").rglob("*.py")):
        text = py.read_text(encoding="utf-8")
        for match in re.finditer(r"([A-Z][A-Z_]+\.md)", text):
            if not (REPO_ROOT / match.group(1)).is_file():
                problems.append(
                    f"{py.relative_to(REPO_ROOT)} references missing doc "
                    f"file {match.group(1)}"
                )

    # 4. EXPERIMENTS.md covers every benchmark script.
    for bench in sorted((REPO_ROOT / "benchmarks").glob("bench_*.py")):
        if bench.name not in experiments:
            problems.append(f"EXPERIMENTS.md does not mention {bench.name}")

    return problems


def main(argv: "list[str] | None" = None) -> int:
    verbose = "--verbose" in (argv or sys.argv[1:])
    problems = check_docs()
    if problems:
        print("documentation check failed:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    if verbose:
        print("documentation check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
