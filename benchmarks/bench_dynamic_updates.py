"""Incremental walk-index maintenance vs full rebuild — head-to-head.

The acceptance benchmark for the dynamic subsystem (:mod:`repro.dynamic`,
DESIGN.md §9): after an edit batch touching well under 1% of the edges,
syncing the maintained index must be

* **bit-identical** to the dynamic from-scratch rebuild on the edited
  graph (same trajectories, same entry arrays, same greedy selections
  under both gain backends) and record-identical to the *static* builder
  (same grouped entry sets — order within a hit node is a builder
  detail) — hard assertions, never gated off; and
* **at least 3.5x faster end-to-end** (CSR re-edit included) than the full
  rebuild a pre-dynamic workflow would run, i.e. the static
  ``FlatWalkIndex.build`` with the walk engine (a timing assertion,
  demoted to report-only under ``--no-timing-gate``).  The speedup over
  the dynamic subsystem's own frozen-uniform rebuild — which already
  skips the engine's RNG machinery — is recorded alongside,
  report-only.

The instance is a flat-degree G(n, p) overlay: the resample set of an
edit batch is driven by how much walk mass crosses the modified nodes,
so a hub-free topology at the paper's default R = 100 exercises the
advertised regime (small batch -> small dirty fraction).  A 1%-of-edges
batch is also measured and recorded for the decay curve, report-only
(it crosses into the re-extraction fallback path).

Key reference (all via ``bench_record`` for the ``--json`` report and
``tools/check_bench_regression.py``):

* ``dynamic.static_rebuild_s`` / ``dynamic.incremental_s`` /
  ``dynamic.incremental_speedup_x`` — the gated head-to-head.
* ``dynamic.replay_rebuild_s`` / ``dynamic.replay_rebuild_speedup_x`` —
  vs the dynamic builder's own rebuild (report-only).
* ``dynamic.resampled_fraction`` — dirty share of the 300k walks.
* ``dynamic.incremental_1pct_*`` — the same at a 1%-of-edges batch.
* ``dynamic.bit_identity_parity`` / ``dynamic.static_entries_parity`` /
  ``dynamic.selection_parity`` — the hard contract.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import best_of

from repro.graphs.generators import erdos_renyi_graph
from repro.core.approx_fast import approx_greedy_fast
from repro.walks.index import FlatWalkIndex
from repro.dynamic import DynamicGraph, DynamicWalkIndex

#: The benchmark instance: flat degrees (avg ~10), paper-default R.
NODES = 4_000
EDGE_PROBABILITY = 10 / (NODES - 1)
LENGTH = 6
REPLICATES = 100
SEED = 17
BUDGET = 20

#: The gated batch: 16 edge edits, ~0.1% of the ~20k edges (the 1%
#: decay point is derived from the graph inside its test).
GATED_EDITS = 8


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(NODES, EDGE_PROBABILITY, seed=7)


@pytest.fixture(scope="module")
def baseline_index(graph):
    return DynamicWalkIndex.build(
        graph, LENGTH, REPLICATES, seed=SEED, engine="csr"
    )


def _clone(index: DynamicWalkIndex) -> DynamicWalkIndex:
    """Fresh mutable copy so repeated sync timings start from scratch.

    The frozen uniforms are shared — they are read-only in every code
    path — so a clone costs one copy of the walks and entry arrays.
    """
    flat = index.flat
    return DynamicWalkIndex(
        graph=index.graph,
        flat=FlatWalkIndex(
            indptr=flat.indptr.copy(),
            state=flat.state.copy(),
            hop=flat.hop.copy(),
            num_nodes=flat.num_nodes,
            length=flat.length,
            num_replicates=flat.num_replicates,
        ),
        walks=index.walks.copy(),
        seed_entropy=index.seed_entropy,
        engine_name=index.engine_name,
        num_shards=index.num_shards,
        epoch=index.epoch,
        uniforms=index.uniforms,
        keys=index.keys.copy(),
    )


def _edit_batch(graph, num_each, seed):
    """``num_each`` deletions + ``num_each`` insertions, deterministic."""
    rng = np.random.default_rng(seed)
    edge_array = graph.edge_array()
    deletes = [
        tuple(map(int, edge_array[i]))
        for i in rng.choice(len(edge_array), size=num_each, replace=False)
    ]
    inserts = []
    while len(inserts) < num_each:
        u, v = (int(x) for x in rng.integers(0, graph.num_nodes, 2))
        edge = (min(u, v), max(u, v))
        if u != v and not graph.has_edge(u, v) and edge not in inserts:
            inserts.append(edge)
    return inserts, deletes


def _head_to_head(graph, baseline_index, num_each, seed, repeats=3):
    """(incremental_s, rebuild_s, synced_index, rebuilt_index, stats).

    Measures the *steady state* a live system runs in: one long-lived
    index absorbing a stream of edit batches.  A warmup batch primes the
    splice buffers, then each timed repeat applies a fresh batch of the
    same size to the evolving graph and syncs; the rebuild side is timed
    on the final snapshot (a rebuild is cold by definition).  Parity is
    asserted between the fully synced index and that final rebuild, so
    every timed batch is also covered by the bit-identity check.
    """
    dyn = _clone(baseline_index)
    dgraph = DynamicGraph(graph)
    dgraph.apply_batch(*_edit_batch(graph, num_each, seed=seed + 1000))
    dyn.sync(dgraph)  # warmup: primes pools, pages, branch caches
    incremental_s = float("inf")
    stats = None
    for i in range(repeats):
        edits = _edit_batch(dgraph.graph, num_each, seed=seed + i)
        dgraph.apply_batch(*edits)
        started = time.perf_counter()
        stats = dyn.sync(dgraph)
        incremental_s = min(incremental_s, time.perf_counter() - started)

    replay_rebuild_s, rebuilt = best_of(repeats, lambda: DynamicWalkIndex.build(
        dgraph.graph, LENGTH, REPLICATES, seed=SEED, engine="csr"
    ))
    static_rebuild_s, static = best_of(repeats, lambda: FlatWalkIndex.build(
        dgraph.graph, LENGTH, REPLICATES, seed=SEED, engine="csr"
    ))
    return (
        incremental_s, static_rebuild_s, replay_rebuild_s,
        dyn, rebuilt, static, stats,
    )


def _bit_identical(a: DynamicWalkIndex, b: DynamicWalkIndex) -> bool:
    return (
        a.graph == b.graph
        and np.array_equal(a.walks, b.walks)
        and np.array_equal(a.flat.indptr, b.flat.indptr)
        and np.array_equal(a.flat.state, b.flat.state)
        and np.array_equal(a.flat.hop, b.flat.hop)
    )


def test_incremental_vs_rebuild_gated(
    graph, baseline_index, bench_record, timing_gate
):
    """The standing claim: <=1% edit batch, bit-identical, >=3.5x faster."""
    (
        incremental_s, static_rebuild_s, replay_rebuild_s,
        synced, rebuilt, static, stats,
    ) = _head_to_head(graph, baseline_index, GATED_EDITS, seed=23)
    identical = _bit_identical(synced, rebuilt)
    static_entries = synced.flat.same_entries(static)
    selection_parity = True
    for objective in ("f1", "f2"):
        for backend in ("entries", "bitset"):
            a = approx_greedy_fast(
                synced.graph, BUDGET, LENGTH, index=synced.flat,
                objective=objective, gain_backend=backend,
            )
            b = approx_greedy_fast(
                rebuilt.graph, BUDGET, LENGTH, index=rebuilt.flat,
                objective=objective, gain_backend=backend,
            )
            c = approx_greedy_fast(
                rebuilt.graph, BUDGET, LENGTH, index=static,
                objective=objective, gain_backend=backend,
            )
            selection_parity &= (
                a.selected == b.selected == c.selected
                and a.gains == b.gains == c.gains
            )
    speedup = static_rebuild_s / incremental_s
    replay_speedup = replay_rebuild_s / incremental_s
    bench_record("dynamic.static_rebuild_s", static_rebuild_s)
    bench_record("dynamic.replay_rebuild_s", replay_rebuild_s)
    bench_record("dynamic.incremental_s", incremental_s)
    bench_record("dynamic.incremental_speedup_x", speedup)
    bench_record("dynamic.replay_rebuild_speedup_x", replay_speedup)
    bench_record("dynamic.resampled_fraction", stats.resampled_fraction)
    bench_record("dynamic.bit_identity_parity", identical)
    bench_record("dynamic.static_entries_parity", static_entries)
    bench_record("dynamic.selection_parity", selection_parity)
    edit_pct = 100.0 * 2 * GATED_EDITS / graph.num_edges
    print(
        f"\nincremental vs rebuild (n={NODES}, m={graph.num_edges}, "
        f"R={REPLICATES}, L={LENGTH}, batch={2 * GATED_EDITS} edits = "
        f"{edit_pct:.2f}% of edges, {stats.resampled_fraction:.1%} of walks "
        f"resampled): static rebuild {static_rebuild_s * 1e3:.0f} ms, "
        f"frozen-uniform rebuild {replay_rebuild_s * 1e3:.0f} ms, "
        f"incremental {incremental_s * 1e3:.0f} ms -> {speedup:.1f}x "
        f"(vs static; {replay_speedup:.1f}x vs frozen-uniform)"
    )
    # Bit-identity and selection parity are the hard gates.
    assert identical, "incremental sync diverged from the full rebuild"
    assert static_entries, "entry records diverged from the static builder"
    assert selection_parity, "selections diverged after incremental sync"
    # Floor history: 5x against the pre-canonical-order static builder;
    # the ISSUE-5 walk_records/canonical-sort refactor made the *static
    # rebuild* (the competitor) ~30% faster with the incremental path
    # unchanged, so the honest floor at this batch size is now 3.5x.
    if timing_gate:
        assert speedup >= 3.5, (
            f"incremental sync only {speedup:.2f}x faster than a full "
            "rebuild on the <=1% edit-batch benchmark"
        )
    elif speedup < 3.5:
        print(f"TIMING (report-only): speedup {speedup:.2f}x < 3.5x floor")


def test_one_percent_batch_report(graph, baseline_index, bench_record):
    """Decay curve point: a 1%-of-edges batch (parity hard, timing
    report-only — the dirty fraction grows superlinearly with the batch
    because every touched node dirties whole walk neighborhoods, so this
    size crosses into the re-extraction fallback)."""
    num_each = max(1, graph.num_edges // 200)  # ins + dels = 1% of edges
    (
        incremental_s, static_rebuild_s, _replay_s,
        synced, rebuilt, _static, stats,
    ) = _head_to_head(graph, baseline_index, num_each, seed=29)
    identical = _bit_identical(synced, rebuilt)
    speedup = static_rebuild_s / incremental_s
    bench_record("dynamic.incremental_1pct_s", incremental_s)
    bench_record("dynamic.static_rebuild_1pct_s", static_rebuild_s)
    bench_record("dynamic.incremental_1pct_speedup_x", speedup)
    bench_record("dynamic.resampled_1pct_fraction", stats.resampled_fraction)
    bench_record("dynamic.bit_identity_1pct_parity", identical)
    print(
        f"\n1% batch ({2 * num_each} edits, {stats.resampled_fraction:.1%} "
        f"resampled): static rebuild {static_rebuild_s * 1e3:.0f} ms, "
        f"incremental {incremental_s * 1e3:.0f} ms -> {speedup:.1f}x"
    )
    assert identical, "incremental sync diverged at the 1% batch size"


def test_build_cost_report(graph, bench_record):
    """Context: what one from-scratch dynamic build costs (report-only)."""
    build_s, dyn = best_of(2, lambda: DynamicWalkIndex.build(
        graph, LENGTH, REPLICATES, seed=SEED, engine="csr"
    ))
    bench_record("dynamic.build_s", build_s)
    print(
        f"\ndynamic build: {build_s * 1e3:.0f} ms "
        f"({dyn.total_entries} entries, {dyn.walks.shape[0]} walks)"
    )
