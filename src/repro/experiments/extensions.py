"""Exhibit entry points for the extension experiments (no paper analogue).

Same contract as :mod:`repro.experiments.figures`: each function runs an
experiment at the configured scale and returns an
:class:`~repro.experiments.reporting.ExperimentTable`.  The corresponding
benches live in ``benchmarks/bench_edge_domination.py``,
``bench_ablation_stochastic.py`` and ``bench_applications.py``; the CLI
exposes these under ``repro exhibit ext-*``.
"""

from __future__ import annotations

from repro.core.approx_fast import approx_greedy_fast
from repro.core.baselines import degree_baseline, random_baseline
from repro.core.edge_domination import (
    edge_domination_greedy,
    expected_edges_traversed,
)
from repro.core.stochastic import stochastic_approx_greedy
from repro.experiments.config import HarnessConfig, default_config
from repro.experiments.reporting import ExperimentTable
from repro.graphs.datasets import load_dataset
from repro.metrics.evaluation import expected_hit_nodes
from repro.simulate import (
    simulate_ad_campaign,
    simulate_p2p_search,
    simulate_social_browsing,
)
from repro.walks.index import FlatWalkIndex

__all__ = ["ext_edge_domination", "ext_stochastic", "ext_applications"]


def _config(config: "HarnessConfig | None") -> HarnessConfig:
    return default_config() if config is None else config


def ext_edge_domination(
    config: "HarnessConfig | None" = None,
    k: int = 50,
    length: int = 6,
) -> ExperimentTable:
    """Edge-domination extension: traffic until domination, by solver."""
    cfg = _config(config)
    table = ExperimentTable(
        title=f"Extension: edge domination (k={k}, L={length})",
        columns=("dataset", "algorithm", "edge traffic", "seconds"),
        notes=["traffic = sum_u E[distinct edges walked before hitting S]"],
    )
    for dataset in ("CAGrQc", "CAHepPh"):
        graph = load_dataset(dataset, scale=cfg.scale)
        budget = min(k, graph.num_nodes)
        runs = {
            "ApproxF3": edge_domination_greedy(
                graph, budget, length, num_replicates=cfg.num_replicates,
                seed=cfg.seed,
            ),
            "ApproxF1": approx_greedy_fast(
                graph, budget, length, num_replicates=cfg.num_replicates,
                objective="f1", seed=cfg.seed,
            ),
            "Degree": degree_baseline(graph, budget),
        }
        for name, result in runs.items():
            traffic = expected_edges_traversed(
                graph, result.selected, length, num_replicates=200,
                seed=cfg.seed + 1,
            )
            table.add_row(dataset, name, traffic, result.elapsed_seconds)
    return table


def ext_stochastic(
    config: "HarnessConfig | None" = None,
    k: int = 100,
    epsilon: float = 0.1,
) -> ExperimentTable:
    """Stochastic greedy vs lazy vs full sweeps on one shared index."""
    cfg = _config(config)
    graph = load_dataset("Epinions", scale=cfg.scale)
    budget = min(k, graph.num_nodes)
    index = FlatWalkIndex.build(
        graph, cfg.length, cfg.num_replicates, seed=cfg.seed
    )
    table = ExperimentTable(
        title=f"Extension: stochastic greedy ablation (k={budget})",
        columns=("strategy", "seconds", "gain evals", "EHN"),
        notes=[f"epsilon={epsilon}; EHN evaluated exactly"],
    )
    runs = {
        "full": approx_greedy_fast(
            graph, budget, cfg.length, index=index, objective="f2",
            lazy=False,
        ),
        "lazy": approx_greedy_fast(
            graph, budget, cfg.length, index=index, objective="f2",
            lazy=True,
        ),
        "stochastic": stochastic_approx_greedy(
            graph, budget, cfg.length, index=index, objective="f2",
            epsilon=epsilon, seed=cfg.seed,
        ),
    }
    for name, result in runs.items():
        table.add_row(
            name,
            result.elapsed_seconds,
            result.num_gain_evaluations,
            expected_hit_nodes(graph, result.selected, cfg.length),
        )
    return table


def ext_applications(
    config: "HarnessConfig | None" = None,
    k: int = 50,
) -> ExperimentTable:
    """Application KPIs (Section 1.1 scenarios) by placement strategy."""
    cfg = _config(config)
    graph = load_dataset("Brightkite", scale=cfg.scale)
    budget = min(k, graph.num_nodes)
    placements = {
        "ApproxF2": approx_greedy_fast(
            graph, budget, cfg.length, num_replicates=cfg.num_replicates,
            objective="f2", seed=cfg.seed,
        ).selected,
        "Degree": degree_baseline(graph, budget).selected,
        "Random": random_baseline(graph, budget, seed=cfg.seed).selected,
    }
    table = ExperimentTable(
        title=f"Extension: application KPIs (k={budget}, L={cfg.length})",
        columns=(
            "placement", "social discovery", "p2p success",
            "p2p msgs/query", "ad reach",
        ),
    )
    for name, hosts in placements.items():
        social = simulate_social_browsing(
            graph, hosts, num_sessions=20_000, length=cfg.length,
            seed=cfg.seed + 1,
        )
        p2p = simulate_p2p_search(
            graph, hosts, num_queries=20_000, ttl=cfg.length,
            walkers_per_query=2, seed=cfg.seed + 2,
        )
        ads = simulate_ad_campaign(
            graph, hosts, sessions_per_user=3, length=cfg.length,
            seed=cfg.seed + 3,
        )
        table.add_row(
            name, social.discovery_rate, p2p.success_rate,
            p2p.mean_messages_per_query, ads.reach,
        )
    return table
