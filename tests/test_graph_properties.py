"""Tests for structural graph statistics."""

import pytest

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.generators import (
    complete_graph,
    path_graph,
    power_law_graph,
    ring_graph,
    star_graph,
)
from repro.graphs.properties import (
    bfs_distances,
    connected_components,
    degeneracy_order,
    degree_summary,
    density,
    eccentricity,
    is_connected,
    largest_component,
)


class TestDegreeSummary:
    def test_star(self, star4):
        s = degree_summary(star4)
        assert s.minimum == 1
        assert s.maximum == 4
        assert s.mean == pytest.approx(8 / 5)
        assert s.median == 1

    def test_regular_graph(self, ring6):
        s = degree_summary(ring6)
        assert s.minimum == s.maximum == 2
        assert s.std == 0.0

    def test_empty_graph_rejected(self):
        with pytest.raises(ParameterError):
            degree_summary(Graph.from_edges([], num_nodes=0))


class TestComponents:
    def test_single_component(self, ring6):
        labels = connected_components(ring6)
        assert set(labels.tolist()) == {0}
        assert is_connected(ring6)

    def test_two_components(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert not is_connected(g)

    def test_isolated_nodes_are_components(self):
        g = Graph.from_edges([(0, 1)], num_nodes=4)
        assert len(set(connected_components(g).tolist())) == 3

    def test_largest_component(self):
        g = Graph.from_edges([(0, 1), (1, 2), (3, 4)])
        assert largest_component(g).tolist() == [0, 1, 2]

    def test_empty_graph_connected(self):
        assert is_connected(Graph.from_edges([], num_nodes=0))


class TestDistances:
    def test_path_distances(self, path5):
        assert bfs_distances(path5, 0).tolist() == [0, 1, 2, 3, 4]

    def test_unreachable_is_minus_one(self):
        g = Graph.from_edges([(0, 1)], num_nodes=3)
        assert bfs_distances(g, 0)[2] == -1

    def test_eccentricity_path_end(self, path5):
        assert eccentricity(path5, 0) == 4
        assert eccentricity(path5, 2) == 2

    def test_source_validated(self, path5):
        with pytest.raises(ParameterError):
            bfs_distances(path5, 9)

    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        g = power_law_graph(80, 200, seed=11)
        nx_graph = networkx.Graph(list(g.edges()))
        ours = bfs_distances(g, 0)
        theirs = networkx.single_source_shortest_path_length(nx_graph, 0)
        for node, dist in theirs.items():
            assert ours[node] == dist


class TestDensity:
    def test_complete(self):
        assert density(complete_graph(5)) == pytest.approx(1.0)

    def test_empty(self):
        assert density(Graph.from_edges([], num_nodes=5)) == 0.0

    def test_single_node(self):
        assert density(Graph.from_edges([], num_nodes=1)) == 0.0


class TestDegeneracy:
    def test_is_permutation(self, small_power_law):
        order = degeneracy_order(small_power_law)
        assert sorted(order.tolist()) == list(range(small_power_law.num_nodes))

    def test_path_removes_ends_first(self, path5):
        order = degeneracy_order(path5)
        # first removed node must have degree 1 (an endpoint)
        assert path5.degree(int(order[0])) == 1

    def test_star_removes_leaves_first(self, star4):
        order = degeneracy_order(star4)
        assert int(order[-1]) == 0 or star4.degree(int(order[-1])) <= 1

    def test_core_number_complete(self):
        # In K5 every removal sees degree 4, 3, 2, 1, 0 in turn.
        order = degeneracy_order(complete_graph(5))
        assert sorted(order.tolist()) == [0, 1, 2, 3, 4]
