"""HTTP serving tier vs the in-process service — wire parity and tax.

The acceptance benchmark for the asyncio HTTP front end
(:mod:`repro.serve.http`, DESIGN.md §12) on the same instance as
``bench_serving.py``.  The claims:

* **bit-identical answers over the wire** — every HTTP
  ``select``/``metrics``/``min_targets`` reply, decoded from JSON,
  equals the direct solver call on the served index (hard assertions,
  never gated off); and
* **micro-batching survives the transport** — a concurrent budget sweep
  issued by HTTP clients still collapses into fewer kernel passes than
  queries, because handlers bridge into the service through a thread
  pool exactly like in-process client threads (structural assertion).

Key reference (all via ``bench_record`` for the ``--json`` report and
``tools/check_bench_regression.py``):

* ``http_serving.select_parity`` / ``http_serving.metrics_parity`` /
  ``http_serving.min_targets_parity`` — the hard wire contract.
* ``http_serving.latency_p50_s`` / ``http_serving.latency_p99_s`` —
  client-side closed-loop latency over HTTP (soft floor: absolute
  timings warn on shared runners, ``--soft-absolute``).
* ``http_serving.throughput_qps`` — closed-loop throughput
  (report-only: no gated suffix).
* ``http_serving.wire_overhead_p50_x`` — in-process p50 over HTTP p50
  (report-only context for the wire tax; recorded under the inverse
  naming so a *faster* wire never fails the higher-is-better gate).
"""

import pytest

from repro.core.approx_fast import approx_greedy_fast
from repro.core.coverage import min_targets_for_coverage
from repro.graphs.generators import power_law_graph
from repro.serve import (
    DominationService,
    IndexSnapshot,
    WorkloadQuery,
    run_load,
    start_http_server,
)
from repro.serve.loadgen import _HttpClient
from repro.walks.index import FlatWalkIndex

#: Same instance as bench_serving.py; the gated workload is the same
#: budget sweep, arriving through keep-alive HTTP connections instead of
#: direct method calls.
NODES = 2_000
EDGES = 12_000
LENGTH = 6
REPLICATES = 100
SEED = 11
KS = tuple(range(1, 33))
CLIENTS = 16
WINDOW_S = 0.010


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(NODES, EDGES, seed=7)


@pytest.fixture(scope="module")
def index(graph):
    return FlatWalkIndex.build(
        graph, LENGTH, REPLICATES, seed=SEED, engine="csr"
    )


def _serve(graph, index, window=WINDOW_S, **kwargs):
    service = DominationService(
        IndexSnapshot.capture(graph, index), batch_window=window
    )
    return service, start_http_server(service, **kwargs)


def test_http_answer_parity(graph, index, bench_record):
    """Hard contract: wire replies == direct solver calls, bit for bit."""
    _, handle = _serve(graph, index, window=0.0)
    client = _HttpClient(handle.base_url)
    try:
        select_parity = True
        for k in (1, 5, 17, 32):
            status, answer = client.request(
                "POST", "/query/select", {"k": k}
            )
            direct = approx_greedy_fast(
                graph, k, LENGTH, index=index, objective="f2"
            )
            select_parity &= (
                status == 200
                and tuple(answer["selected"]) == direct.selected
                and tuple(answer["gains"]) == direct.gains
            )
        placement = approx_greedy_fast(
            graph, 17, LENGTH, index=index, objective="f2"
        ).selected
        expected = index.selection_metrics(placement)
        status, answer = client.request(
            "POST", "/query/metrics", {"targets": list(placement)}
        )
        metrics_parity = status == 200 and answer["metrics"] == {
            key: float(value) for key, value in expected.items()
        }
        direct_mt = min_targets_for_coverage(graph, 0.5, LENGTH, index=index)
        status, answer = client.request(
            "POST", "/query/min_targets", {"fraction": 0.5}
        )
        min_targets_parity = (
            status == 200
            and tuple(answer["selected"]) == direct_mt.selected
            and tuple(answer["gains"]) == direct_mt.gains
        )
    finally:
        client.close()
        handle.stop()
    bench_record("http_serving.select_parity", select_parity)
    bench_record("http_serving.metrics_parity", metrics_parity)
    bench_record("http_serving.min_targets_parity", min_targets_parity)
    assert select_parity, "HTTP select diverged from approx_greedy_fast"
    assert metrics_parity, "HTTP metrics diverged from selection_metrics"
    assert min_targets_parity, (
        "HTTP min_targets diverged from min_targets_for_coverage"
    )


def test_http_closed_loop_latency(graph, index, bench_record):
    """Closed-loop sweep over HTTP: latency/throughput + batching proof."""
    queries = [WorkloadQuery(kind="select", k=k) for k in KS]

    # In-process reference run for the wire-tax context line.
    inproc_service = DominationService(
        IndexSnapshot.capture(graph, index), batch_window=WINDOW_S
    )
    inproc = run_load(inproc_service, queries, num_clients=CLIENTS)

    best = None
    for _ in range(2):
        service, handle = _serve(graph, index, max_inflight=CLIENTS)
        try:
            report = run_load(
                None, queries, num_clients=CLIENTS,
                transport="http", base_url=handle.base_url,
            )
        finally:
            handle.stop()
        assert report.errors == 0
        assert report.rejections == 0
        # Micro-batching must engage across HTTP clients too — the
        # executor bridge delivers concurrent selects into one window.
        assert report.stats.kernel_passes < len(KS), (
            f"{report.stats.kernel_passes} kernel passes for {len(KS)} "
            "HTTP select queries: micro-batching did not survive the wire"
        )
        if best is None or report.elapsed_seconds < best.elapsed_seconds:
            best = report

    wire_overhead_x = inproc.latency_p50_ms / best.latency_p50_ms
    bench_record("http_serving.latency_p50_s", best.latency_p50_ms / 1e3)
    bench_record("http_serving.latency_p99_s", best.latency_p99_ms / 1e3)
    bench_record("http_serving.throughput_qps", best.throughput_qps)
    bench_record("http_serving.wire_overhead_p50_x", wire_overhead_x)
    print(
        f"\nhttp serving (n={NODES}, R={REPLICATES}, L={LENGTH}, "
        f"{len(KS)} budgets, {CLIENTS} clients): "
        f"{best.throughput_qps:.0f} q/s, "
        f"p50 {best.latency_p50_ms:.1f} ms / "
        f"p99 {best.latency_p99_ms:.1f} ms over the wire vs "
        f"p50 {inproc.latency_p50_ms:.1f} ms in-process "
        f"({best.stats.kernel_passes} kernel passes for {len(KS)} queries)"
    )
