"""Incremental construction of :class:`~repro.graphs.adjacency.Graph`.

The builder accumulates edges (possibly with duplicates and in either
orientation), then produces a canonical simple undirected graph.  It is the
single choke point where edge hygiene is enforced: self-loop policy,
deduplication, and node-count inference all live here.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import GraphFormatError, ParameterError
from repro.graphs.adjacency import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulate edges, then :meth:`build` an immutable :class:`Graph`.

    Parameters
    ----------
    skip_self_loops:
        When true (default) self-loops are silently dropped; when false they
        raise :class:`GraphFormatError`.  The random-walk model of the paper
        is defined on simple graphs, so loops are never stored either way.
    """

    def __init__(self, skip_self_loops: bool = True):
        self._skip_self_loops = skip_self_loops
        self._chunks: list[np.ndarray] = []
        self._max_node = -1

    def add_edge(self, u: int, v: int) -> None:
        """Add a single undirected edge ``{u, v}``."""
        self.add_edges([(u, v)])

    def add_edges(self, edges: Iterable[tuple[int, int]] | np.ndarray) -> None:
        """Add many edges at once; accepts any iterable of pairs or an
        ``(k, 2)`` integer array."""
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if arr.size == 0:
            return
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphFormatError("edges must be pairs (shape (k, 2))")
        if not np.issubdtype(arr.dtype, np.integer):
            raise GraphFormatError("edge endpoints must be integers")
        if arr.min() < 0:
            raise GraphFormatError("edge endpoints must be non-negative")
        # Loop endpoints still name nodes, so count them toward the range
        # before dropping the loops themselves.
        self._max_node = max(self._max_node, int(arr.max()))
        loops = arr[:, 0] == arr[:, 1]
        if loops.any():
            if not self._skip_self_loops:
                bad = arr[loops][0]
                raise GraphFormatError(f"self-loop on node {int(bad[0])}")
            arr = arr[~loops]
        if arr.size == 0:
            return
        self._chunks.append(arr.astype(np.int64, copy=False))

    def touch_node(self, u: int) -> None:
        """Ensure node ``u`` exists in the built graph even if isolated."""
        if u < 0:
            raise ParameterError("node ids must be non-negative")
        self._max_node = max(self._max_node, u)

    @property
    def num_pending_edges(self) -> int:
        """Number of (not yet deduplicated) edge records accumulated."""
        return sum(chunk.shape[0] for chunk in self._chunks)

    def build(self, num_nodes: int | None = None) -> Graph:
        """Produce the canonical graph.

        ``num_nodes`` overrides the inferred count (must cover every
        endpoint); duplicates and reversed duplicates collapse to one edge.
        """
        inferred = self._max_node + 1
        if num_nodes is None:
            num_nodes = inferred
        elif num_nodes < inferred:
            raise ParameterError(
                f"num_nodes={num_nodes} is smaller than required {inferred}"
            )
        if not self._chunks:
            indptr = np.zeros(num_nodes + 1, dtype=np.int64)
            return Graph(indptr, np.empty(0, dtype=np.int32))

        edges = np.concatenate(self._chunks, axis=0)
        # Canonicalize to u < v, then deduplicate.
        lo = edges.min(axis=1)
        hi = edges.max(axis=1)
        canon = np.unique(lo * np.int64(num_nodes) + hi)
        lo = canon // num_nodes
        hi = canon % num_nodes
        # Symmetrize into CSR.
        src = np.concatenate((lo, hi))
        dst = np.concatenate((hi, lo))
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        counts = np.bincount(src, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return Graph(indptr, dst.astype(np.int32))
