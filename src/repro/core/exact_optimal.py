"""Exhaustive optimal solver for tiny instances.

Random-walk domination is NP-hard (it contains submodular maximization with
a cardinality constraint), so no polynomial solver exists — but on graphs of
a few dozen nodes the optimum is computable by enumerating all ``C(n, k)``
target sets.  The test suite uses this to *verify the paper's approximation
guarantee empirically*: every greedy solver must score at least
``(1 - 1/e) * OPT`` on exact objectives, and in practice far closer.

Enumeration is deliberately plain (no pruning): the subset budget caps the
work, and a straight scan is the easiest implementation to trust when it
serves as the ground truth other solvers are judged against.
"""

from __future__ import annotations

import time
from itertools import combinations
from math import comb

from repro.errors import ParameterError
from repro.core.objectives import SetObjective
from repro.core.result import SelectionResult

__all__ = ["optimal_select", "optimal_value"]

_DEFAULT_LIMIT = 500_000


def optimal_select(
    objective: SetObjective,
    k: int,
    max_subsets: int = _DEFAULT_LIMIT,
) -> SelectionResult:
    """Exact optimum of ``objective`` over all size-``k`` subsets.

    Refuses instances with more than ``max_subsets`` candidate sets so an
    accidental call on a real graph fails fast instead of running for
    years.  Ties break toward the lexicographically smallest set, matching
    the deterministic tie-breaking used by the greedy solvers.
    """
    n = objective.num_nodes
    if not 0 <= k <= n:
        raise ParameterError(f"k={k} must lie in [0, n={n}]")
    total = comb(n, k)
    if total > max_subsets:
        raise ParameterError(
            f"C({n}, {k}) = {total} subsets exceeds max_subsets={max_subsets}; "
            "the exhaustive solver is for tiny verification instances only"
        )
    started = time.perf_counter()
    best_set: tuple[int, ...] = ()
    best_value = objective.value(())
    evaluations = 1
    for subset in combinations(range(n), k):
        value = objective.value(subset)
        evaluations += 1
        if value > best_value:  # strict: ties keep the earlier (lex-smaller) set
            best_value = value
            best_set = subset
    elapsed = time.perf_counter() - started
    return SelectionResult(
        algorithm="optimal",
        selected=best_set,
        gains=(best_value,) if best_set else (),
        elapsed_seconds=elapsed,
        num_gain_evaluations=evaluations,
        params={"k": k, "method": "exhaustive", "subsets": total},
    )


def optimal_value(
    objective: SetObjective, k: int, max_subsets: int = _DEFAULT_LIMIT
) -> float:
    """The optimal objective value ``max_{|S| <= k} F(S)``."""
    result = optimal_select(objective, k, max_subsets=max_subsets)
    return objective.value(result.selected)
