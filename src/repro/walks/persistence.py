"""Walk-index persistence.

Building the inverted walk index (Algorithm 3) is the dominant cost of the
approximate greedy solvers; everything after it is sub-second.  Persisting
the index lets operational workflows — parameter sweeps over ``k``,
re-ranking after a business-rule change, the paper's own Figs. 6-7 protocol
of reading one greedy run at several budgets — pay that cost once.

The format is a single ``.npz`` (numpy archive): the three flat arrays plus
a small integer header.  Version-stamped so later layout changes can keep
reading old files.
"""

from __future__ import annotations

import zipfile
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError, ParameterError
from repro.walks.index import FlatWalkIndex

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1


def save_index(index: FlatWalkIndex, path: "str | Path") -> None:
    """Write a :class:`FlatWalkIndex` to ``path`` as an ``.npz`` archive."""
    path = Path(path)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        header=np.asarray(
            [index.num_nodes, index.length, index.num_replicates],
            dtype=np.int64,
        ),
        indptr=index.indptr,
        state=index.state,
        hop=index.hop,
    )


def load_index(path: "str | Path") -> FlatWalkIndex:
    """Read a :class:`FlatWalkIndex` written by :func:`save_index`.

    Validates the version stamp and the structural invariants (indptr
    monotone and consistent with the entry arrays) so a truncated or
    foreign file fails loudly instead of corrupting a selection run.
    """
    path = Path(path)
    try:
        with np.load(path) as archive:
            missing = {"version", "header", "indptr", "state", "hop"} - set(
                archive.files
            )
            if missing:
                raise GraphFormatError(
                    f"{path}: not a walk-index archive (missing {sorted(missing)})"
                )
            version = int(archive["version"])
            if version != _FORMAT_VERSION:
                raise GraphFormatError(
                    f"{path}: unsupported index format version {version}"
                )
            header = archive["header"]
            num_nodes, length, num_replicates = (int(v) for v in header)
            indptr = archive["indptr"]
            state = archive["state"]
            hop = archive["hop"]
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise GraphFormatError(f"{path}: unreadable index archive") from exc
    try:
        return FlatWalkIndex(
            indptr=indptr,
            state=state,
            hop=hop,
            num_nodes=num_nodes,
            length=length,
            num_replicates=num_replicates,
        )
    except ParameterError as exc:
        raise GraphFormatError(f"{path}: inconsistent index arrays") from exc
