"""Evaluation metrics (AHT / EHN) from the paper's Section 4.1."""

from repro.metrics.evaluation import (
    PAPER_METRIC_SAMPLES,
    average_hitting_time,
    compare_placements,
    evaluate_selection,
    expected_hit_nodes,
)

__all__ = [
    "PAPER_METRIC_SAMPLES",
    "average_hitting_time",
    "compare_placements",
    "evaluate_selection",
    "expected_hit_nodes",
]
