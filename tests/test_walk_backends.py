"""Tests for the pluggable walk-engine backends (repro.walks.backends).

The central contract: **every** backend produces *bit-identical* walks
and first-hits to the ``"numpy"`` reference under the same seed —
``"csr"`` consumes the same stream hop for hop, and the parallel
``"sharded"``/``"multiproc"`` backends slice that stream per shard
(repro.walks.parallel), so their output is additionally independent of
shard count, worker count, and scheduling.  The multiproc engine's
resource lifecycle (shared-memory segments, pool teardown, crash paths)
has its own suite in tests/test_multiproc.py.
"""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.generators import power_law_graph, ring_graph, star_graph
from repro.graphs.weighted import WeightedDiGraph
from repro.walks.alias import weighted_batch_walks
from repro.walks.backends import (
    CSRWalkEngine,
    NumpyWalkEngine,
    ShardedWalkEngine,
    WalkEngine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.walks.engine import batch_first_hits, batch_walks
from repro.walks.index import FlatWalkIndex
from repro.core.approx_fast import approx_greedy_fast
from repro.core.sampling_greedy import sampling_greedy_f2
from repro.core.stochastic import stochastic_approx_greedy
from repro.simulate import simulate_social_browsing
from repro.walks.estimators import estimate_hitting_time


def graph_cases():
    """(label, graph) pairs covering the convention-sensitive topologies."""
    return [
        ("power_law", power_law_graph(120, 480, seed=5)),
        ("ring", ring_graph(12)),
        ("star", star_graph(6)),
        ("dangling", Graph.from_edges([(0, 1), (1, 2)], num_nodes=6)),
        ("all_isolated", Graph.from_edges([], num_nodes=4)),
    ]


def weighted_cases():
    """(label, weighted graph) pairs, with and without dangling rows."""
    arcs = [
        (0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0),
        (2, 0, 0.5), (2, 1, 1.5), (0, 2, 1.0),
    ]
    return [
        ("weighted", WeightedDiGraph.from_edges(arcs, num_nodes=3)),
        (
            "weighted_dangling",
            WeightedDiGraph.from_edges(
                [(0, 1, 2.0), (1, 2, 1.0)], num_nodes=4
            ),
        ),
    ]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        names = available_engines()
        assert {"numpy", "csr", "sharded", "multiproc"} <= set(names)

    def test_default_is_numpy(self):
        assert get_engine(None).name == "numpy"
        assert get_engine().name == "numpy"

    def test_lookup_by_name_is_memoized(self):
        assert get_engine("csr") is get_engine("csr")

    def test_instance_passthrough(self):
        engine = CSRWalkEngine()
        assert get_engine(engine) is engine

    def test_unknown_name(self):
        with pytest.raises(ParameterError, match="unknown walk engine"):
            get_engine("gpu")

    def test_bad_type(self):
        with pytest.raises(ParameterError):
            get_engine(3.14)

    def test_reregister_requires_replace(self):
        register_engine("_test_engine", NumpyWalkEngine)
        with pytest.raises(ParameterError, match="already registered"):
            register_engine("_test_engine", NumpyWalkEngine)
        register_engine("_test_engine", CSRWalkEngine, replace=True)
        assert get_engine("_test_engine").name == "csr"

    def test_custom_engine_usable(self):
        class Custom(NumpyWalkEngine):
            name = "custom-numpy"

        register_engine("custom-numpy", Custom, replace=True)
        g = ring_graph(8)
        walks = get_engine("custom-numpy").batch_walks(g, [0, 1], 3, seed=1)
        assert walks.shape == (2, 4)


# ----------------------------------------------------------------------
# CSR / numpy parity
# ----------------------------------------------------------------------
class TestCsrParity:
    @pytest.mark.parametrize("label,graph", graph_cases())
    @pytest.mark.parametrize("length", [0, 1, 7])
    def test_walks_identical(self, label, graph, length):
        rng = np.random.default_rng(0)
        starts = rng.integers(0, graph.num_nodes, size=64)
        a = get_engine("numpy").batch_walks(graph, starts, length, seed=123)
        b = get_engine("csr").batch_walks(graph, starts, length, seed=123)
        assert a.shape == b.shape == (64, length + 1)
        assert np.array_equal(a, b), label

    @pytest.mark.parametrize("label,graph", graph_cases())
    def test_walks_identical_with_shared_generator(self, label, graph):
        # Passing one Generator through repeated calls must also agree:
        # both backends consume the stream hop-by-hop in the same order.
        starts = np.arange(graph.num_nodes)
        rng_a, rng_b = np.random.default_rng(9), np.random.default_rng(9)
        for _ in range(3):
            a = get_engine("numpy").batch_walks(graph, starts, 5, seed=rng_a)
            b = get_engine("csr").batch_walks(graph, starts, 5, seed=rng_b)
            assert np.array_equal(a, b), label

    @pytest.mark.parametrize("label,graph", weighted_cases())
    @pytest.mark.parametrize("length", [0, 1, 6])
    def test_weighted_walks_identical(self, label, graph, length):
        starts = np.tile(np.arange(graph.num_nodes), 20)
        a = get_engine("numpy").weighted_batch_walks(graph, starts, length, seed=7)
        b = get_engine("csr").weighted_batch_walks(graph, starts, length, seed=7)
        assert np.array_equal(a, b), label

    @pytest.mark.parametrize("label,graph", graph_cases())
    def test_first_hits_identical(self, label, graph):
        starts = np.arange(graph.num_nodes).repeat(8)
        mask = np.zeros(graph.num_nodes, dtype=bool)
        mask[:: max(1, graph.num_nodes // 3)] = True
        walks = batch_walks(graph, starts, 6, seed=77)
        expected = batch_first_hits(walks, mask)
        for engine in ("numpy", "csr"):
            hits = get_engine(engine).walk_first_hits(
                graph, starts, 6, mask, seed=77
            )
            assert np.array_equal(hits, expected), (label, engine)

    @pytest.mark.parametrize("label,graph", weighted_cases())
    def test_weighted_first_hits_identical(self, label, graph):
        starts = np.tile(np.arange(graph.num_nodes), 10)
        mask = np.zeros(graph.num_nodes, dtype=bool)
        mask[0] = True
        a = get_engine("numpy").walk_first_hits(graph, starts, 5, mask, seed=3)
        b = get_engine("csr").walk_first_hits(graph, starts, 5, mask, seed=3)
        assert np.array_equal(a, b), label

    def test_empty_batch(self):
        g = ring_graph(5)
        for engine in ("numpy", "csr", "sharded", "multiproc"):
            walks = get_engine(engine).batch_walks(g, [], 4, seed=1)
            assert walks.shape == (0, 5)

    def test_walks_are_valid_transitions(self):
        from repro.walks.engine import walk_is_valid

        g = power_law_graph(60, 240, seed=2)
        walks = get_engine("csr").batch_walks(g, np.arange(60), 8, seed=4)
        for row in walks:
            assert walk_is_valid(g, row.tolist())

    def test_weighted_respects_arcs(self):
        label, w = weighted_cases()[0]
        walks = get_engine("csr").weighted_batch_walks(
            w, np.zeros(50, dtype=int), 4, seed=8
        )
        arcs = {(u, v) for u, v, _ in w.arcs()}
        for row in walks:
            for u, v in zip(row, row[1:]):
                assert (int(u), int(v)) in arcs

    def test_invalid_args_match_numpy(self):
        g = ring_graph(6)
        for engine in ("csr", "sharded", "multiproc"):
            with pytest.raises(ParameterError):
                get_engine(engine).batch_walks(g, [0, 99], 3, seed=1)
            with pytest.raises(ParameterError):
                get_engine(engine).batch_walks(g, [0], -1, seed=1)

    def test_plan_reused_across_calls(self):
        engine = CSRWalkEngine()
        g = ring_graph(10)
        engine.batch_walks(g, [0], 2, seed=1)
        plan_a = engine._plan(g)
        engine.batch_walks(g, [1, 2], 3, seed=2)
        assert engine._plan(g) is plan_a

    def test_plan_cache_bounded(self):
        engine = CSRWalkEngine(cache_size=2)
        graphs = [ring_graph(n) for n in (4, 5, 6, 7)]
        for g in graphs:
            engine.batch_walks(g, [0], 1, seed=0)
        assert len(engine._plans._data) <= 2


# ----------------------------------------------------------------------
# Sharded backend
# ----------------------------------------------------------------------
class TestShardedEngine:
    def test_deterministic_given_seed(self):
        g = power_law_graph(100, 400, seed=1)
        starts = np.arange(100).repeat(5)
        a = get_engine("sharded").batch_walks(g, starts, 6, seed=21)
        b = get_engine("sharded").batch_walks(g, starts, 6, seed=21)
        assert np.array_equal(a, b)

    def test_independent_of_worker_count(self):
        g = power_law_graph(80, 320, seed=2)
        starts = np.arange(80).repeat(4)
        few = ShardedWalkEngine(num_shards=4, max_workers=1)
        many = ShardedWalkEngine(num_shards=4, max_workers=8)
        assert np.array_equal(
            few.batch_walks(g, starts, 5, seed=3),
            many.batch_walks(g, starts, 5, seed=3),
        )

    def test_matches_sequential_backends_bitwise(self):
        # The stream-sliced shards reassemble to exactly the sequential
        # engines' output — the four-backend bit-identity contract.
        g = ring_graph(16)
        starts = np.arange(16).repeat(2)
        engine = ShardedWalkEngine(base="csr", num_shards=4)
        walks = engine.batch_walks(g, starts, 5, seed=99)
        assert np.array_equal(
            walks, get_engine("numpy").batch_walks(g, starts, 5, seed=99)
        )
        assert np.array_equal(
            walks, get_engine("csr").batch_walks(g, starts, 5, seed=99)
        )

    def test_independent_of_shard_count(self):
        # Stream slicing makes the partitioning invisible: any num_shards
        # (including 1) produces the same walks.
        g = power_law_graph(60, 240, seed=4)
        starts = np.arange(60).repeat(3)
        reference = ShardedWalkEngine(num_shards=1).batch_walks(
            g, starts, 6, seed=17
        )
        for shards in (2, 3, 8, 64):
            walks = ShardedWalkEngine(num_shards=shards).batch_walks(
                g, starts, 6, seed=17
            )
            assert np.array_equal(walks, reference), shards

    def test_non_sliceable_generator_falls_back(self):
        # A Philox-backed Generator cannot be sliced (its advance counts
        # 256-bit blocks); the engine must fall back to one sequential
        # call and still match the numpy backend on the same stream.
        g = power_law_graph(40, 160, seed=6)
        starts = np.arange(40).repeat(2)
        rng_a = np.random.Generator(np.random.Philox(3))
        rng_b = np.random.Generator(np.random.Philox(3))
        a = get_engine("numpy").batch_walks(g, starts, 5, seed=rng_a)
        b = ShardedWalkEngine(num_shards=4).batch_walks(g, starts, 5, seed=rng_b)
        assert np.array_equal(a, b)

    def test_starts_preserved_and_valid(self):
        from repro.walks.engine import walk_is_valid

        g = power_law_graph(50, 200, seed=3)
        starts = np.arange(50)
        walks = get_engine("sharded").batch_walks(g, starts, 6, seed=5)
        assert np.array_equal(walks[:, 0], starts)
        for row in walks:
            assert walk_is_valid(g, row.tolist())

    def test_weighted_and_first_hits(self):
        label, w = weighted_cases()[0]
        starts = np.tile(np.arange(w.num_nodes), 8)
        walks = get_engine("sharded").weighted_batch_walks(w, starts, 4, seed=6)
        assert walks.shape == (starts.size, 5)
        mask = np.zeros(w.num_nodes, dtype=bool)
        mask[1] = True
        hits = get_engine("sharded").walk_first_hits(w, starts, 4, mask, seed=6)
        assert hits.shape == (starts.size,)
        assert ((hits >= -1) & (hits <= 4)).all()

    def test_fewer_rows_than_shards(self):
        g = ring_graph(6)
        walks = ShardedWalkEngine(num_shards=16).batch_walks(g, [2], 3, seed=1)
        assert walks.shape == (1, 4)
        assert walks[0, 0] == 2

    def test_invalid_shards(self):
        with pytest.raises(ParameterError):
            ShardedWalkEngine(num_shards=0)


# ----------------------------------------------------------------------
# Engine threading through the solver / estimator / simulator layers
# ----------------------------------------------------------------------
class TestEngineThreading:
    def test_flat_index_identical_across_backends(self):
        g = power_law_graph(80, 320, seed=4)
        a = FlatWalkIndex.build(g, 5, 10, seed=11, engine="numpy")
        for engine in ("csr", "sharded", "multiproc"):
            b = FlatWalkIndex.build(g, 5, 10, seed=11, engine=engine)
            assert np.array_equal(a.indptr, b.indptr), engine
            assert np.array_equal(a.state, b.state), engine
            assert np.array_equal(a.hop, b.hop), engine

    def test_walk_records_chunking_invisible_in_index(self):
        # walk_records consumes the stream chunk-by-chunk, so a given
        # chunk_rows yields one well-defined index; the canonical entry
        # order makes the *record order* within it irrelevant.
        g = power_law_graph(50, 200, seed=5)
        a = FlatWalkIndex.build(g, 4, 6, seed=9, chunk_rows=64, engine="numpy")
        b = FlatWalkIndex.build(g, 4, 6, seed=9, chunk_rows=64, engine="sharded")
        assert np.array_equal(a.state, b.state)
        assert np.array_equal(a.hop, b.hop)

    def test_iter_walk_records_equals_walk_records(self):
        # The chunk iterator is the seam the out-of-core builder consumes
        # (DESIGN.md §15); concatenating it must reproduce walk_records
        # exactly — same records, same order — for every backend.
        g = power_law_graph(60, 240, seed=15)
        starts = np.repeat(np.arange(60, dtype=np.int64), 4)
        states = np.arange(starts.size, dtype=np.int64)
        for engine in ("numpy", "csr", "sharded", "multiproc"):
            eng = get_engine(engine)
            whole = eng.walk_records(g, starts, 5, states, seed=41,
                                     chunk_rows=64)
            chunks = list(eng.iter_walk_records(g, starts, 5, states,
                                                seed=41, chunk_rows=64))
            assert len(chunks) == -(-starts.size // 64)
            for part, ref in zip(zip(*chunks), whole):
                np.testing.assert_array_equal(np.concatenate(part), ref)

    def test_iter_walk_records_validates_eagerly(self):
        # Bad arguments must raise at call time, not on first next().
        g = ring_graph(8)
        eng = get_engine("numpy")
        starts = np.zeros(4, dtype=np.int64)
        with pytest.raises(ParameterError):
            eng.iter_walk_records(g, starts, 3, np.zeros(3), seed=1)
        with pytest.raises(ParameterError):
            eng.iter_walk_records(g, starts, 3, np.zeros(4), seed=1,
                                  chunk_rows=0)

    def test_approx_greedy_fast_engine_parity(self):
        g = power_law_graph(70, 280, seed=6)
        a = approx_greedy_fast(g, 5, 4, num_replicates=20, seed=13, engine="numpy")
        b = approx_greedy_fast(g, 5, 4, num_replicates=20, seed=13, engine="csr")
        assert a.selected == b.selected
        assert a.gains == b.gains
        assert b.params["walk_engine"] == "csr"

    def test_sampling_greedy_engine_parity(self):
        g = power_law_graph(40, 160, seed=7)
        a = sampling_greedy_f2(g, 3, 4, num_replicates=10, seed=17, engine="numpy")
        b = sampling_greedy_f2(g, 3, 4, num_replicates=10, seed=17, engine="csr")
        assert a.selected == b.selected
        assert b.params["walk_engine"] == "csr"

    def test_stochastic_approx_engine_parity(self):
        g = power_law_graph(60, 240, seed=8)
        a = stochastic_approx_greedy(g, 4, 4, num_replicates=15, seed=19, engine="numpy")
        b = stochastic_approx_greedy(g, 4, 4, num_replicates=15, seed=19, engine="csr")
        assert a.selected == b.selected

    def test_estimator_engine_parity(self):
        g = power_law_graph(50, 200, seed=9)
        a = estimate_hitting_time(g, 0, {5, 7}, 6, 40, seed=23, engine="numpy")
        b = estimate_hitting_time(g, 0, {5, 7}, 6, 40, seed=23, engine="csr")
        assert a == b

    def test_simulator_engine_parity(self):
        g = power_law_graph(60, 240, seed=10)
        a = simulate_social_browsing(g, [0, 3], num_sessions=500, seed=29,
                                     engine="numpy")
        b = simulate_social_browsing(g, [0, 3], num_sessions=500, seed=29,
                                     engine="csr")
        assert a == b

    def test_sharded_accepted_end_to_end(self):
        g = power_law_graph(50, 200, seed=12)
        result = approx_greedy_fast(
            g, 3, 4, num_replicates=10, seed=31, engine="sharded"
        )
        assert len(result.selected) == 3
        assert result.params["walk_engine"] == "sharded"

    def test_solver_parity_across_all_backends(self):
        # Bit-identical walks imply bit-identical selections and gains.
        g = power_law_graph(70, 280, seed=14)
        reference = approx_greedy_fast(
            g, 5, 4, num_replicates=20, seed=37, engine="numpy"
        )
        for engine in ("csr", "sharded", "multiproc"):
            result = approx_greedy_fast(
                g, 5, 4, num_replicates=20, seed=37, engine=engine
            )
            assert result.selected == reference.selected, engine
            assert result.gains == reference.gains, engine
            assert result.params["walk_engine"] == engine

    def test_engine_instance_accepted(self):
        g = ring_graph(10)
        engine = CSRWalkEngine()
        result = approx_greedy_fast(g, 2, 3, num_replicates=5, seed=1,
                                    engine=engine)
        assert len(result.selected) == 2


# ----------------------------------------------------------------------
# Interface expectations for third-party backends
# ----------------------------------------------------------------------
class TestWalkEngineInterface:
    def test_abstract_methods_required(self):
        with pytest.raises(TypeError):
            WalkEngine()

    def test_run_walks_dispatches_on_graph_type(self):
        engine = get_engine("csr")
        g = ring_graph(6)
        label, w = weighted_cases()[0]
        assert engine.run_walks(g, [0], 3, seed=1).shape == (1, 4)
        assert engine.run_walks(w, [0], 3, seed=1).shape == (1, 4)
