"""Serving-layer tests: parity, micro-batching, caching, epochs, swaps."""

import threading

import pytest

from repro.core.approx_fast import approx_greedy_fast
from repro.core.coverage import min_targets_for_coverage
from repro.errors import ParameterError
from repro.graphs.generators import power_law_graph
from repro.dynamic import DynamicGraph, DynamicWalkIndex
from repro.serve import (
    DominationService,
    IndexSnapshot,
    WorkloadQuery,
    parse_workload,
    run_load,
)
from repro.walks.index import FlatWalkIndex
from repro.walks.persistence import save_index


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(120, 420, seed=1)


@pytest.fixture(scope="module")
def index(graph):
    return FlatWalkIndex.build(graph, 5, 20, seed=2)


def _service(graph, index, **kwargs):
    kwargs.setdefault("batch_window", 0.0)
    return DominationService(IndexSnapshot.capture(graph, index), **kwargs)


class TestIndexSelectionMetrics:
    """FlatWalkIndex.selection_metrics — the serving metrics kernel."""

    def test_matches_walk_based_metrics(self, graph):
        dyn = DynamicWalkIndex.build(graph, 5, 20, seed=3)
        for targets in [(), (7,), (3, 17, 42), tuple(range(0, 120, 11))]:
            assert dyn.flat.selection_metrics(targets) == (
                dyn.selection_metrics(targets)
            )

    def test_duplicates_and_order_are_irrelevant(self, index):
        assert index.selection_metrics((5, 9, 5, 1)) == (
            index.selection_metrics((1, 5, 9))
        )

    def test_out_of_range_targets_rejected(self, index):
        with pytest.raises(ParameterError):
            index.selection_metrics((0, 500))
        with pytest.raises(ParameterError):
            index.selection_metrics((-1,))


class TestAnswerParity:
    """Every served answer == the direct solver call on the snapshot."""

    def test_select(self, graph, index):
        service = _service(graph, index)
        for objective in ("f1", "f2"):
            for k in (0, 1, 6, 15):
                served = service.select(k, objective=objective)
                direct = approx_greedy_fast(
                    graph, k, 5, index=index, objective=objective
                )
                assert served.selected == direct.selected
                assert served.gains == direct.gains
                assert served.algorithm == direct.algorithm

    def test_metrics_and_coverage(self, graph, index):
        service = _service(graph, index)
        placement = service.select(6).selected
        expected = index.selection_metrics(placement)
        assert service.metrics(placement) == expected
        assert service.coverage(placement) == expected["coverage_fraction"]

    def test_min_targets(self, graph, index):
        service = _service(graph, index)
        served = service.min_targets(0.6)
        direct = min_targets_for_coverage(graph, 0.6, 5, index=index)
        assert served.selected == direct.selected
        assert served.gains == direct.gains

    def test_min_targets_unreachable_raises(self, graph, index):
        service = _service(graph, index)
        with pytest.raises(ParameterError):
            service.min_targets(0.99, max_size=1)

    def test_select_validates_like_the_solver(self, graph, index):
        service = _service(graph, index)
        with pytest.raises(ParameterError):
            service.select(-1)
        with pytest.raises(ParameterError):
            service.select(graph.num_nodes + 1)
        with pytest.raises(ParameterError):
            service.select(3, objective="f3")


class TestMicroBatching:
    def test_concurrent_selects_share_one_pass(self, graph, index):
        service = _service(graph, index, batch_window=0.05)
        results: dict[int, object] = {}
        threads = [
            threading.Thread(
                target=lambda k=k: results.__setitem__(k, service.select(k))
            )
            for k in range(1, 9)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = service.stats
        assert stats.kernel_passes < 8
        assert stats.batched_queries == 8
        for k in range(1, 9):
            direct = approx_greedy_fast(
                graph, k, 5, index=index, objective="f2"
            )
            assert results[k].selected == direct.selected
            assert results[k].gains == direct.gains
            assert results[k].params["served"] is True

    def test_batch_failure_raises_per_thread_copies(self, graph, index,
                                                    monkeypatch):
        """A failing shared pass surfaces to every waiter with the
        original type preserved, each as its own instance (a single
        shared exception re-raised from N threads races on its
        traceback)."""
        import repro.serve.service as service_module

        service = _service(graph, index, batch_window=0.05)

        def broken(*args, **kwargs):
            raise ParameterError("kernel exploded")

        monkeypatch.setattr(service_module, "approx_greedy_fast", broken)
        caught: list[BaseException] = []

        def query(k):
            try:
                service.select(k)
            except ParameterError as exc:
                caught.append(exc)

        threads = [
            threading.Thread(target=query, args=(k,)) for k in (2, 3, 4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(caught) == 3
        assert all("kernel exploded" in str(exc) for exc in caught)
        assert len({id(exc) for exc in caught}) == 3

    def test_objectives_do_not_share_a_batch(self, graph, index):
        service = _service(graph, index, batch_window=0.05)
        results = {}

        def query(objective):
            results[objective] = service.select(4, objective=objective)

        threads = [
            threading.Thread(target=query, args=(obj,))
            for obj in ("f1", "f2")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for objective in ("f1", "f2"):
            direct = approx_greedy_fast(
                graph, 4, 5, index=index, objective=objective
            )
            assert results[objective].selected == direct.selected


class TestResultCache:
    def test_repeat_query_hits_cache(self, graph, index):
        service = _service(graph, index)
        first = service.select(5)
        passes = service.stats.kernel_passes
        second = service.select(5)
        assert second == first
        assert service.stats.kernel_passes == passes
        assert service.stats.cache_hits == 1

    def test_metrics_key_is_canonical(self, graph, index):
        service = _service(graph, index)
        service.metrics((9, 3, 3, 1))
        assert service.metrics((1, 3, 9)) == service.metrics((9, 3, 3, 1))
        # One kernel pass despite three calls in two different spellings.
        assert service.stats.kernel_passes == 1
        # A served dict is a copy: mutating it must not poison the cache.
        poisoned = service.metrics((1, 3, 9))
        poisoned["coverage"] = -1
        assert service.metrics((1, 3, 9))["coverage"] != -1

    def test_cache_size_zero_disables(self, graph, index):
        service = _service(graph, index, cache_size=0)
        service.select(5)
        service.select(5)
        assert service.stats.cache_hits == 0
        assert service.stats.kernel_passes == 2

    def test_lru_eviction(self, graph, index):
        service = _service(graph, index, cache_size=2)
        service.select(1)
        service.select(2)
        service.select(3)  # evicts k=1
        passes = service.stats.kernel_passes
        service.select(1)
        assert service.stats.kernel_passes == passes + 1


def _absent_edges(graph, count):
    """Deterministic ``count`` non-edges of ``graph`` (insertable)."""
    found = []
    for u in range(graph.num_nodes):
        for v in range(u + 1, graph.num_nodes):
            if not graph.has_edge(u, v):
                found.append((u, v))
                if len(found) == count:
                    return found
    raise AssertionError("graph too dense for the test instance")


class TestEpochsAndSwap:
    def _dynamic_service(self, graph, **kwargs):
        dyn = DynamicWalkIndex.build(graph, 5, 20, seed=4)
        kwargs.setdefault("batch_window", 0.0)
        return DominationService.from_dynamic(dyn, **kwargs), dyn

    def test_sync_publishes_new_epoch_with_fresh_answers(self, graph):
        service, _ = self._dynamic_service(graph)
        before = service.select(6)
        dgraph = DynamicGraph(graph)
        dgraph.apply_batch(_absent_edges(graph, 2), [])
        stats = service.sync(dgraph)
        assert stats.batches == 1
        assert service.epoch == 1
        after = service.select(6)
        direct = approx_greedy_fast(
            service.snapshot.graph, 6, 5, index=service.snapshot.index,
            objective="f2",
        )
        assert after.selected == direct.selected
        assert after.params["epoch"] == 1
        assert before.params["epoch"] == 0

    def test_publish_invalidates_stale_cache_entries(self, graph):
        service, _ = self._dynamic_service(graph)
        service.select(6)
        service.metrics((1, 2, 3))
        assert len(service._cache) == 2
        dgraph = DynamicGraph(graph)
        dgraph.apply_batch(_absent_edges(graph, 1), [])
        service.sync(dgraph)
        assert len(service._cache) == 0
        assert service.stats.publishes == 1
        # The re-issued query recomputes rather than serving the stale
        # epoch-0 answer.
        hits = service.stats.cache_hits
        service.select(6)
        assert service.stats.cache_hits == hits

    def test_in_flight_stale_result_is_not_recached(self, graph):
        """A query that resolved the pre-swap snapshot must not push its
        result back into the cache after publish evicted that epoch —
        the entry could never be served again and would only crowd out
        live entries."""
        service, _ = self._dynamic_service(graph)
        old = service.snapshot
        stale = service.select(6)
        dgraph = DynamicGraph(graph)
        dgraph.apply_batch(_absent_edges(graph, 1), [])
        service.sync(dgraph)
        assert len(service._cache) == 0
        # Replay what an in-flight reader would do post-swap (cache keys
        # lead with the publish generation, 0 before the sync).
        service._cache_put(
            (0, old.fingerprint, old.epoch, "select", 6, "f2",
             service.gain_backend),
            stale,
        )
        assert len(service._cache) == 0

    def test_old_snapshot_remains_usable_after_swap(self, graph):
        service, _ = self._dynamic_service(graph)
        old = service.snapshot
        old_direct = approx_greedy_fast(
            old.graph, 5, 5, index=old.index, objective="f2"
        )
        dgraph = DynamicGraph(graph)
        dgraph.apply_batch(_absent_edges(graph, 1), [])
        service.sync(dgraph)
        # A reader that resolved the old snapshot before the swap can
        # keep computing on it and gets the old epoch's exact answer.
        again = approx_greedy_fast(
            old.graph, 5, 5, index=old.index, objective="f2"
        )
        assert again.selected == old_direct.selected
        assert again.gains == old_direct.gains

    def test_concurrent_readers_during_churn_swaps(self, graph):
        """Readers under continuous churn: every answer belongs to a
        published epoch and matches the direct solve on that snapshot."""
        service, _ = self._dynamic_service(graph, batch_window=0.001)
        snapshots = {0: service.snapshot}
        answers = []
        errors = []
        stop = threading.Event()

        def reader(k):
            while not stop.is_set():
                try:
                    answers.append((k, service.select(k)))
                except Exception as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=reader, args=(k,), daemon=True)
            for k in (3, 5, 8)
        ]
        for thread in threads:
            thread.start()
        try:
            dgraph = DynamicGraph(graph)
            e1, e2, e3 = _absent_edges(graph, 3)
            for inserts, deletes in ([e1], []), ([e2], []), ([e3], [e1]):
                dgraph.apply_batch(inserts, deletes)
                service.sync(dgraph)
                snapshots[service.epoch] = service.snapshot
        finally:
            stop.set()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(snapshots) == 4
        checked = set()
        for k, result in answers:
            epoch = result.params["epoch"]
            assert epoch in snapshots
            if (k, epoch) in checked:
                continue
            checked.add((k, epoch))
            snap = snapshots[epoch]
            direct = approx_greedy_fast(
                snap.graph, k, 5, index=snap.index, objective="f2"
            )
            assert result.selected == direct.selected
            assert result.gains == direct.gains

    def test_republishing_same_epoch_does_not_serve_old_index(
        self, graph, index
    ):
        """Two different indexes for the same graph both sit at epoch 0
        (e.g. a reseeded rebuild): the cache must not hand out the old
        index's answers after the new one is published."""
        service = _service(graph, index)
        old_answer = service.select(6)
        rebuilt = FlatWalkIndex.build(graph, 5, 20, seed=99)
        service.publish(IndexSnapshot.capture(graph, rebuilt))
        assert service.epoch == 0  # same epoch, same fingerprint
        fresh = service.select(6)
        direct = approx_greedy_fast(
            graph, 6, 5, index=rebuilt, objective="f2"
        )
        assert fresh.selected == direct.selected
        assert fresh.gains == direct.gains
        # Sanity: the two indexes genuinely disagree somewhere.
        assert (
            old_answer.selected != fresh.selected
            or old_answer.gains != fresh.gains
        )

    def test_cached_select_params_cannot_be_poisoned(self, graph, index):
        service = _service(graph, index)
        first = service.select(5)
        first.params["epoch"] = 999
        second = service.select(5)
        assert second.params["epoch"] == 0
        mt = service.min_targets(0.5)
        mt.params["alpha"] = -1
        assert service.min_targets(0.5).params["alpha"] == 0.5

    def test_sync_requires_a_dynamic_index(self, graph, index):
        service = _service(graph, index)
        with pytest.raises(ParameterError):
            service.sync(DynamicGraph(graph))


class TestSubmitAndLifecycle:
    def test_submit_returns_futures(self, graph, index):
        with _service(graph, index) as service:
            future = service.submit("select", k=4)
            metrics = service.submit("metrics", selection=(1, 2))
            assert future.result().selected == service.select(4).selected
            assert metrics.result() == service.metrics((1, 2))

    def test_submit_rejects_unknown_kind(self, graph, index):
        with _service(graph, index) as service:
            with pytest.raises(ParameterError):
                service.submit("drop_tables")

    def test_constructor_validation(self, graph, index):
        snapshot = IndexSnapshot.capture(graph, index)
        with pytest.raises(ParameterError):
            DominationService(snapshot, max_workers=0)
        with pytest.raises(ParameterError):
            DominationService(snapshot, batch_window=-1.0)
        with pytest.raises(ParameterError):
            DominationService(snapshot, cache_size=-1)
        with pytest.raises(ParameterError):
            IndexSnapshot.capture(power_law_graph(30, 60, seed=9), index)


class TestFromIndexFile:
    def test_round_trip_serves(self, graph, index, tmp_path):
        path = tmp_path / "served"  # suffixless on purpose
        save_index(index, path, graph=graph)
        with DominationService.from_index_file(
            path, graph, batch_window=0.0
        ) as service:
            direct = approx_greedy_fast(
                graph, 5, 5, index=index, objective="f2"
            )
            assert service.select(5).selected == direct.selected

    def test_stale_archive_rejected(self, graph, index, tmp_path):
        path = save_index(index, tmp_path / "stale.npz", graph=graph)
        other = power_law_graph(120, 421, seed=8)
        with pytest.raises(ParameterError):
            DominationService.from_index_file(path, other)


class TestLoadgen:
    def test_parse_workload(self):
        queries = parse_workload(
            "# warmup\n"
            "select 5\n"
            "select 9 f1\n"
            "metrics 1,2,3\n"
            "coverage 4,5\n"
            "min-targets 0.25\n"
        )
        assert [q.kind for q in queries] == [
            "select", "select", "metrics", "coverage", "min-targets",
        ]
        assert queries[1].objective == "f1"
        assert queries[2].targets == (1, 2, 3)
        assert queries[4].fraction == 0.25

    def test_parse_workload_rejects_garbage_with_line(self):
        with pytest.raises(ParameterError, match="workload line 2"):
            parse_workload("select 5\nselect five\n")
        with pytest.raises(ParameterError, match="workload line 1"):
            parse_workload("select 5 f9\n")
        with pytest.raises(ParameterError, match="workload line 1"):
            parse_workload("frobnicate 1\n")

    def test_run_load_counts_and_parity(self, graph, index):
        service = _service(graph, index, batch_window=0.002)
        queries = parse_workload("select 4\nmetrics 1,2\ncoverage 3,4\n")
        report = run_load(service, queries, num_clients=2, repeat=3)
        assert report.num_queries == 9
        assert report.errors == 0
        assert report.stats.queries == 9
        assert report.throughput_qps > 0
        direct = approx_greedy_fast(graph, 4, 5, index=index, objective="f2")
        assert service.select(4).selected == direct.selected

    def test_run_load_counts_library_errors(self, graph, index):
        service = _service(graph, index)
        bad = WorkloadQuery(kind="metrics", targets=(10_000,))
        good = WorkloadQuery(kind="metrics", targets=(1,))
        report = run_load(service, [bad, good], num_clients=1)
        assert report.errors == 1
        assert report.rejections == 0
        assert report.latency_p50_ms == report.latency_p50_ms  # not NaN

    def test_run_load_all_rejected_raises(self, graph, index):
        """An all-failed run has no latency distribution; reporting
        placeholder percentiles would read as a healthy run (ISSUE 6
        regression — this used to return NaN percentiles)."""
        service = _service(graph, index)
        bad = WorkloadQuery(kind="metrics", targets=(10_000,))
        with pytest.raises(ParameterError, match="no queries were answered"):
            run_load(service, [bad, bad], num_clients=2)

    def test_percentiles_are_observed_latencies(self):
        """Small-sample rule: percentiles never interpolate between
        samples (ISSUE 6 regression — two samples of 1 and 100 used to
        'interpolate' a p99 of 99.01 that half the sample missed)."""
        from repro.serve import sample_percentile

        assert sample_percentile([1.0, 100.0], 99) == 100.0
        assert sample_percentile([1.0, 100.0], 50) == 100.0
        assert sample_percentile([1.0], 99) == 1.0
        assert sample_percentile([5.0, 1.0, 3.0], 50) == 3.0
        ladder = list(range(1, 101))
        assert sample_percentile(ladder, 99) == 100.0
        assert sample_percentile(ladder, 50) == 51.0
        with pytest.raises(ParameterError, match="empty sample"):
            sample_percentile([], 99)

    def test_run_load_percentiles_follow_small_sample_rule(
        self, graph, index
    ):
        """With < 100 answered queries the reported p99 is the maximum
        observed latency, an honest upper bound."""
        service = _service(graph, index)
        queries = [WorkloadQuery(kind="coverage", targets=(v,)) for v in
                   range(6)]
        report = run_load(service, queries, num_clients=2)
        assert report.latency_p99_ms >= report.latency_p50_ms
        assert report.latency_p99_ms >= report.latency_mean_ms

    def test_run_load_reraises_unexpected_errors(self, graph, index,
                                                 monkeypatch):
        """Non-library failures must abort the run, not vanish into a
        plausible-looking report (or crash the percentile math)."""
        service = _service(graph, index)

        def broken(selection):
            raise RuntimeError("boom")

        monkeypatch.setattr(service, "metrics", broken)
        query = WorkloadQuery(kind="metrics", targets=(1, 2))
        with pytest.raises(RuntimeError, match="boom"):
            run_load(service, [query], num_clients=1)

    def test_run_load_validation(self, graph, index):
        service = _service(graph, index)
        with pytest.raises(ParameterError):
            run_load(service, [], num_clients=1)
        query = WorkloadQuery(kind="select", k=2)
        with pytest.raises(ParameterError):
            run_load(service, [query], num_clients=0)
        with pytest.raises(ParameterError):
            run_load(service, [query], repeat=0)
