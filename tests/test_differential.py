"""Differential fuzz harness across walk engines and gain backends.

Parity between execution paths is the repo's core invariant: four walk
backends, two gain backends, a dynamic (incrementally maintained) index,
and a serving layer all promise bit-identical answers on the same seed.
Instead of ad-hoc per-feature parity tests, this harness composes random
op sequences over the whole pipeline::

    build -> { edit batch | solve {f1,f2} x {entries,bitset} | serve }*

and asserts, at every step, that

* the four per-engine :class:`DynamicWalkIndex` instances remain
  byte-identical to each other *and* to a fresh static
  ``FlatWalkIndex.build`` on the current graph under every engine
  (incremental == rebuild, engine-independent, canonical order);
* solver selections and gains agree across every engine x gain-backend
  combination;
* served answers (``select``/``metrics``/``coverage``/``min_targets``)
  agree across engines and with the direct solver/metrics calls —
  including the walk-matrix vs entries metrics twins.

Failures shrink to a minimal op list (hypothesis) and the reduced
sequence is reported via ``note()`` for replay.

The exhaustive property runs in the slow lane (``-m slow``); a pinned
three-op smoke stays in tier-1 so the harness itself cannot rot.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis import note as _hypothesis_note
from hypothesis.errors import InvalidArgument


def note(message: str) -> None:
    """Attach a replay note when running under hypothesis, else no-op.

    The runner is shared with the pinned tier-1 smoke test, which runs
    outside any hypothesis build context.
    """
    try:
        _hypothesis_note(message)
    except InvalidArgument:
        pass

from repro.core.approx_fast import approx_greedy_fast
from repro.core.coverage import min_targets_for_coverage
from repro.core.coverage_kernel import GAIN_BACKENDS
from repro.dynamic import DynamicGraph, DynamicWalkIndex
from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.serve import DominationService, IndexSnapshot
from repro.walks.backends import MultiprocWalkEngine
from repro.walks.index import FlatWalkIndex
from repro.walks.persistence import as_format
from repro.walks.storage import INDEX_FORMATS

SEED = 1234
ENGINES = ("numpy", "csr", "sharded", "multiproc")


def _storage_variants(flat: FlatWalkIndex):
    """The reference index on every storage backend (dense first)."""
    return [(fmt, as_format(flat, fmt)) for fmt in INDEX_FORMATS]


@pytest.fixture(scope="module")
def pooled_multiproc():
    """A pool-forced multiproc engine so the differential run exercises
    real shared-memory fan-out, not the small-batch fallback."""
    engine = MultiprocWalkEngine(
        num_procs=2, shard_rows=32, min_parallel_rows=0
    )
    yield engine
    engine.close()


def _engine_spec(name, pooled):
    return pooled if name == "multiproc" else name


# ----------------------------------------------------------------------
# Step assertions
# ----------------------------------------------------------------------
def _assert_indexes_identical(dyn: dict, dgraph: DynamicGraph, length, reps,
                              pooled) -> FlatWalkIndex:
    # Dynamic == static holds byte-for-byte because every instance here
    # fits one static-build chunk (n * R << chunk_rows); see the
    # dynamic/index.py module docstring for the multi-chunk caveat.
    reference = dyn["numpy"].flat
    for name, maintained in dyn.items():
        for field in ("indptr", "state", "hop"):
            assert np.array_equal(
                getattr(reference, field), getattr(maintained.flat, field)
            ), f"dynamic index diverged for engine {name!r} ({field})"
        assert np.array_equal(dyn["numpy"].walks, maintained.walks), name
    for name in ENGINES:
        static = FlatWalkIndex.build(
            dgraph.graph, length, reps, seed=SEED,
            engine=_engine_spec(name, pooled),
        )
        for field in ("indptr", "state", "hop"):
            assert np.array_equal(
                getattr(reference, field), getattr(static, field)
            ), f"static rebuild diverged for engine {name!r} ({field})"
    # Storage-backend parity: the compressed and mmap variants must hold
    # the very same entries (arrays, per-node slices, packed rows) as the
    # dense reference after every edit.
    dense_rows = reference.packed_hit_rows(include_self=True)
    for fmt, variant in _storage_variants(reference):
        assert variant.storage_format == fmt
        for field in ("indptr", "state", "hop"):
            assert np.array_equal(
                getattr(reference, field), getattr(variant, field)
            ), f"storage variant {fmt!r} diverged ({field})"
        assert variant.same_entries(reference), fmt
        assert np.array_equal(
            variant.packed_hit_rows(include_self=True), dense_rows
        ), f"storage variant {fmt!r} diverged (packed rows)"
    return reference


def _assert_solve_agrees(dyn: dict, graph: Graph, k: int, objective: str):
    reference = None
    for name, maintained in dyn.items():
        for backend in GAIN_BACKENDS:
            result = approx_greedy_fast(
                graph, k, maintained.length, index=maintained.flat,
                objective=objective, gain_backend=backend,
            )
            if reference is None:
                reference = result
            assert result.selected == reference.selected, (name, backend)
            assert result.gains == reference.gains, (name, backend)
    # One engine's index through every storage backend: selections and
    # gains must be bit-identical to the dense reference for both gain
    # backends (the compressed path decodes per candidate block, the
    # mmap path reads through the archive maps).
    flat = next(iter(dyn.values())).flat
    for fmt, variant in _storage_variants(flat):
        for backend in GAIN_BACKENDS:
            result = approx_greedy_fast(
                graph, k, flat.length, index=variant,
                objective=objective, gain_backend=backend,
            )
            assert result.selected == reference.selected, (fmt, backend)
            assert result.gains == reference.gains, (fmt, backend)


def _assert_serve_agrees(dyn: dict, seed: int):
    rng = np.random.default_rng(seed)
    n = dyn["numpy"].num_nodes
    k = int(rng.integers(1, min(4, n) + 1))
    objective = ("f1", "f2")[int(rng.integers(0, 2))]
    backend = GAIN_BACKENDS[int(rng.integers(0, len(GAIN_BACKENDS)))]
    targets = tuple(
        sorted(rng.choice(n, size=int(rng.integers(1, 4)), replace=False))
    )
    fraction = float(rng.uniform(0.05, 0.9))
    answers = []
    for name, maintained in dyn.items():
        service = DominationService(
            IndexSnapshot.of_dynamic(maintained),
            batch_window=0.0, cache_size=8, gain_backend=backend,
        )
        with service:
            selection = service.select(k, objective=objective)
            metrics = service.metrics(targets)
            covered = service.coverage(targets)
            try:
                min_targets = service.min_targets(fraction, max_size=n)
                min_answer = (min_targets.selected, min_targets.gains)
            except ParameterError:
                min_answer = "unreachable"
        # Served answers must equal the direct calls on the same index...
        direct = approx_greedy_fast(
            maintained.graph, k, maintained.length, index=maintained.flat,
            objective=objective, gain_backend=backend,
        )
        assert selection.selected == direct.selected, name
        assert selection.gains == direct.gains, name
        assert metrics == maintained.flat.selection_metrics(targets), name
        # ...and the entries-based metrics must equal the walk-matrix twin.
        assert metrics == maintained.selection_metrics(targets), name
        try:
            direct_min = min_targets_for_coverage(
                maintained.graph, fraction, maintained.length,
                index=maintained.flat, max_size=n, gain_backend=backend,
            )
            assert min_answer == (direct_min.selected, direct_min.gains), name
        except ParameterError:
            assert min_answer == "unreachable", name
        answers.append(
            (selection.selected, selection.gains, metrics, covered, min_answer)
        )
    assert all(a == answers[0] for a in answers[1:]), "engines disagree"


def _random_edit(dgraph: DynamicGraph, seed: int):
    """A valid (delete-then-insert) batch derived from the current graph."""
    rng = np.random.default_rng(seed)
    n = dgraph.num_nodes
    present = [tuple(edge) for edge in dgraph.graph.edge_array().tolist()]
    absent = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if not dgraph.has_edge(u, v)
    ]
    num_deletes = int(rng.integers(0, min(2, len(present)) + 1))
    num_inserts = int(rng.integers(0, min(2, len(absent)) + 1))
    deletes = [
        present[i]
        for i in rng.choice(len(present), size=num_deletes, replace=False)
    ] if num_deletes else []
    inserts = [
        absent[i]
        for i in rng.choice(len(absent), size=num_inserts, replace=False)
    ] if num_inserts else []
    if not deletes and not inserts:
        return None
    return inserts, deletes


# ----------------------------------------------------------------------
# The differential runner
# ----------------------------------------------------------------------
def run_differential(edges, num_nodes, length, reps, ops, pooled):
    graph = Graph.from_edges(edges, num_nodes=num_nodes)
    dgraph = DynamicGraph(graph)
    dyn = {
        name: DynamicWalkIndex.build(
            graph, length, reps, seed=SEED, engine=_engine_spec(name, pooled)
        )
        for name in ENGINES
    }
    _assert_indexes_identical(dyn, dgraph, length, reps, pooled)
    for op in ops:
        note(f"op: {op}")
        if op[0] == "edit":
            edit = _random_edit(dgraph, op[1])
            if edit is None:
                continue
            inserts, deletes = edit
            note(f"  -> inserts={inserts} deletes={deletes}")
            dgraph.apply_batch(inserts=inserts, deletes=deletes)
            for maintained in dyn.values():
                maintained.sync(dgraph)
            _assert_indexes_identical(dyn, dgraph, length, reps, pooled)
        elif op[0] == "solve":
            _, k, objective = op
            _assert_solve_agrees(dyn, dgraph.graph, min(k, num_nodes), objective)
        elif op[0] == "serve":
            _assert_serve_agrees(dyn, op[1])
        else:  # pragma: no cover - strategy bug guard
            raise AssertionError(f"unknown op {op!r}")


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def _ops():
    return st.lists(
        st.one_of(
            st.tuples(st.just("edit"), st.integers(0, 2**16)),
            st.tuples(
                st.just("solve"),
                st.integers(1, 4),
                st.sampled_from(("f1", "f2")),
            ),
            st.tuples(st.just("serve"), st.integers(0, 2**16)),
        ),
        min_size=1,
        max_size=5,
    )


@st.composite
def _instances(draw):
    num_nodes = draw(st.integers(4, 9))
    edges = draw(
        st.sets(
            st.tuples(
                st.integers(0, num_nodes - 1), st.integers(0, num_nodes - 1)
            ).map(lambda e: (min(e), max(e))).filter(lambda e: e[0] != e[1]),
            min_size=2,
            max_size=min(14, num_nodes * (num_nodes - 1) // 2),
        )
    )
    length = draw(st.integers(1, 4))
    reps = draw(st.integers(1, 4))
    ops = draw(_ops())
    return sorted(edges), num_nodes, length, reps, ops


# ----------------------------------------------------------------------
# Tests
# ----------------------------------------------------------------------
@pytest.mark.slow
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(instance=_instances())
def test_differential_pipeline(instance, pooled_multiproc):
    edges, num_nodes, length, reps, ops = instance
    note(f"graph: n={num_nodes} edges={edges} L={length} R={reps}")
    run_differential(edges, num_nodes, length, reps, ops, pooled_multiproc)


def test_differential_smoke(pooled_multiproc):
    """A pinned build -> edit -> solve -> serve sequence in tier-1."""
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]
    ops = [("edit", 7), ("solve", 2, "f2"), ("solve", 2, "f1"), ("serve", 11)]
    run_differential(edges, 6, 3, 2, ops, pooled_multiproc)
