"""Extension exhibit entry points (experiments.extensions) at tiny scale."""

import pytest

from repro.experiments.config import default_config
from repro.experiments.extensions import (
    ext_applications,
    ext_edge_domination,
    ext_stochastic,
)


@pytest.fixture(scope="module")
def tiny_config():
    """Very small scale so exhibit smoke tests stay fast."""
    return default_config().with_overrides(scale=0.02, num_replicates=10)


class TestExtEdgeDomination:
    def test_structure(self, tiny_config):
        table = ext_edge_domination(tiny_config, k=5, length=4)
        assert table.columns == (
            "dataset", "algorithm", "edge traffic", "seconds"
        )
        assert len(table.rows) == 6  # 2 datasets x 3 algorithms
        assert set(table.column("algorithm")) == {
            "ApproxF3", "ApproxF1", "Degree"
        }

    def test_traffic_positive(self, tiny_config):
        table = ext_edge_domination(tiny_config, k=5, length=4)
        assert all(t >= 0 for t in table.column("edge traffic"))


class TestExtStochastic:
    def test_structure_and_ordering(self, tiny_config):
        table = ext_stochastic(tiny_config, k=10)
        strategies = table.column("strategy")
        assert strategies == ["full", "lazy", "stochastic"]
        ehn = dict(zip(strategies, table.column("EHN")))
        # Lazy equals full exactly; stochastic within its guarantee band.
        assert ehn["lazy"] == ehn["full"]
        assert ehn["stochastic"] >= 0.5 * ehn["full"]

    def test_k_clamped_to_graph(self):
        config = default_config().with_overrides(
            scale=0.001, num_replicates=5
        )
        table = ext_stochastic(config, k=10_000)
        assert len(table.rows) == 3


class TestExtApplications:
    def test_structure(self, tiny_config):
        table = ext_applications(tiny_config, k=5)
        assert len(table.rows) == 3
        assert set(table.column("placement")) == {
            "ApproxF2", "Degree", "Random"
        }
        for kpi in ("social discovery", "p2p success", "ad reach"):
            for value in table.column(kpi):
                assert 0.0 <= value <= 1.0
