"""Micro-benchmarks of the hot kernels (proper repeated-round timings).

These are the building blocks whose costs the paper's complexity analysis
predicts: walk generation O(n R L), index construction O(n R L), a full
gain sweep O(n R L), the D-update O(R deg), and one DP level O(m).
"""

import numpy as np
import pytest

from repro.graphs.generators import power_law_graph
from repro.hitting.exact import hitting_time_vector
from repro.walks.engine import batch_walks
from repro.walks.index import FlatWalkIndex, walker_major_starts
from repro.core.approx_fast import FastApproxEngine


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(5_000, 40_000, seed=77)


@pytest.fixture(scope="module")
def index(graph):
    return FlatWalkIndex.build(graph, 6, 20, seed=78)


def test_batch_walk_generation(benchmark, graph):
    starts = walker_major_starts(graph.num_nodes, 10)
    benchmark(lambda: batch_walks(graph, starts, 6, seed=1))


def test_index_build(benchmark, graph):
    benchmark(lambda: FlatWalkIndex.build(graph, 6, 10, seed=2))


def test_full_gain_sweep(benchmark, index):
    engine = FastApproxEngine(index, "f1")
    benchmark(engine.gains_all)


def test_single_gain_query(benchmark, index):
    engine = FastApproxEngine(index, "f1")
    benchmark(lambda: engine.gain_of(17))


def test_select_update(benchmark, index):
    # Fresh engine per round so repeated selection stays legal.
    nodes = iter(range(index.num_nodes))

    def run():
        engine = FastApproxEngine(index, "f1")
        engine.select(next(nodes))

    benchmark(run)


def test_dp_level_cost(benchmark, graph):
    benchmark(lambda: hitting_time_vector(graph, {0, 1, 2}, 6))
