"""Tests for the exact hitting-time DPs (Theorems 2.1-2.3).

The strongest oracle is brute-force enumeration: on a tiny graph we expand
*every* L-step trajectory with its probability and compute E[T^L_uS] and
Pr[hit] directly from Eq. (1)/(3), then require the DP to match to machine
precision.
"""


import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.generators import (
    complete_graph,
    paper_example_graph,
    path_graph,
    ring_graph,
    star_graph,
)
from repro.hitting.exact import (
    hit_probability_horizons,
    hit_probability_vector,
    hitting_time_horizons,
    hitting_time_matrix,
    hitting_time_vector,
    pairwise_hitting_time,
)


def brute_force(graph, start, targets, length):
    """Expected truncated hitting time and hit probability by enumeration."""
    targets = set(targets)
    total_time = 0.0
    total_prob = 0.0
    stack = [(start, 1.0, 0)]
    while stack:
        node, prob, step = stack.pop()
        if node in targets:
            total_time += prob * step
            total_prob += prob
            continue
        if step == length:
            total_time += prob * length
            continue
        neigh = graph.neighbors(node)
        if neigh.size == 0:
            total_time += prob * length
            continue
        for nxt in neigh:
            stack.append((int(nxt), prob / neigh.size, step + 1))
    return total_time, total_prob


class TestAgainstBruteForce:
    @pytest.mark.parametrize("length", [0, 1, 2, 3, 5])
    def test_paper_graph_all_sources(self, length):
        g = paper_example_graph()
        targets = {1, 6}
        h = hitting_time_vector(g, targets, length)
        p = hit_probability_vector(g, targets, length)
        for u in range(g.num_nodes):
            exp_h, exp_p = brute_force(g, u, targets, length)
            assert h[u] == pytest.approx(exp_h, abs=1e-12)
            assert p[u] == pytest.approx(exp_p, abs=1e-12)

    @pytest.mark.parametrize("targets", [{0}, {2, 4}, {0, 1, 2, 3, 4}])
    def test_path_graph(self, targets):
        g = path_graph(5)
        h = hitting_time_vector(g, targets, 4)
        p = hit_probability_vector(g, targets, 4)
        for u in range(5):
            exp_h, exp_p = brute_force(g, u, targets, 4)
            assert h[u] == pytest.approx(exp_h, abs=1e-12)
            assert p[u] == pytest.approx(exp_p, abs=1e-12)

    def test_dangling_node(self):
        g = Graph.from_edges([(0, 1)], num_nodes=3)
        h = hitting_time_vector(g, {0}, 5)
        p = hit_probability_vector(g, {0}, 5)
        assert h[2] == 5.0  # dangling, not a target: stuck forever
        assert p[2] == 0.0
        assert h[1] == 1.0  # must step to 0
        assert p[1] == 1.0


class TestClosedForms:
    def test_complete_graph_geometric(self):
        # In K_n with one target, each step hits with prob 1/(n-1);
        # E[min(Geom(q), L)] = sum_{i=1..L} (1-q)^(i-1).
        n, length = 6, 8
        g = complete_graph(n)
        q = 1 / (n - 1)
        expected = sum((1 - q) ** (i - 1) for i in range(1, length + 1))
        h = hitting_time_vector(g, {0}, length)
        assert h[1] == pytest.approx(expected, rel=1e-12)

    def test_star_leaf_to_center(self):
        g = star_graph(5)
        assert pairwise_hitting_time(g, 1, 0, 7) == 1.0

    def test_star_center_to_leaf(self):
        # From the center the walk reaches the chosen leaf only at odd hops:
        # each round trip (wrong leaf and back) takes 2 hops.  With L = 4:
        # T = 1 w.p. 1/5; T = 3 w.p. (4/5)(1/5); else truncated at 4.
        g = star_graph(5)
        expected = 1 * (1 / 5) + 3 * (4 / 5) * (1 / 5) + 4 * (4 / 5) ** 2
        assert pairwise_hitting_time(g, 0, 1, 4) == pytest.approx(expected)

    def test_ring_symmetry(self):
        g = ring_graph(8)
        h = hitting_time_vector(g, {0}, 6)
        for offset in range(1, 4):
            assert h[offset] == pytest.approx(h[8 - offset], rel=1e-12)


class TestDefinitionProperties:
    def test_zero_on_targets(self, small_power_law):
        h = hitting_time_vector(small_power_law, {3, 7}, 6)
        assert h[3] == 0.0 and h[7] == 0.0
        p = hit_probability_vector(small_power_law, {3, 7}, 6)
        assert p[3] == 1.0 and p[7] == 1.0

    def test_bounded_by_length(self, small_power_law):
        h = hitting_time_vector(small_power_law, {0}, 9)
        assert (h <= 9.0 + 1e-12).all()
        assert (h >= 0.0).all()

    def test_probability_in_unit_interval(self, small_power_law):
        p = hit_probability_vector(small_power_law, {0, 1}, 9)
        assert (p >= 0).all() and (p <= 1 + 1e-12).all()

    def test_empty_targets(self, small_power_law):
        h = hitting_time_vector(small_power_law, set(), 5)
        assert np.allclose(h, 5.0)
        p = hit_probability_vector(small_power_law, set(), 5)
        assert (p == 0.0).all()

    def test_length_zero(self, small_power_law):
        h = hitting_time_vector(small_power_law, {1}, 0)
        assert (h == 0.0).all()
        p = hit_probability_vector(small_power_law, {1}, 0)
        assert p[1] == 1.0 and p.sum() == 1.0

    def test_monotone_in_targets(self, small_power_law):
        # Lemma behind Theorem 3.1: h decreases when S grows.
        h_small = hitting_time_vector(small_power_law, {0}, 6)
        h_big = hitting_time_vector(small_power_law, {0, 5, 9}, 6)
        assert (h_big <= h_small + 1e-12).all()

    def test_monotone_probability_in_targets(self, small_power_law):
        p_small = hit_probability_vector(small_power_law, {0}, 6)
        p_big = hit_probability_vector(small_power_law, {0, 5, 9}, 6)
        assert (p_big >= p_small - 1e-12).all()

    def test_hitting_time_grows_with_length(self, small_power_law):
        # Truncated hitting time can only grow with the horizon.
        h4 = hitting_time_vector(small_power_law, {2}, 4)
        h8 = hitting_time_vector(small_power_law, {2}, 8)
        assert (h8 >= h4 - 1e-12).all()

    def test_probability_grows_with_length(self, small_power_law):
        p4 = hit_probability_vector(small_power_law, {2}, 4)
        p8 = hit_probability_vector(small_power_law, {2}, 8)
        assert (p8 >= p4 - 1e-12).all()

    def test_negative_length_rejected(self, small_power_law):
        with pytest.raises(ParameterError):
            hitting_time_vector(small_power_law, {0}, -1)
        with pytest.raises(ParameterError):
            hit_probability_vector(small_power_law, {0}, -2)

    def test_out_of_range_target(self, small_power_law):
        with pytest.raises(ParameterError):
            hitting_time_vector(small_power_law, {999}, 3)


class TestHorizons:
    def test_horizons_match_individual_calls(self, small_power_law):
        lengths = [0, 2, 5, 7]
        hs = hitting_time_horizons(small_power_law, {1, 4}, lengths)
        for length, h in zip(lengths, hs):
            expected = hitting_time_vector(small_power_law, {1, 4}, length)
            assert np.allclose(h, expected)

    def test_probability_horizons(self, small_power_law):
        lengths = [1, 3, 3, 6]  # duplicates allowed
        ps = hit_probability_horizons(small_power_law, {2}, lengths)
        assert np.allclose(ps[1], ps[2])
        for length, p in zip(lengths, ps):
            assert np.allclose(
                p, hit_probability_vector(small_power_law, {2}, length)
            )


class TestMatrix:
    def test_matrix_matches_vectors(self):
        g = paper_example_graph()
        H = hitting_time_matrix(g, 4)
        for v in range(g.num_nodes):
            assert np.allclose(H[:, v], hitting_time_vector(g, {v}, 4))

    def test_diagonal_zero(self):
        H = hitting_time_matrix(ring_graph(5), 3)
        assert np.allclose(np.diag(H), 0.0)

    def test_size_guard(self):
        g = path_graph(10)
        with pytest.raises(ParameterError):
            hitting_time_matrix(g, 3, max_nodes=5)
