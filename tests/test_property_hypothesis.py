"""Property-based tests (hypothesis) for the core data structures and the
theoretical invariants the paper proves.

Strategy note: graphs are generated as random edge sets over a small node
range, then canonicalized by GraphBuilder; walk-dependent properties inject
hypothesis-generated walks into the index machinery so the checked property
is exact (no Monte-Carlo tolerance needed).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

#: Exhaustive hypothesis suite: slow lane (see pytest.ini).
pytestmark = pytest.mark.slow

from repro.graphs.builder import GraphBuilder
from repro.graphs.adjacency import Graph
from repro.hitting.exact import hit_probability_vector, hitting_time_vector
from repro.walks.engine import batch_walks, first_hit_time, random_walk, walk_is_valid
from repro.walks.index import FlatWalkIndex, InvertedIndex
from repro.core.approx_fast import FastApproxEngine
from repro.core.approx_greedy import (
    approx_gain,
    initial_distances,
    update_distances,
)

NODE_COUNT = 8

edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NODE_COUNT - 1),
        st.integers(min_value=0, max_value=NODE_COUNT - 1),
    ),
    min_size=1,
    max_size=24,
)

target_sets = st.sets(
    st.integers(min_value=0, max_value=NODE_COUNT - 1), min_size=0, max_size=4
)


def build_graph(edges) -> Graph:
    builder = GraphBuilder()
    builder.add_edges([(u, v) for u, v in edges])
    builder.touch_node(NODE_COUNT - 1)
    return builder.build()


class TestGraphProperties:
    @given(edge_lists)
    def test_builder_canonical(self, edges):
        g = build_graph(edges)
        # Degree sum identity and neighbor symmetry.
        assert int(g.degrees.sum()) == 2 * g.num_edges
        for u, v in g.edges():
            assert g.has_edge(v, u)
            assert u != v

    @given(edge_lists)
    def test_builder_idempotent(self, edges):
        g1 = build_graph(edges)
        g2 = Graph.from_edges(list(g1.edges()), num_nodes=g1.num_nodes)
        assert g1 == g2

    @settings(deadline=None)
    @given(edge_lists)
    def test_matches_networkx(self, edges):
        networkx = pytest.importorskip("networkx")
        g = build_graph(edges)
        nx_graph = networkx.Graph()
        nx_graph.add_nodes_from(range(NODE_COUNT))
        nx_graph.add_edges_from((u, v) for u, v in edges if u != v)
        assert g.num_edges == nx_graph.number_of_edges()


class TestHittingProperties:
    @given(edge_lists, target_sets, st.integers(min_value=0, max_value=6))
    def test_hitting_time_bounds(self, edges, targets, length):
        g = build_graph(edges)
        h = hitting_time_vector(g, targets, length)
        assert (h >= -1e-12).all()
        assert (h <= length + 1e-9).all()
        for v in targets:
            assert h[v] == 0.0

    @given(edge_lists, target_sets, st.integers(min_value=0, max_value=6))
    def test_probability_bounds(self, edges, targets, length):
        g = build_graph(edges)
        p = hit_probability_vector(g, targets, length)
        assert (p >= -1e-12).all()
        assert (p <= 1 + 1e-12).all()

    @given(
        edge_lists,
        target_sets,
        st.integers(min_value=0, max_value=NODE_COUNT - 1),
        st.integers(min_value=0, max_value=5),
    )
    def test_monotone_in_set(self, edges, targets, extra, length):
        # Eq. 14 of the paper's proof: h^L_uT <= h^L_uS for S subset T.
        g = build_graph(edges)
        h_small = hitting_time_vector(g, targets, length)
        h_big = hitting_time_vector(g, set(targets) | {extra}, length)
        assert (h_big <= h_small + 1e-9).all()

    @given(edge_lists, target_sets, st.integers(min_value=0, max_value=5))
    def test_horizon_monotone(self, edges, targets, length):
        g = build_graph(edges)
        h_short = hitting_time_vector(g, targets, length)
        h_long = hitting_time_vector(g, targets, length + 1)
        assert (h_long >= h_short - 1e-9).all()


class TestWalkProperties:
    @given(edge_lists, st.integers(min_value=0, max_value=10), st.integers(0, 2**31))
    def test_walks_follow_edges(self, edges, length, seed):
        g = build_graph(edges)
        walk = random_walk(g, 0, length, seed=seed)
        assert len(walk) == length + 1
        assert walk_is_valid(g, walk)

    @given(edge_lists, st.integers(min_value=1, max_value=6), st.integers(0, 2**31))
    def test_batch_matches_scalar_semantics(self, edges, length, seed):
        g = build_graph(edges)
        walks = batch_walks(g, np.arange(NODE_COUNT), length, seed=seed)
        for row in walks:
            assert walk_is_valid(g, row.tolist())


# Walk-injection strategy: a full walker-major walk matrix for a fixed
# pseudo-graph topology (walks need not follow real edges for the index
# invariants; the index only reads the sequences).
def walk_matrix(num_replicates: int, length: int):
    walk = st.lists(
        st.integers(min_value=0, max_value=NODE_COUNT - 1),
        min_size=length,
        max_size=length,
    )
    def assemble(tails):
        rows = []
        for b, tail in enumerate(tails):
            rows.append([b // num_replicates] + tail)
        return rows
    return st.lists(
        walk, min_size=NODE_COUNT * num_replicates,
        max_size=NODE_COUNT * num_replicates,
    ).map(assemble)


def estimated_f1(walks, length, targets, num_replicates):
    targets = set(targets)
    total = 0.0
    for walk in walks:
        hit = first_hit_time(walk, targets)
        total += hit if hit is not None else length
    return NODE_COUNT * length - total / num_replicates


def estimated_f2(walks, targets, num_replicates):
    targets = set(targets)
    hits = sum(1 for walk in walks if first_hit_time(walk, targets) is not None)
    return hits / num_replicates


class TestIndexProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(walk_matrix(2, 3))
    def test_first_visit_uniqueness(self, walks):
        index = InvertedIndex.from_walks(walks, NODE_COUNT, 2)
        for i in range(2):
            for v in range(NODE_COUNT):
                walkers = [e.walker for e in index.entries(i, v)]
                assert len(walkers) == len(set(walkers))
                assert v not in walkers

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(walk_matrix(2, 3))
    def test_flat_equals_reference(self, walks):
        ref = InvertedIndex.from_walks(walks, NODE_COUNT, 2)
        flat = FlatWalkIndex.from_walks(walks, NODE_COUNT, 2)
        assert flat.total_entries == ref.total_entries
        for v in range(NODE_COUNT):
            assert flat.entry_records(v) == sorted(
                (i, e.walker, e.hop)
                for i in range(2)
                for e in ref.entries(i, v)
            )

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(walk_matrix(2, 3), st.lists(
        st.integers(min_value=0, max_value=NODE_COUNT - 1),
        min_size=1, max_size=3, unique=True,
    ))
    def test_gain_is_marginal_of_estimated_objective(self, walks, picks):
        """The central estimator identity: Approx_Gain == Delta F1hat."""
        index = InvertedIndex.from_walks(walks, NODE_COUNT, 2)
        distances = initial_distances(index, "f1")
        selected: list[int] = []
        for node in picks:
            gain = approx_gain(index, distances, node, "f1")
            expected = estimated_f1(walks, 3, selected + [node], 2) - (
                estimated_f1(walks, 3, selected, 2)
            )
            assert gain == pytest.approx(expected, abs=1e-9)
            update_distances(index, distances, node, "f1")
            selected.append(node)

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(walk_matrix(2, 3), st.lists(
        st.integers(min_value=0, max_value=NODE_COUNT - 1),
        min_size=1, max_size=3, unique=True,
    ))
    def test_gain_is_marginal_f2(self, walks, picks):
        index = InvertedIndex.from_walks(walks, NODE_COUNT, 2)
        distances = initial_distances(index, "f2")
        selected: list[int] = []
        for node in picks:
            gain = approx_gain(index, distances, node, "f2")
            expected = estimated_f2(walks, selected + [node], 2) - (
                estimated_f2(walks, selected, 2)
            )
            assert gain == pytest.approx(expected, abs=1e-9)
            update_distances(index, distances, node, "f2")
            selected.append(node)

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(walk_matrix(2, 3), st.lists(
        st.integers(min_value=0, max_value=NODE_COUNT - 1),
        min_size=0, max_size=3, unique=True,
    ))
    def test_fast_engine_matches_reference_everywhere(self, walks, picks):
        ref = InvertedIndex.from_walks(walks, NODE_COUNT, 2)
        flat = FlatWalkIndex.from_walks(walks, NODE_COUNT, 2)
        for objective in ("f1", "f2"):
            engine = FastApproxEngine(flat, objective)
            distances = initial_distances(ref, objective)
            for node in picks:
                engine.select(node)
                update_distances(ref, distances, node, objective)
            assert engine.distance_matrix().tolist() == distances
            gains = engine.gains_all() / 2
            for u in range(NODE_COUNT):
                if u in picks:
                    continue
                assert gains[u] == pytest.approx(
                    approx_gain(ref, distances, u, objective), abs=1e-9
                )


class TestEstimatedObjectiveTheory:
    """The estimated objectives inherit monotonicity and submodularity —
    the property that makes lazy evaluation sound for the fast engine."""

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(walk_matrix(1, 3), target_sets,
           st.integers(min_value=0, max_value=NODE_COUNT - 1))
    def test_estimated_f1_monotone(self, walks, targets, extra):
        base = estimated_f1(walks, 3, targets, 1)
        bigger = estimated_f1(walks, 3, set(targets) | {extra}, 1)
        assert bigger >= base - 1e-9

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(
        walk_matrix(1, 3),
        st.sets(st.integers(min_value=0, max_value=NODE_COUNT - 1), max_size=2),
        st.integers(min_value=0, max_value=NODE_COUNT - 1),
        st.integers(min_value=0, max_value=NODE_COUNT - 1),
    )
    def test_estimated_f1_submodular(self, walks, small, grow, candidate):
        small = set(small)
        big = small | {grow}
        if candidate in big:
            return
        gain_small = estimated_f1(walks, 3, small | {candidate}, 1) - (
            estimated_f1(walks, 3, small, 1)
        )
        gain_big = estimated_f1(walks, 3, big | {candidate}, 1) - (
            estimated_f1(walks, 3, big, 1)
        )
        assert gain_small >= gain_big - 1e-9
