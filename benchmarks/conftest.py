"""Shared benchmark fixtures.

Every bench runs one paper exhibit through ``benchmark.pedantic`` (a single
timed round — these are experiments, not micro-benchmarks; the micro suite
in ``bench_micro_kernels.py`` uses proper repeated rounds), prints the
resulting table to the real terminal (bypassing capture so it lands in
``bench_output.txt``), and archives it under ``benchmarks/results/``.

Scale knobs: set ``REPRO_SCALE`` (default 0.25), ``REPRO_R`` (default 100)
and ``REPRO_SEED`` before invoking pytest to trade fidelity for wall-clock.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.experiments.config import default_config
from repro.experiments.figures import fig6_fig7

RESULTS_DIR = Path(__file__).parent / "results"

_CACHE: dict[str, object] = {}


@pytest.fixture(scope="session")
def config():
    return default_config()


@pytest.fixture
def report(capsys):
    """Print an ExperimentTable to the live terminal and archive it."""

    def _report(table, filename: str):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = str(table)
        (RESULTS_DIR / filename).write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _report


def best_of(repeats, fn):
    """``(best_elapsed_seconds, last_result)`` over ``repeats`` runs.

    The shared timing discipline of the gated head-to-head benches
    (coverage kernel, dynamic updates, serving): best-of-N damps shared
    runner noise without averaging in cold-cache outliers.
    """
    best_elapsed, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best_elapsed = min(best_elapsed, time.perf_counter() - started)
    return best_elapsed, result


def shared_fig6_fig7(config):
    """Figs. 6 and 7 come from the same runs; compute them once per session."""
    if "fig67" not in _CACHE:
        _CACHE["fig67"] = fig6_fig7(config)
    return _CACHE["fig67"]
