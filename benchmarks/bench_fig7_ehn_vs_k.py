"""Fig. 7: expected number of hitting nodes vs k on the four datasets.

Paper shape: the approximate greedy algorithms dominate the baselines;
ApproxF2 (which optimizes EHN directly) is the best; EHN grows with k.
"""

from benchmarks.conftest import shared_fig6_fig7


def test_fig7(benchmark, config, report):
    _, ehn_table = benchmark.pedantic(
        lambda: shared_fig6_fig7(config), rounds=1, iterations=1
    )
    report(ehn_table, "fig7.txt")
    ehn = ehn_table.columns.index("EHN")
    kmax = max(config.budgets)
    for dataset in {row[0] for row in ehn_table.rows}:
        at_kmax = {
            row[1]: row[ehn] for row in ehn_table.filtered(dataset=dataset, k=kmax)
        }
        best_greedy = max(at_kmax["ApproxF1"], at_kmax["ApproxF2"])
        assert best_greedy >= at_kmax["Degree"] - 1e-9
        assert best_greedy >= at_kmax["Dominate"] - 1e-9
        for algorithm in ("ApproxF1", "ApproxF2"):
            series = [
                row[ehn]
                for row in sorted(
                    ehn_table.filtered(dataset=dataset, algorithm=algorithm),
                    key=lambda r: r[2],
                )
            ]
            assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))
