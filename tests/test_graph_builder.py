"""Tests for GraphBuilder edge hygiene."""

import numpy as np
import pytest

from repro.errors import GraphFormatError, ParameterError
from repro.graphs.builder import GraphBuilder


class TestAccumulation:
    def test_add_edge_and_edges(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.add_edges([(1, 2), (2, 3)])
        g = b.build()
        assert g.num_edges == 3
        assert g.num_nodes == 4

    def test_duplicates_collapse(self):
        b = GraphBuilder()
        b.add_edges([(0, 1), (0, 1), (1, 0)])
        assert b.build().num_edges == 1

    def test_num_pending_edges_counts_raw(self):
        b = GraphBuilder()
        b.add_edges([(0, 1), (0, 1)])
        assert b.num_pending_edges == 2

    def test_numpy_input(self):
        b = GraphBuilder()
        b.add_edges(np.array([[0, 1], [2, 3]]))
        assert b.build().num_edges == 2

    def test_empty_iterable_is_noop(self):
        b = GraphBuilder()
        b.add_edges([])
        assert b.build(num_nodes=2).num_nodes == 2


class TestSelfLoops:
    def test_loops_skipped_by_default(self):
        b = GraphBuilder()
        b.add_edges([(0, 0), (0, 1)])
        g = b.build()
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_loops_rejected_when_strict(self):
        b = GraphBuilder(skip_self_loops=False)
        with pytest.raises(GraphFormatError):
            b.add_edges([(2, 2)])

    def test_all_loops_chunk(self):
        b = GraphBuilder()
        b.add_edges([(1, 1), (2, 2)])
        g = b.build()
        assert g.num_edges == 0
        assert g.num_nodes == 3  # loop endpoints still define node range


class TestValidation:
    def test_negative_endpoint(self):
        b = GraphBuilder()
        with pytest.raises(GraphFormatError):
            b.add_edges([(-1, 2)])

    def test_non_integer(self):
        b = GraphBuilder()
        with pytest.raises(GraphFormatError):
            b.add_edges(np.array([[0.5, 1.5]]))

    def test_bad_shape(self):
        b = GraphBuilder()
        with pytest.raises(GraphFormatError):
            b.add_edges(np.array([[0, 1, 2]]))

    def test_num_nodes_too_small(self):
        b = GraphBuilder()
        b.add_edge(0, 5)
        with pytest.raises(ParameterError):
            b.build(num_nodes=3)


class TestTouchNode:
    def test_touch_extends_range(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.touch_node(9)
        g = b.build()
        assert g.num_nodes == 10
        assert g.degree(9) == 0

    def test_touch_negative_rejected(self):
        b = GraphBuilder()
        with pytest.raises(ParameterError):
            b.touch_node(-1)

    def test_empty_builder_builds_empty(self):
        assert GraphBuilder().build().num_nodes == 0


class TestCsrShape:
    def test_csr_sorted_rows(self):
        b = GraphBuilder()
        b.add_edges([(3, 1), (3, 0), (3, 2)])
        g = b.build()
        assert g.neighbors(3).tolist() == [0, 1, 2]

    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        rng = np.random.default_rng(4)
        edges = rng.integers(0, 30, size=(200, 2))
        b = GraphBuilder()
        b.add_edges(edges)
        b.touch_node(29)
        g = b.build()
        nx_graph = networkx.Graph()
        nx_graph.add_nodes_from(range(30))
        nx_graph.add_edges_from(
            (int(u), int(v)) for u, v in edges if u != v
        )
        assert g.num_nodes == nx_graph.number_of_nodes()
        assert g.num_edges == nx_graph.number_of_edges()
        for u in range(30):
            assert sorted(g.neighbors(u).tolist()) == sorted(nx_graph.neighbors(u))
