"""Tests for the Hoeffding sample-size bounds (Lemmas 3.3/3.4)."""

import math

import pytest

from repro.errors import ParameterError
from repro.hitting.bounds import (
    delta_for_sample_size,
    epsilon_for_sample_size,
    hoeffding_tail,
    sample_size_f1,
    sample_size_f2,
)


class TestSampleSizes:
    def test_lemma33_formula(self):
        n, s, eps, delta = 1000, 30, 0.1, 0.01
        expected = math.ceil(math.log((n - s) / delta) / (2 * eps**2))
        assert sample_size_f1(n, s, eps, delta) == expected

    def test_lemma34_formula(self):
        n, eps, delta = 1000, 0.1, 0.01
        expected = math.ceil(math.log(n / delta) / (2 * eps**2))
        assert sample_size_f2(n, eps, delta) == expected

    def test_f1_needs_fewer_than_f2(self):
        # log((n-|S|)/delta) < log(n/delta) for |S| > 0.
        assert sample_size_f1(1000, 100, 0.1, 0.01) <= sample_size_f2(
            1000, 0.1, 0.01
        )

    def test_tighter_epsilon_needs_more_samples(self):
        loose = sample_size_f2(1000, 0.2, 0.01)
        tight = sample_size_f2(1000, 0.05, 0.01)
        assert tight > loose

    def test_smaller_delta_needs_more_samples(self):
        assert sample_size_f2(1000, 0.1, 0.001) > sample_size_f2(1000, 0.1, 0.1)

    def test_paper_scale_r_is_small(self):
        # The paper observes R ~ 100 suffices; the bound at eps=0.15,
        # delta=0.1 on a 1000-node graph is within an order of magnitude.
        assert sample_size_f2(1000, 0.15, 0.1) < 300


class TestInversions:
    def test_epsilon_round_trip(self):
        n, delta = 500, 0.05
        r = sample_size_f2(n, 0.1, delta)
        eps = epsilon_for_sample_size(n, r, delta)
        assert eps <= 0.1 + 1e-9

    def test_delta_round_trip(self):
        n, eps = 500, 0.1
        r = sample_size_f2(n, eps, 0.05)
        delta = delta_for_sample_size(n, r, eps)
        assert delta <= 0.05 + 1e-9

    def test_delta_capped_at_one(self):
        assert delta_for_sample_size(10**6, 1, 0.01) == 1.0

    def test_tail_decreases_with_samples(self):
        assert hoeffding_tail(200, 0.1) < hoeffding_tail(100, 0.1)


class TestValidation:
    def test_eps_out_of_range(self):
        with pytest.raises(ParameterError):
            sample_size_f2(10, 0.0, 0.1)
        with pytest.raises(ParameterError):
            sample_size_f2(10, 1.0, 0.1)

    def test_delta_out_of_range(self):
        with pytest.raises(ParameterError):
            sample_size_f2(10, 0.1, 0.0)

    def test_set_size_out_of_range(self):
        with pytest.raises(ParameterError):
            sample_size_f1(10, 10, 0.1, 0.1)
        with pytest.raises(ParameterError):
            sample_size_f1(10, -1, 0.1, 0.1)

    def test_bad_sample_size(self):
        with pytest.raises(ParameterError):
            epsilon_for_sample_size(10, 0, 0.1)
        with pytest.raises(ParameterError):
            hoeffding_tail(0, 0.1)
