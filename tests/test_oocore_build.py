"""The out-of-core build pipeline (repro.walks.build, DESIGN.md §15).

The load-bearing claim is *byte-identity*: for every engine, v3 format,
and memory budget, `build_index_archive` writes the same bytes
`save_index` writes for the in-memory build — so these tests compare
whole files, not decoded arrays, wherever the container allows it
(v3 carries no timestamp; npz members do, so the dense format compares
arrays).  The rest covers the pipeline's edges: the single-run fast
path, run boundaries splitting one hit node's block, empty inputs,
crash-mid-merge atomicity, and temp-file hygiene.
"""

import os

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ParameterError
from repro.graphs.generators import power_law_graph, ring_graph, star_graph
from repro.walks.build import (
    DenseEntryWriter,
    ExternalSortSink,
    build_index_archive,
)
from repro.walks.backends import MultiprocWalkEngine
from repro.walks.index import FlatWalkIndex
from repro.walks.persistence import load_index, save_index


@pytest.fixture(scope="module")
def multiproc_engine():
    """A pool-forced multiproc engine (min_parallel_rows=0 so even the
    small test batches fan out through the worker processes)."""
    engine = MultiprocWalkEngine(
        num_procs=2, shard_rows=128, min_parallel_rows=0
    )
    yield engine
    engine.close()


def _reference_archive(tmp_path, graph, length, reps, fmt, seed, chunk_rows,
                       engine=None, name="ref"):
    index = FlatWalkIndex.build(
        graph, length, reps, seed=seed, engine=engine, chunk_rows=chunk_rows
    )
    path = tmp_path / f"{name}.idx3"
    meta = engine.name if isinstance(engine, MultiprocWalkEngine) else engine
    save_index(index, path, graph=graph, engine=meta, seed=seed, format=fmt)
    return path


class TestByteParity:
    @pytest.mark.parametrize("engine", ["numpy", "csr", "sharded"])
    @pytest.mark.parametrize("fmt", ["mmap", "compressed"])
    def test_every_engine_and_format(self, tmp_path, engine, fmt):
        graph = power_law_graph(120, 700, seed=9)
        ref = _reference_archive(
            tmp_path, graph, 6, 8, fmt, seed=3, chunk_rows=128, engine=engine
        )
        for budget in (None, 4096):
            out = tmp_path / f"oo-{budget}.idx3"
            report = build_index_archive(
                graph, 6, 8, out, format=fmt, seed=3, engine=engine,
                chunk_rows=128, memory_budget=budget,
            )
            assert out.read_bytes() == ref.read_bytes()
            if budget is not None:
                assert report.num_runs > 1
                assert report.spilled_bytes > 0

    def test_multiproc_engine(self, tmp_path, multiproc_engine):
        # Below min_parallel_rows the engine falls back to sequential
        # chunks, which still exercises its iter_walk_records override.
        graph = power_law_graph(100, 500, seed=4)
        ref = _reference_archive(
            tmp_path, graph, 5, 6, "mmap", seed=7, chunk_rows=100,
            engine=multiproc_engine,
        )
        out = tmp_path / "oo.idx3"
        build_index_archive(
            graph, 5, 6, out, format="mmap", seed=7,
            engine=multiproc_engine, chunk_rows=100, memory_budget=2048,
        )
        assert out.read_bytes() == ref.read_bytes()

    def test_dense_format_array_parity(self, tmp_path):
        graph = power_law_graph(90, 400, seed=5)
        index = FlatWalkIndex.build(graph, 5, 6, seed=2, chunk_rows=64)
        out = tmp_path / "oo.npz"
        build_index_archive(
            graph, 5, 6, out, format="dense", seed=2, chunk_rows=64,
            memory_budget=2048,
        )
        back = load_index(out, graph=graph)
        np.testing.assert_array_equal(back.indptr, index.indptr)
        np.testing.assert_array_equal(
            np.asarray(back.state), np.asarray(index.state)
        )
        np.testing.assert_array_equal(
            np.asarray(back.hop), np.asarray(index.hop)
        )
        assert np.asarray(back.state).dtype == np.asarray(index.state).dtype

    def test_in_memory_build_with_budget_identical(self, tmp_path):
        graph = power_law_graph(100, 500, seed=6)
        plain = FlatWalkIndex.build(graph, 6, 8, seed=1, chunk_rows=128)
        budgeted = FlatWalkIndex.build(
            graph, 6, 8, seed=1, chunk_rows=128, memory_budget=1024,
            spill_dir=tmp_path,
        )
        np.testing.assert_array_equal(budgeted.indptr, plain.indptr)
        np.testing.assert_array_equal(
            np.asarray(budgeted.state), np.asarray(plain.state)
        )
        np.testing.assert_array_equal(
            np.asarray(budgeted.hop), np.asarray(plain.hop)
        )
        assert list(tmp_path.iterdir()) == []  # runs cleaned up

    def test_loaded_archive_serves_same_entries(self, tmp_path):
        graph = power_law_graph(80, 400, seed=8)
        index = FlatWalkIndex.build(graph, 5, 10, seed=9, chunk_rows=100)
        out = tmp_path / "oo.idx3"
        build_index_archive(
            graph, 5, 10, out, format="compressed", seed=9, chunk_rows=100,
            memory_budget=4096,
        )
        back = load_index(out, graph=graph)
        for node in range(0, 80, 13):
            s_ref, h_ref = index.entries_for(node)
            s_oo, h_oo = back.entries_for(node)
            np.testing.assert_array_equal(np.asarray(s_oo), np.asarray(s_ref))
            np.testing.assert_array_equal(np.asarray(h_oo), np.asarray(h_ref))


class TestEdgeCases:
    def test_single_run_fast_path(self, tmp_path):
        graph = ring_graph(40)
        out = tmp_path / "oo.idx3"
        report = build_index_archive(
            graph, 4, 3, out, format="mmap", seed=1, memory_budget=1 << 24,
        )
        assert report.num_runs == 1
        assert report.spilled_bytes == 0
        # Nothing but the archive in the directory: no run or staging
        # temps survive the fast path either.
        assert [p.name for p in tmp_path.iterdir()] == ["oo.idx3"]

    def test_zero_length_walks(self, tmp_path):
        # L=0: every walk is just its start, no first visits, no records.
        graph = ring_graph(12)
        for fmt in ("mmap", "compressed"):
            ref = _reference_archive(
                tmp_path, graph, 0, 2, fmt, seed=1, chunk_rows=8,
                name=f"ref-{fmt}",
            )
            out = tmp_path / f"oo-{fmt}.idx3"
            report = build_index_archive(
                graph, 0, 2, out, format=fmt, seed=1, chunk_rows=8,
                memory_budget=64,
            )
            assert report.total_entries == 0
            assert out.read_bytes() == ref.read_bytes()
            back = load_index(out, graph=graph)
            assert back.total_entries == 0

    def test_run_boundary_splits_hub_block(self, tmp_path):
        # A star graph concentrates almost all records on the hub, so a
        # tiny budget is guaranteed to split the hub's block across many
        # runs — the merge and the block grouper must reassemble it.
        graph = star_graph(30)
        ref = _reference_archive(
            tmp_path, graph, 4, 8, "compressed", seed=2, chunk_rows=16
        )
        out = tmp_path / "oo.idx3"
        report = build_index_archive(
            graph, 4, 8, out, format="compressed", seed=2, chunk_rows=16,
            memory_budget=256,
        )
        assert report.num_runs > 2
        assert out.read_bytes() == ref.read_bytes()

    def test_crash_mid_merge_keeps_prior_archive_and_cleans_temps(
        self, tmp_path, monkeypatch
    ):
        graph = power_law_graph(60, 300, seed=3)
        out = tmp_path / "oo.idx3"
        build_index_archive(graph, 5, 4, out, format="mmap", seed=5)
        good = out.read_bytes()

        from repro.walks import build as build_mod

        def boom(self, keys, hops):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(build_mod._MmapArchiveWriter, "emit", boom)
        with pytest.raises(RuntimeError, match="disk on fire"):
            build_index_archive(
                graph, 5, 4, out, format="mmap", seed=5, memory_budget=1024,
            )
        assert out.read_bytes() == good  # prior archive untouched
        assert [p.name for p in tmp_path.iterdir()] == ["oo.idx3"]

    def test_invalid_budget_and_chunk_rows(self, tmp_path):
        graph = ring_graph(8)
        with pytest.raises(ParameterError):
            build_index_archive(
                graph, 3, 2, tmp_path / "x.idx3", memory_budget=0
            )
        with pytest.raises(ParameterError):
            build_index_archive(
                graph, 3, 2, tmp_path / "x.idx3", chunk_rows=0
            )
        with pytest.raises(ParameterError):
            build_index_archive(
                graph, 3, 2, tmp_path / "x.idx3", format="roaring"
            )

    def test_truncated_run_file_fails_loudly(self, tmp_path):
        # A spilled run that lost bytes (torn write, full disk) must
        # raise, not silently build a short archive.
        from repro.errors import GraphFormatError
        from repro.walks.build import _FileRun

        run = tmp_path / "run.tmp"
        run.write_bytes(b"\x00" * 15)  # 1.5 records
        reader = _FileRun(run, total=2)
        with pytest.raises(GraphFormatError, match="truncated"):
            reader.read(2)
        reader.close()


class TestSinkSeam:
    def test_sink_counts_and_dense_writer_roundtrip(self):
        sink = ExternalSortSink(5, 2)
        sink.consume(
            np.array([3, 1, 3]), np.array([9, 0, 2]), np.array([2, 1, 1])
        )
        sink.consume(np.array([0]), np.array([7]), np.array([4]))
        assert sink.total_records == 4
        assert sink.max_hop == 4
        indptr, state, hop = sink.finalize(DenseEntryWriter(5, 2))
        np.testing.assert_array_equal(indptr, [0, 1, 2, 2, 4, 4])
        np.testing.assert_array_equal(state, [7, 0, 2, 9])
        np.testing.assert_array_equal(hop, [4, 1, 1, 2])
        assert state.dtype == np.int32 and hop.dtype == np.int16

    def test_spill_dir_is_honored(self, tmp_path):
        spills = tmp_path / "spills"
        spills.mkdir()
        seen = []
        real_unlink = os.unlink

        def spy(path, *a, **kw):
            seen.append(str(path))
            return real_unlink(path, *a, **kw)

        sink = ExternalSortSink(50, 2, memory_budget=64, spill_dir=spills)
        rng = np.random.default_rng(0)
        hits = rng.integers(0, 50, size=40)
        states = np.arange(40)
        sink.consume(hits, states, np.ones(40, dtype=np.int64))
        assert sink.spill_runs >= 1
        assert any(p.name.startswith(".rwidx-run-") for p in spills.iterdir())
        sink.close()
        assert list(spills.iterdir()) == []


class TestCli:
    def test_index_with_budget_matches_plain_index(self, tmp_path, capsys):
        ref = tmp_path / "ref.idx3"
        oo = tmp_path / "oo.idx3"
        base = [
            "index", "--synthetic", "80,300", "-L", "4", "-R", "5",
            "--seed", "11", "--index-format", "mmap", "--chunk-rows", "64",
        ]
        assert main(base + ["--out", str(ref)]) == 0
        assert main(
            base + ["--out", str(oo), "--build-memory-budget", "2048"]
        ) == 0
        assert oo.read_bytes() == ref.read_bytes()
        assert "sort runs" in capsys.readouterr().out

    def test_select_consumes_streamed_archive(self, tmp_path, capsys):
        out = tmp_path / "oo.idx3"
        assert main([
            "index", "--synthetic", "80,300", "-L", "4", "-R", "5",
            "--seed", "11", "--index-format", "compressed",
            "--out", str(out), "--build-memory-budget", "4096",
        ]) == 0
        capsys.readouterr()
        assert main([
            "select", "--synthetic", "80,300", "-k", "3", "--seed", "11",
            "--index", str(out),
        ]) == 0
        assert "selected" in capsys.readouterr().out
