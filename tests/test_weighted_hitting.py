"""Tests for hitting quantities on weighted digraphs.

The decisive check: lifting an unweighted graph with unit weights must
reproduce the unweighted DP exactly, and weighted results must match
brute-force trajectory enumeration on small digraphs.
"""

import numpy as np
import pytest

from repro.graphs.generators import power_law_graph
from repro.graphs.weighted import WeightedDiGraph
from repro.hitting.exact import hit_probability_vector, hitting_time_vector
from repro.hitting.weighted import (
    weighted_hit_probability_vector,
    weighted_hitting_time_vector,
    weighted_transition_matrix,
)


def brute_force(graph, start, targets, length):
    """Enumerate weighted trajectories for E[T] and Pr[hit]."""
    targets = set(targets)
    total_time = total_prob = 0.0
    stack = [(start, 1.0, 0)]
    while stack:
        node, prob, step = stack.pop()
        if node in targets:
            total_time += prob * step
            total_prob += prob
            continue
        if step == length:
            total_time += prob * length
            continue
        nbrs, weights = graph.out_neighbors(node)
        if nbrs.size == 0:
            total_time += prob * length
            continue
        norm = weights.sum()
        for v, w in zip(nbrs, weights):
            stack.append((int(v), prob * float(w) / norm, step + 1))
    return total_time, total_prob


class TestTransitionMatrix:
    def test_rows_stochastic(self):
        g = WeightedDiGraph.from_edges(
            [(0, 1, 2.0), (0, 2, 1.0), (1, 2, 5.0), (2, 0, 1.0)]
        )
        P = weighted_transition_matrix(g)
        assert np.allclose(np.asarray(P.sum(axis=1)).ravel(), 1.0)

    def test_proportional_to_weights(self):
        g = WeightedDiGraph.from_edges([(0, 1, 3.0), (0, 2, 1.0)])
        P = weighted_transition_matrix(g).toarray()
        assert P[0, 1] == pytest.approx(0.75)
        assert P[0, 2] == pytest.approx(0.25)

    def test_dangling_self_loop(self):
        g = WeightedDiGraph.from_edges([(0, 1, 1.0)])
        P = weighted_transition_matrix(g).toarray()
        assert P[1, 1] == 1.0


class TestUnitWeightsMatchUnweighted:
    @pytest.mark.parametrize("length", [0, 1, 4, 7])
    def test_hitting_time(self, length):
        und = power_law_graph(50, 150, seed=6)
        g = WeightedDiGraph.from_undirected(und)
        targets = {0, 7, 13}
        assert np.allclose(
            weighted_hitting_time_vector(g, targets, length),
            hitting_time_vector(und, targets, length),
        )

    def test_hit_probability(self):
        und = power_law_graph(50, 150, seed=7)
        g = WeightedDiGraph.from_undirected(und)
        targets = {2, 9}
        assert np.allclose(
            weighted_hit_probability_vector(g, targets, 5),
            hit_probability_vector(und, targets, 5),
        )


class TestAgainstBruteForce:
    @pytest.mark.parametrize("length", [0, 1, 2, 4])
    def test_small_weighted_digraph(self, length):
        g = WeightedDiGraph.from_edges(
            [
                (0, 1, 2.0), (0, 2, 1.0), (1, 3, 1.0), (1, 0, 3.0),
                (2, 3, 4.0), (3, 0, 1.0), (3, 2, 2.0),
            ]
        )
        targets = {3}
        h = weighted_hitting_time_vector(g, targets, length)
        p = weighted_hit_probability_vector(g, targets, length)
        for u in range(4):
            exp_h, exp_p = brute_force(g, u, targets, length)
            assert h[u] == pytest.approx(exp_h, abs=1e-12)
            assert p[u] == pytest.approx(exp_p, abs=1e-12)

    def test_directedness_matters(self):
        # 0 -> 1 exists, 1 -> 0 does not: h(0->1) = 1 but h(1->0) = L.
        g = WeightedDiGraph.from_edges([(0, 1, 1.0)])
        h = weighted_hitting_time_vector(g, {1}, 4)
        assert h[0] == 1.0
        h_back = weighted_hitting_time_vector(g, {0}, 4)
        assert h_back[1] == 4.0
