"""Tests for the directed, weighted graph container."""

import pytest

from repro.errors import GraphFormatError, ParameterError
from repro.graphs.generators import power_law_graph, ring_graph
from repro.graphs.weighted import WeightedDiGraph


class TestConstruction:
    def test_from_edges(self):
        g = WeightedDiGraph.from_edges([(0, 1, 2.0), (1, 2, 1.0), (2, 0, 0.5)])
        assert g.num_nodes == 3
        assert g.num_arcs == 3

    def test_directed_not_symmetric(self):
        g = WeightedDiGraph.from_edges([(0, 1, 1.0)])
        targets, _ = g.out_neighbors(0)
        assert targets.tolist() == [1]
        targets, _ = g.out_neighbors(1)
        assert targets.tolist() == []

    def test_parallel_edges_merge_weights(self):
        g = WeightedDiGraph.from_edges([(0, 1, 1.0), (0, 1, 2.5)])
        assert g.num_arcs == 1
        _, weights = g.out_neighbors(0)
        assert weights[0] == pytest.approx(3.5)

    def test_num_nodes_override(self):
        g = WeightedDiGraph.from_edges([(0, 1, 1.0)], num_nodes=5)
        assert g.num_nodes == 5
        assert g.out_degrees[4] == 0

    def test_self_loop_rejected(self):
        with pytest.raises(GraphFormatError):
            WeightedDiGraph.from_edges([(1, 1, 1.0)])

    def test_non_positive_weight_rejected(self):
        with pytest.raises(GraphFormatError):
            WeightedDiGraph.from_edges([(0, 1, 0.0)])
        with pytest.raises(GraphFormatError):
            WeightedDiGraph.from_edges([(0, 1, -1.0)])

    def test_negative_node_rejected(self):
        with pytest.raises(GraphFormatError):
            WeightedDiGraph.from_edges([(-1, 0, 1.0)])

    def test_num_nodes_too_small(self):
        with pytest.raises(ParameterError):
            WeightedDiGraph.from_edges([(0, 5, 1.0)], num_nodes=2)

    def test_arrays_read_only(self):
        g = WeightedDiGraph.from_edges([(0, 1, 1.0)])
        with pytest.raises(ValueError):
            g.weights[0] = 9.0


class TestFromUndirected:
    def test_round_trip_structure(self):
        und = power_law_graph(40, 120, seed=3)
        g = WeightedDiGraph.from_undirected(und)
        assert g.num_nodes == und.num_nodes
        assert g.num_arcs == 2 * und.num_edges
        for u in range(und.num_nodes):
            targets, weights = g.out_neighbors(u)
            assert targets.tolist() == und.neighbors(u).tolist()
            assert (weights == 1.0).all()

    def test_bad_weight(self):
        with pytest.raises(ParameterError):
            WeightedDiGraph.from_undirected(ring_graph(3), weight=0.0)


class TestAccessors:
    def test_out_strength(self):
        g = WeightedDiGraph.from_edges([(0, 1, 2.0), (0, 2, 3.0)])
        assert g.out_strength(0) == pytest.approx(5.0)
        assert g.out_strength(1) == 0.0

    def test_arcs_iterator(self):
        triples = [(0, 1, 2.0), (1, 2, 1.5)]
        g = WeightedDiGraph.from_edges(triples)
        assert list(g.arcs()) == triples

    def test_node_range_checked(self):
        g = WeightedDiGraph.from_edges([(0, 1, 1.0)])
        with pytest.raises(ParameterError):
            g.out_neighbors(7)

    def test_equality(self):
        a = WeightedDiGraph.from_edges([(0, 1, 1.0)])
        b = WeightedDiGraph.from_edges([(0, 1, 1.0)])
        c = WeightedDiGraph.from_edges([(0, 1, 2.0)])
        assert a == b
        assert a != c
