"""Mutable graph façade with a change journal (DESIGN.md §9.1).

Every algorithm in this package runs on the immutable CSR
:class:`~repro.graphs.adjacency.Graph`.  :class:`DynamicGraph` keeps that
contract — each edit batch produces a *new* immutable snapshot — while
recording the batches themselves in a journal, so downstream structures
(most importantly the incremental walk index,
:class:`repro.dynamic.index.DynamicWalkIndex`) can replay exactly the
edits they have not yet absorbed instead of rebuilding from scratch.

The unit of change is the :class:`EditBatch`: a validated, canonicalized
set of edge insertions and deletions applied atomically.  Batches are
strict — inserting an edge that already exists, deleting one that does
not, self-loops, out-of-range endpoints, and insert/delete overlap all
raise :class:`~repro.errors.ParameterError` — because a silent no-op edit
would desynchronize any consumer that derives its dirty set from the
journal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph

__all__ = ["EditBatch", "DynamicGraph", "edit_graph"]


def _canonical_edges(
    edges: "Iterable[tuple[int, int]] | np.ndarray", num_nodes: int, label: str
) -> tuple[tuple[int, int], ...]:
    """Validate and canonicalize an edge list to sorted ``u < v`` tuples."""
    pairs: list[tuple[int, int]] = []
    for edge in edges:
        try:
            u, v = (int(edge[0]), int(edge[1]))
        except (TypeError, ValueError, IndexError):
            raise ParameterError(f"{label} must be (u, v) pairs, got {edge!r}")
        if u == v:
            raise ParameterError(f"{label}: self-loop on node {u}")
        if not (0 <= u < num_nodes and 0 <= v < num_nodes):
            raise ParameterError(
                f"{label}: edge ({u}, {v}) out of range [0, {num_nodes})"
            )
        pairs.append((min(u, v), max(u, v)))
    if len(set(pairs)) != len(pairs):
        raise ParameterError(f"{label} contains duplicate edges")
    return tuple(sorted(pairs))


@dataclass(frozen=True)
class EditBatch:
    """One atomic, validated set of edge edits.

    ``inserts`` and ``deletes`` are canonical (``u < v``, sorted, no
    duplicates, disjoint).  ``epoch`` is the journal position *after*
    applying this batch: the graph at epoch ``e`` is the initial graph
    with journal batches ``0..e-1`` applied.
    """

    inserts: tuple[tuple[int, int], ...]
    deletes: tuple[tuple[int, int], ...]
    epoch: int = field(default=0)

    @property
    def num_edits(self) -> int:
        """Total number of edge operations in the batch."""
        return len(self.inserts) + len(self.deletes)

    def modified_nodes(self) -> np.ndarray:
        """Sorted unique endpoints whose adjacency this batch changes.

        This is the seed of the walk-index dirty set: a materialized walk
        can only change if its trajectory visits one of these nodes with
        hops still left to take.
        """
        flat = [u for edge in self.inserts + self.deletes for u in edge]
        return np.unique(np.asarray(flat, dtype=np.int64))


def edit_graph(
    graph: Graph,
    inserts: "Sequence[tuple[int, int]]" = (),
    deletes: "Sequence[tuple[int, int]]" = (),
) -> Graph:
    """A new :class:`Graph` with ``deletes`` removed and ``inserts`` added.

    Pure CSR surgery — ``O((m + b) log(m + b))`` for ``b`` edits — and the
    result is canonical (rows sorted), so it is array-equal to building
    the edited edge set from scratch with
    :class:`~repro.graphs.builder.GraphBuilder`.  Inputs are trusted to be
    canonical and applicable; :meth:`DynamicGraph.apply_batch` is the
    validating entry point.
    """
    if not inserts and not deletes:
        return graph
    n = graph.num_nodes
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    dst = graph.indices.astype(np.int64)
    if deletes:
        dels = np.asarray(deletes, dtype=np.int64)
        # Both orientations of each undirected edge are stored.
        del_keys = np.concatenate(
            (dels[:, 0] * n + dels[:, 1], dels[:, 1] * n + dels[:, 0])
        )
        keep = ~np.isin(src * n + dst, del_keys)
        src, dst = src[keep], dst[keep]
    if inserts:
        ins = np.asarray(inserts, dtype=np.int64)
        src = np.concatenate((src, ins[:, 0], ins[:, 1]))
        dst = np.concatenate((dst, ins[:, 1], ins[:, 0]))
    order = np.lexsort((dst, src))
    counts = np.bincount(src, minlength=n) if src.size else np.zeros(n, np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return Graph(indptr, dst[order].astype(np.int32))


class DynamicGraph:
    """A sequence of immutable :class:`Graph` snapshots under edge churn.

    The node set is fixed at construction (peers that "leave" simply lose
    all their edges); only edges change.  ``graph`` is always the current
    snapshot; ``journal`` is the full batch history, and ``epoch`` equals
    ``len(journal)``.  Consumers that cache per-snapshot state record the
    epoch they were computed at and catch up by replaying
    ``journal[their_epoch:]`` — see
    :meth:`repro.dynamic.index.DynamicWalkIndex.sync`.
    """

    def __init__(self, graph: Graph):
        self._graph = graph
        self._journal: list[EditBatch] = []

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The current immutable snapshot."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        return self._graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    @property
    def journal(self) -> tuple[EditBatch, ...]:
        """All batches applied so far, in order."""
        return tuple(self._journal)

    @property
    def epoch(self) -> int:
        """Number of batches applied (the current journal position)."""
        return len(self._journal)

    def has_edge(self, u: int, v: int) -> bool:
        return self._graph.has_edge(u, v)

    # ------------------------------------------------------------------
    def apply_batch(
        self,
        inserts: "Sequence[tuple[int, int]]" = (),
        deletes: "Sequence[tuple[int, int]]" = (),
    ) -> EditBatch:
        """Validate, apply, and journal one batch of edge edits.

        Returns the canonical :class:`EditBatch`.  The batch semantics are
        "delete then insert" against the *current* snapshot: every delete
        must name an existing edge, every insert a missing one, and the
        two lists must be disjoint (an edit trace that removes and re-adds
        the same edge should carry it in two batches).
        """
        n = self.num_nodes
        ins = _canonical_edges(inserts, n, "inserts")
        dels = _canonical_edges(deletes, n, "deletes")
        overlap = set(ins) & set(dels)
        if overlap:
            raise ParameterError(
                f"edges {sorted(overlap)} appear in both inserts and deletes"
            )
        for u, v in dels:
            if not self._graph.has_edge(u, v):
                raise ParameterError(f"cannot delete missing edge ({u}, {v})")
        for u, v in ins:
            if self._graph.has_edge(u, v):
                raise ParameterError(f"cannot insert existing edge ({u}, {v})")
        batch = EditBatch(inserts=ins, deletes=dels, epoch=self.epoch + 1)
        self._graph = edit_graph(self._graph, ins, dels)
        self._journal.append(batch)
        return batch

    def remove_node_edges(self, node: int) -> EditBatch:
        """Journal a batch deleting every current edge of ``node``.

        The churn model for a peer leaving a P2P overlay: the node stays
        in the id space (so indexes keep their shape) but becomes
        isolated.
        """
        if not 0 <= node < self.num_nodes:
            raise ParameterError(f"node {node} out of range")
        deletes = [(node, int(v)) for v in self._graph.neighbors(node)]
        return self.apply_batch(deletes=deletes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicGraph(n={self.num_nodes}, m={self.num_edges}, "
            f"epoch={self.epoch})"
        )
