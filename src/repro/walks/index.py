"""The inverted walk index of Algorithm 3 (``Invert_Index``).

For every node ``w`` the index materializes ``R`` independent L-length
random walks.  Each *first visit* of a node ``v`` by walk ``i`` of walker
``w`` at hop ``j`` becomes one entry "``w`` hits ``v`` at hop ``j``" filed
under ``(i, v)``.  The approximate greedy algorithm (Algorithm 6) then
answers every marginal-gain query from these entries alone.

Two interchangeable representations:

* :class:`InvertedIndex` — the paper's list-of-lists ``I[1:R][1:n]``,
  built exactly like the pseudocode (visited array, one walk at a time).
  Transparent, used for small graphs and as the test oracle.
* :class:`FlatWalkIndex` — all entries in flat numpy arrays grouped by hit
  node (CSR-by-hit), with the ``(replicate, walker)`` pair pre-flattened to
  an index into the flattened ``D`` matrix.  This is the representation the
  vectorized engine (:mod:`repro.core.approx_fast`) consumes; it is built
  chunk-wise so paper-scale graphs fit in memory.

Both builders accept pre-generated walks, so tests can inject the exact
walks of the paper's Example 3.1 and compare the two representations
entry-for-entry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.walks.backends import WalkEngine, get_engine
from repro.walks.engine import random_walk
from repro.walks.parallel import canonical_record_key
from repro.walks.rng import resolve_rng
from repro.walks.rows import CompressedRows, scatter_or_bits
from repro.walks.storage import (
    CompressedStorage,
    DenseStorage,
    MmapStorage,
    entry_state_dtype,
)

__all__ = [
    "IndexEntry",
    "InvertedIndex",
    "FlatWalkIndex",
    "walker_major_starts",
    "scatter_or_bits",
]


@dataclass(frozen=True)
class IndexEntry:
    """One inverted-index record: ``walker`` hits the list's node at ``hop``."""

    walker: int
    hop: int


def walker_major_starts(num_nodes: int, num_replicates: int) -> np.ndarray:
    """Start nodes for the canonical batch layout.

    Row ``b`` of the walk batch is replicate ``b % R`` of walker ``b // R``;
    this helper builds the matching ``starts`` vector
    ``[0,0,...,0, 1,1,...,1, ...]``.
    """
    return np.repeat(np.arange(num_nodes, dtype=np.int64), num_replicates)


def _validate_params(num_nodes: int, length: int, num_replicates: int) -> None:
    if num_nodes < 0:
        raise ParameterError("num_nodes must be >= 0")
    if length < 0:
        raise ParameterError("walk length L must be >= 0")
    if num_replicates < 1:
        raise ParameterError("number of replicates R must be >= 1")


class InvertedIndex:
    """Paper-faithful ``I[1:R][1:n]`` built per Algorithm 3.

    ``lists[i][v]`` is the (insertion-ordered) list of :class:`IndexEntry`
    for replicate ``i`` and hit node ``v``.
    """

    def __init__(self, num_nodes: int, length: int, num_replicates: int):
        _validate_params(num_nodes, length, num_replicates)
        self.num_nodes = num_nodes
        self.length = length
        self.num_replicates = num_replicates
        self.lists: list[list[list[IndexEntry]]] = [
            [[] for _ in range(num_nodes)] for _ in range(num_replicates)
        ]

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        length: int,
        num_replicates: int,
        seed: "int | np.random.Generator | None" = None,
    ) -> "InvertedIndex":
        """Algorithm 3: run ``R`` walks per node and index first visits."""
        rng = resolve_rng(seed)
        index = cls(graph.num_nodes, length, num_replicates)
        for walker in range(graph.num_nodes):
            for i in range(num_replicates):
                walk = random_walk(graph, walker, length, seed=rng)
                index._insert_walk(i, walk)
        return index

    @classmethod
    def from_walks(
        cls,
        walks: "Sequence[Sequence[int]] | np.ndarray",
        num_nodes: int,
        num_replicates: int,
    ) -> "InvertedIndex":
        """Build from pre-generated walks in walker-major order.

        ``walks[w * R + i]`` must be replicate ``i`` of walker ``w``; every
        walk must start at its walker and have ``L + 1`` positions.
        """
        walks = [list(map(int, walk)) for walk in walks]
        if len(walks) != num_nodes * num_replicates:
            raise ParameterError(
                f"expected {num_nodes * num_replicates} walks, got {len(walks)}"
            )
        length = len(walks[0]) - 1 if walks else 0
        index = cls(num_nodes, length, num_replicates)
        for b, walk in enumerate(walks):
            if len(walk) != length + 1:
                raise ParameterError("all walks must have the same length")
            if walk[0] != b // num_replicates:
                raise ParameterError(
                    f"walk {b} starts at {walk[0]}, expected {b // num_replicates}"
                )
            index._insert_walk(b % num_replicates, walk)
        return index

    def _insert_walk(self, replicate: int, walk: Sequence[int]) -> None:
        """Index the first visits of one walk (Algorithm 3 lines 4-14)."""
        walker = walk[0]
        visited = {walker}
        for hop, node in enumerate(walk[1:], start=1):
            if node in visited:
                continue
            visited.add(node)
            self.lists[replicate][node].append(IndexEntry(walker=walker, hop=hop))

    # ------------------------------------------------------------------
    def entries(self, replicate: int, node: int) -> list[IndexEntry]:
        """Entries of ``I[replicate][node]``."""
        return self.lists[replicate][node]

    @property
    def total_entries(self) -> int:
        """Number of records across all replicates and nodes."""
        return sum(
            len(bucket) for replicate in self.lists for bucket in replicate
        )

    def to_flat(self) -> "FlatWalkIndex":
        """Convert to the array representation (same entries, assembled
        into the canonical ``(hit, state)`` order every builder emits)."""
        states: list[int] = []
        hops: list[int] = []
        hits: list[int] = []
        n = self.num_nodes
        for replicate in range(self.num_replicates):
            for node in range(n):
                for entry in self.lists[replicate][node]:
                    states.append(replicate * n + entry.walker)
                    hops.append(entry.hop)
                    hits.append(node)
        return FlatWalkIndex._from_records(
            np.asarray(hits, dtype=np.int64),
            np.asarray(states, dtype=np.int64),
            np.asarray(hops, dtype=np.int64),
            num_nodes=n,
            length=self.length,
            num_replicates=self.num_replicates,
        )


class FlatWalkIndex:
    """Array-backed inverted index grouped by hit node.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; entries whose hit node is ``v``
        occupy ``[indptr[v], indptr[v+1])`` in the flat arrays.
    state:
        Per-entry index ``replicate * n + walker`` into the flattened
        ``D[R, n]`` matrix of Algorithms 4-6 (``int32`` when it fits).
    hop:
        Per-entry first-visit hop (``int16``; hops are ``<= L``).

    The entry arrays live behind a *storage backend*
    (:mod:`repro.walks.storage`): ``state``/``hop`` are properties that
    materialize the backend's full arrays, so dense consumers are
    unchanged, while block-aware consumers (the coverage kernel's
    per-candidate path, :meth:`entries_for`) go through the backend's
    range decode and never materialize more than they touch.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        state: "np.ndarray | None" = None,
        hop: "np.ndarray | None" = None,
        num_nodes: int = 0,
        length: int = 0,
        num_replicates: int = 1,
        storage=None,
    ):
        _validate_params(num_nodes, length, num_replicates)
        if indptr.size != num_nodes + 1:
            raise ParameterError("indptr must have n + 1 entries")
        if storage is None:
            if state is None or hop is None:
                raise ParameterError(
                    "FlatWalkIndex needs either state/hop arrays or a storage"
                )
            storage = DenseStorage(indptr, state, hop)
        elif state is not None or hop is not None:
            raise ParameterError("pass state/hop arrays or storage, not both")
        if storage.num_entries != indptr[-1]:
            raise ParameterError("state/hop size must match indptr[-1]")
        if (
            isinstance(storage, DenseStorage)
            and storage._state.size != storage._hop.size
        ):
            raise ParameterError("state/hop size must match indptr[-1]")
        self.indptr = indptr
        self._storage = storage
        self.num_nodes = num_nodes
        self.length = length
        self.num_replicates = num_replicates

    # ------------------------------------------------------------------
    # Storage seam (DESIGN.md §13)
    @property
    def state(self) -> np.ndarray:
        """Full per-entry state array (decoded on demand off-dense)."""
        return self._storage.state_array()

    @property
    def hop(self) -> np.ndarray:
        """Full per-entry hop array (decoded on demand off-dense)."""
        return self._storage.hop_array()

    @property
    def storage(self):
        """The storage backend holding the entry arrays."""
        return self._storage

    @property
    def storage_format(self) -> str:
        """``"dense"``, ``"compressed"``, or ``"mmap"``."""
        return self._storage.format_name

    def storage_nbytes(self) -> int:
        """Bytes held (dense/compressed) or mapped (mmap) by the index."""
        return int(self.indptr.nbytes) + int(self._storage.nbytes)

    def compress(self) -> "FlatWalkIndex":
        """This index on :class:`~repro.walks.storage.CompressedStorage`.

        A no-op when already compressed; otherwise encodes the canonical
        entry arrays (strictly increasing states per hit-node block —
        every builder since the backends were unified) into the per-block
        delta codec.  Entries, selections, and every derived quantity are
        bit-identical to the dense index.
        """
        if isinstance(self._storage, CompressedStorage):
            return self
        return FlatWalkIndex(
            indptr=self.indptr,
            num_nodes=self.num_nodes,
            length=self.length,
            num_replicates=self.num_replicates,
            storage=CompressedStorage.from_arrays(
                self.indptr, self.state, self.hop
            ),
        )

    def densify(self) -> "FlatWalkIndex":
        """This index on in-RAM :class:`~repro.walks.storage.DenseStorage`.

        A no-op for dense storage; compressed and mmap indexes
        materialize their full entry arrays (mmap additionally copies, so
        the result is writable and independent of the archive file).
        """
        if type(self._storage) is DenseStorage:
            return self
        state = np.array(self.state, copy=True)
        hop = np.array(self.hop, copy=True)
        return FlatWalkIndex(
            indptr=np.array(self.indptr, copy=True),
            state=state,
            hop=hop,
            num_nodes=self.num_nodes,
            length=self.length,
            num_replicates=self.num_replicates,
        )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        length: int,
        num_replicates: int,
        seed: "int | np.random.Generator | None" = None,
        chunk_rows: int = 1 << 19,
        engine: "str | WalkEngine | None" = None,
        memory_budget: "int | None" = None,
        spill_dir: "str | Path | None" = None,
    ) -> "FlatWalkIndex":
        """Vectorized Algorithm 3.

        Delegates walk generation *and* record extraction to the walk
        backend (:meth:`~repro.walks.backends.WalkEngine.iter_walk_records`):
        walks are produced in chunks of ``chunk_rows`` rows and reduced to
        first-visit records before the next chunk starts, so peak memory
        is ``O(chunk_rows * L)`` plus the final entry arrays — and the
        multiproc backend extracts inside its worker processes, streaming
        only the records back.  Every registered backend builds a
        **byte-identical** index under the same ``(seed, chunk_rows)``;
        entries land in canonical ``(hit, state)`` order regardless of
        how the work was partitioned.

        The record stream feeds the external-sort pipeline of
        :mod:`repro.walks.build` (DESIGN.md §15).  By default
        (``memory_budget=None``) every record stays buffered and the sort
        is the historical single in-memory argsort; with a budget, sorted
        runs spill to ``spill_dir`` (default: the system temp dir) at 10
        bytes per record and are merged back — the result is identical
        either way, the budget only caps the sort's footprint.  (The
        *final* entry arrays are still materialized here; to cap the
        whole build, write an archive with
        :func:`repro.walks.build.build_index_archive` instead.)
        """
        rng = resolve_rng(seed)
        walk_engine = get_engine(engine)
        n = graph.num_nodes
        _validate_params(n, length, num_replicates)
        # Lazy: build.py imports this module at top level.
        from repro.walks.build import DenseEntryWriter, ExternalSortSink

        started = time.perf_counter()
        with obs.span(
            "index.build", engine=walk_engine.name, num_nodes=n,
            length=length, num_replicates=num_replicates,
        ):
            starts = walker_major_starts(n, num_replicates)
            row_ids = np.arange(starts.size, dtype=np.int64)
            states = (row_ids % num_replicates) * n + starts  # == rep * n + walker
            with ExternalSortSink(
                n, num_replicates, memory_budget=memory_budget,
                spill_dir=spill_dir,
            ) as sink:
                for chunk in walk_engine.iter_walk_records(
                    graph, starts, length, states, seed=rng,
                    chunk_rows=chunk_rows,
                ):
                    sink.consume(*chunk)
                indptr, state_arr, hop_arr = sink.finalize(
                    DenseEntryWriter(n, num_replicates)
                )
            index = cls(
                indptr=indptr, state=state_arr, hop=hop_arr, num_nodes=n,
                length=length, num_replicates=num_replicates,
            )
        if obs.enabled():
            obs.inc(
                "index_builds_total",
                help="Flat walk-index builds.",
                engine=walk_engine.name,
            )
            obs.inc(
                "index_entries_total",
                index.total_entries,
                help="Index entries produced by builds.",
            )
            obs.observe(
                "index_build_seconds",
                time.perf_counter() - started,
                help="Walk-index build wall time.",
                engine=walk_engine.name,
            )
        return index

    @classmethod
    def from_walks(
        cls,
        walks: "Sequence[Sequence[int]] | np.ndarray",
        num_nodes: int,
        num_replicates: int,
    ) -> "FlatWalkIndex":
        """Build from explicit walker-major walks (test/injection path)."""
        return InvertedIndex.from_walks(walks, num_nodes, num_replicates).to_flat()

    @classmethod
    def _from_records(
        cls,
        hits: np.ndarray,
        states: np.ndarray,
        hops: np.ndarray,
        num_nodes: int,
        length: int,
        num_replicates: int,
    ) -> "FlatWalkIndex":
        # Canonical (hit, state) order.  States are unique within a hit
        # node (first-visit dedup), so the key is a strict total order:
        # the assembled index is *independent of record generation
        # order* — for a fixed (seed, chunk_rows), every backend and
        # any shard partitioning land on byte-identical arrays, which
        # is what lets the differential harness compare engines
        # strictly.  (chunk_rows itself still matters: it shapes the
        # stream consumption and hence the walks.)  The key helper
        # forces int64 before multiplying: int32 record arrays would
        # otherwise wrap the product silently once n * R * hit crosses
        # 2^31 (NEP 50 keeps int32 * python_int at int32).
        num_states = num_nodes * num_replicates
        order = np.argsort(canonical_record_key(hits, states, num_states))
        counts = np.bincount(hits, minlength=num_nodes) if hits.size else np.zeros(
            num_nodes, dtype=np.int64
        )
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        state_dtype = entry_state_dtype(num_nodes, num_replicates)
        return cls(
            indptr=indptr,
            state=states[order].astype(state_dtype),
            hop=hops[order].astype(np.int16),
            num_nodes=num_nodes,
            length=length,
            num_replicates=num_replicates,
        )

    # ------------------------------------------------------------------
    @property
    def total_entries(self) -> int:
        """Number of records across all replicates and nodes."""
        return int(self.indptr[-1])

    def entries_for(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """``(state, hop)`` slices for entries whose hit node is ``node``.

        Routed through the storage backend: dense/mmap return array
        views, compressed decodes exactly this node's block.
        """
        if not 0 <= node < self.num_nodes:
            raise ParameterError(f"node {node} out of range")
        return self._storage.range_arrays(node, node + 1)

    def states_for(self, node: int) -> np.ndarray:
        """The ``state`` slice alone for one hit node.

        The f2 objective never reads hops, and on compressed storage the
        hop decode is real work per candidate — this is the cheap spelling
        for callers that only need the states.
        """
        if not 0 <= node < self.num_nodes:
            raise ParameterError(f"node {node} out of range")
        return self._storage.range_states(node, node + 1)

    def entry_records(self, node: int) -> list[tuple[int, int, int]]:
        """Readable ``(replicate, walker, hop)`` triples for one hit node,
        sorted — convenience for tests and debugging."""
        state, hop = self.entries_for(node)
        reps = state.astype(np.int64) // self.num_nodes
        walkers = state.astype(np.int64) % self.num_nodes
        return sorted(zip(reps.tolist(), walkers.tolist(), hop.tolist()))

    def same_entries(self, other: "FlatWalkIndex") -> bool:
        """Whether two indexes hold the same records, order-insensitively.

        Every current builder (static, dynamic, all walk backends) emits
        canonical ``(hit, state)`` order, so equal indexes are nowadays
        also array-equal; this order-insensitive comparison remains for
        archives written by older versions, whose entries kept insertion
        order.  No consumer depends on the order either way (every gain
        is a sum over a hit node's slice).
        """
        if (
            self.num_nodes != other.num_nodes
            or self.length != other.length
            or self.num_replicates != other.num_replicates
            or not np.array_equal(self.indptr, other.indptr)
        ):
            return False
        span = self.num_states  # hops fit far below this, keys cannot collide
        owners = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), np.diff(self.indptr)
        )

        def keys(index: "FlatWalkIndex") -> np.ndarray:
            raw = (
                owners * (span * (self.length + 1))
                + index.state.astype(np.int64) * (self.length + 1)
                + index.hop.astype(np.int64)
            )
            return np.sort(raw)

        return np.array_equal(keys(self), keys(other))

    def selection_metrics(self, targets) -> dict:
        """Sampled coverage and AHT of a target set, from the entries alone.

        Same quantities and conventions as
        :meth:`repro.dynamic.index.DynamicWalkIndex.selection_metrics`,
        which scans the materialized walk matrix — here computed from the
        inverted entries instead: a walk's first hit of the target *set*
        is the minimum of its first-visit hops over the targets (an
        earlier set hit would itself be a first visit of some target),
        with hop 0 on the targets' own walks.  ``coverage`` counts states
        whose walk hits the targets within ``L`` hops (hop 0 included —
        the F2 estimator's convention) and ``aht`` is the mean truncated
        first-hit hop (misses count ``L``, the F1 estimator's
        convention).  The two implementations agree exactly on the same
        underlying walks, which is what lets the serving layer
        (:mod:`repro.serve`) answer metrics queries from an index
        snapshot without the walks.
        """
        target_ids = np.asarray(
            sorted({int(v) for v in targets}), dtype=np.int64
        )
        if target_ids.size and (
            target_ids[0] < 0 or target_ids[-1] >= self.num_nodes
        ):
            raise ParameterError("targets out of range")
        total = self.num_states
        covered = np.zeros(total, dtype=bool)
        first = np.full(total, self.length, dtype=np.int64)
        for v in target_ids:
            state, hop = self.entries_for(int(v))
            state = state.astype(np.int64)
            covered[state] = True
            # States are unique within one hit node's slice (first-visit
            # dedup), so fancy assignment is race-free per target.
            first[state] = np.minimum(first[state], hop)
        if target_ids.size:
            self_states = (
                target_ids[None, :]
                + np.int64(self.num_nodes)
                * np.arange(self.num_replicates, dtype=np.int64)[:, None]
            ).ravel()
            covered[self_states] = True
            first[self_states] = 0
        num_covered = int(covered.sum())
        return {
            "coverage": num_covered,
            "coverage_fraction": num_covered / total if total else 0.0,
            "aht": float(first.mean()) if total else float("nan"),
            "num_states": total,
        }

    # ------------------------------------------------------------------
    # Packed exports — the substrate of the bit-packed coverage kernel
    # (:mod:`repro.core.coverage_kernel`, DESIGN.md §8).
    @property
    def num_states(self) -> int:
        """Number of ``(replicate, walker)`` states — cells of ``D``."""
        return self.num_nodes * self.num_replicates

    def packed_hit_rows(
        self,
        include_self: bool = True,
        max_bytes: "int | None" = None,
    ) -> np.ndarray:
        """Per-candidate first-hit state sets as packed ``uint64`` rows.

        Row ``v`` has bit ``s = replicate * n + walker`` set iff that
        walk first-visits ``v`` (an index entry) or — with
        ``include_self`` — iff ``walker == v`` (the hop-0 self hit that
        Algorithm 5 realizes by zeroing the candidate's ``D`` column).
        Shape ``(n, ceil(n R / 64))``; padding bits are zero, so
        ``popcount`` over rows is exact.

        ``max_bytes`` guards the dense allocation (``n^2 R / 8`` bytes
        plus padding); exceeding it raises :class:`ParameterError` with
        sizing guidance instead of attempting the allocation.

        An mmap-backed index whose archive stored the rows returns the
        archive's read-only map directly (``include_self=True`` is the
        stored convention) — no allocation, no cap: the rows stay on
        disk and page in as the kernel touches them.
        """
        n = self.num_nodes
        if (
            include_self
            and isinstance(self._storage, MmapStorage)
            and self._storage.rows is not None
        ):
            return self._storage.rows
        words = (self.num_states + 63) >> 6
        needed = n * words * 8
        if max_bytes is not None and needed > max_bytes:
            raise ParameterError(
                f"packed hit rows need {needed} bytes "
                f"({n} rows x {words} words) which exceeds the "
                f"max_bytes={max_bytes} cap; switch to compressed rows "
                "(rows_format='compressed' / compressed_hit_rows), use "
                "the 'entries' gain backend, or raise the cap"
            )
        rows = np.zeros((n, words), dtype=np.uint64)
        states = self.state.astype(np.int64)
        owners = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        if include_self:
            self_states = np.arange(self.num_states, dtype=np.int64)
            states = np.concatenate([states, self_states])
            owners = np.concatenate(
                [owners, np.tile(np.arange(n, dtype=np.int64),
                                 self.num_replicates)]
            )
        scatter_or_bits(rows, owners, states)
        return rows

    def packed_rows_for(
        self, lo_node: int, hi_node: int, include_self: bool = True
    ) -> np.ndarray:
        """Packed hit rows for candidates ``[lo_node, hi_node)`` only.

        Same bit layout as :meth:`packed_hit_rows` but built from just
        that node range's entries (one storage range-decode), so the
        coverage kernel can sweep gains over a compressed or mmap index
        chunk-by-chunk without ever materializing the full ``n x words``
        matrix.  Row ``v - lo_node`` corresponds to candidate ``v``.
        """
        if not 0 <= lo_node <= hi_node <= self.num_nodes:
            raise ParameterError(
                f"node range [{lo_node}, {hi_node}) out of bounds"
            )
        count = hi_node - lo_node
        words = (self.num_states + 63) >> 6
        rows = np.zeros((count, words), dtype=np.uint64)
        if count == 0:
            return rows
        state, _ = self._storage.range_arrays(lo_node, hi_node)
        states = state.astype(np.int64)
        owners = np.repeat(
            np.arange(count, dtype=np.int64),
            np.diff(self.indptr[lo_node : hi_node + 1]),
        )
        if include_self:
            node_ids = np.arange(lo_node, hi_node, dtype=np.int64)
            self_states = (
                node_ids[None, :]
                + np.int64(self.num_nodes)
                * np.arange(self.num_replicates, dtype=np.int64)[:, None]
            ).ravel()
            states = np.concatenate([states, self_states])
            owners = np.concatenate(
                [owners, np.tile(np.arange(count, dtype=np.int64),
                                 self.num_replicates)]
            )
        scatter_or_bits(rows, owners, states)
        return rows

    def compressed_hit_rows(
        self, include_self: bool = True
    ) -> CompressedRows:
        """The rows of :meth:`packed_hit_rows` as roaring containers.

        Bit-identical content (``CompressedRows.decode_rows(0, n)``
        equals the dense matrix), but stored as per-chunk containers
        (DESIGN.md §16) whose footprint scales with set bits, not with
        ``n^2 R`` — the escape hatch past the dense
        :data:`~repro.walks.rows.DEFAULT_ROW_CAP_BYTES` wall.  An
        mmap-backed index whose archive stored compressed rows returns
        the archive-backed instance directly (``include_self=True`` is
        the stored convention).
        """
        if (
            include_self
            and isinstance(self._storage, MmapStorage)
            and self._storage.compressed_rows is not None
        ):
            return self._storage.compressed_rows
        n = self.num_nodes
        states = self.state.astype(np.int64)
        owners = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        if include_self:
            self_states = np.arange(self.num_states, dtype=np.int64)
            states = np.concatenate([states, self_states])
            owners = np.concatenate(
                [owners, np.tile(np.arange(n, dtype=np.int64),
                                 self.num_replicates)]
            )
        order = np.argsort(owners * np.int64(max(self.num_states, 1)) + states)
        return CompressedRows.from_sorted_positions(
            owners[order], states[order], n, self.num_states
        )

    def dense_hop_matrix(
        self, max_bytes: "int | None" = 1 << 28
    ) -> np.ndarray:
        """Dense per-candidate first-visit hops for the Problem-1 masked
        min-reduction (:meth:`~repro.core.coverage_kernel.CoverageKernel.min_reduction_gains`).

        ``H[v, s]`` is the first-visit hop of state ``s`` at candidate
        ``v`` — ``0`` on ``v``'s own self states, the index entry hop
        elsewhere, and the sentinel ``L`` where the walk never visits
        ``v`` (``min(d, L) == d``, so the sentinel never relaxes ``D``).
        ``int16``, shape ``(n, n R)`` — ``2 n^2 R`` bytes, guarded by
        ``max_bytes`` (default 256 MiB).
        """
        n = self.num_nodes
        needed = 2 * n * self.num_states
        if max_bytes is not None and needed > max_bytes:
            raise ParameterError(
                f"dense hop matrix needs {needed} bytes which exceeds the "
                f"max_bytes={max_bytes} cap; it is an oracle for small "
                "instances — use the CSR entry arrays at scale"
            )
        matrix = np.full((n, self.num_states), self.length, dtype=np.int16)
        owners = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        matrix[owners, self.state.astype(np.int64)] = self.hop
        self_cols = np.arange(self.num_states, dtype=np.int64)
        matrix[self_cols % n, self_cols] = 0
        return matrix
