"""ASCII plots for experiment series — the figures half of the exhibits.

The paper's evaluation is mostly line charts (AHT/EHN vs k, runtime vs R,
scalability vs n).  This environment has no matplotlib, so this module
renders series as monospace scatter/line plots that read fine in a
terminal, in ``bench_output.txt``, and in EXPERIMENTS.md code blocks.

* :func:`ascii_plot` — multi-series y-vs-x character plot with axis labels
  and a legend (one marker character per series).
* :func:`ascii_bars` — labeled horizontal bar chart (the Fig. 4 runtime
  comparison shape).
* :func:`plot_table` — convenience wrapper that pulls ``(x, y)`` series
  out of an :class:`~repro.experiments.reporting.ExperimentTable` grouped
  by a key column (typically ``algorithm``), mirroring how the paper plots
  one curve per algorithm.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ParameterError
from repro.experiments.reporting import ExperimentTable, format_value

__all__ = ["ascii_plot", "ascii_bars", "plot_table"]

_MARKERS = "ox+*#@%&"


def _nice_number(value: float) -> str:
    return format_value(float(value))


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``{name: [(x, y), ...]}`` as a monospace plot.

    Each series gets a marker character; points landing on the same cell
    show the marker of the later series.  Axes are linearly scaled to the
    joint data range (degenerate ranges are padded so single points and
    horizontal lines still render).
    """
    if width < 16 or height < 4:
        raise ParameterError("plot needs width >= 16 and height >= 4")
    if not series:
        raise ParameterError("no series to plot")
    if len(series) > len(_MARKERS):
        raise ParameterError(f"at most {len(_MARKERS)} series supported")
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ParameterError("all series are empty")
    xs = [float(p[0]) for p in points]
    ys = [float(p[1]) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for marker, (name, pts) in zip(_MARKERS, series.items()):
        for x, y in pts:
            col = round((float(x) - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((float(y) - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker
    left_pad = max(len(_nice_number(y_hi)), len(_nice_number(y_lo)))
    lines: list[str] = []
    if title:
        lines.append(f"== {title} ==")
    for i, row in enumerate(grid):
        if i == 0:
            label = _nice_number(y_hi)
        elif i == height - 1:
            label = _nice_number(y_lo)
        else:
            label = ""
        lines.append(f"{label.rjust(left_pad)} |{''.join(row)}|")
    lines.append(f"{' ' * left_pad} +{'-' * width}+")
    x_left = _nice_number(x_lo)
    x_right = _nice_number(x_hi)
    gap = width - len(x_left) - len(x_right)
    lines.append(f"{' ' * left_pad}  {x_left}{' ' * max(gap, 1)}{x_right}")
    lines.append(f"{' ' * left_pad}  {x_label} -> ; {y_label} ^")
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series.keys())
    )
    lines.append(f"{' ' * left_pad}  legend: {legend}")
    return "\n".join(lines)


def ascii_bars(
    values: Mapping[str, float],
    width: int = 48,
    title: str = "",
    unit: str = "",
) -> str:
    """Render ``{label: value}`` as horizontal bars scaled to the maximum."""
    if not values:
        raise ParameterError("no bars to draw")
    if width < 8:
        raise ParameterError("bars need width >= 8")
    numeric = {name: float(v) for name, v in values.items()}
    if any(v < 0 for v in numeric.values()):
        raise ParameterError("bar values must be non-negative")
    peak = max(numeric.values())
    label_pad = max(len(name) for name in numeric)
    lines = [f"== {title} =="] if title else []
    for name, value in numeric.items():
        filled = round(value / peak * width) if peak > 0 else 0
        bar = "#" * filled
        suffix = f" {_nice_number(value)}{(' ' + unit) if unit else ''}"
        lines.append(f"{name.rjust(label_pad)} |{bar}{suffix}")
    return "\n".join(lines)


def plot_table(
    table: ExperimentTable,
    x: str,
    y: str,
    group_by: str = "algorithm",
    width: int = 64,
    height: int = 16,
) -> str:
    """Plot an :class:`ExperimentTable` as one curve per group value.

    ``x``, ``y`` and ``group_by`` name table columns; rows with non-numeric
    ``x``/``y`` raise.  Groups appear in first-occurrence order, capped at
    the available marker set.
    """
    for name in (x, y, group_by):
        if name not in table.columns:
            raise ParameterError(f"column {name!r} not in table")
    xi = table.columns.index(x)
    yi = table.columns.index(y)
    gi = table.columns.index(group_by)
    series: dict[str, list[tuple[float, float]]] = {}
    for row in table.rows:
        key = str(row[gi])
        try:
            point = (float(row[xi]), float(row[yi]))
        except (TypeError, ValueError) as exc:
            raise ParameterError(
                f"non-numeric point ({row[xi]!r}, {row[yi]!r}) in table"
            ) from exc
        series.setdefault(key, []).append(point)
    return ascii_plot(
        series,
        width=width,
        height=height,
        title=table.title,
        x_label=x,
        y_label=y,
    )
