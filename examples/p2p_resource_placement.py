"""Resource placement in a P2P network (paper Section 1.1).

Scenario: place replicas of a file on k peers so that random-walk searches
(the standard unstructured-P2P search strategy [5]) find a replica before
their TTL expires.  The search TTL is the walk length L; a search that
exhausts its TTL fails.

This example sizes the replica set with the paper's future-work coverage
problem — "how many replicas until 90% of searches succeed?" — then shows
the success-rate curve as a function of TTL.

Run:  python examples/p2p_resource_placement.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # An overlay network: 5,000 peers, average degree ~8.
    graph = repro.power_law_graph(5_000, 20_000, seed=7)
    print(f"P2P overlay: {graph.num_nodes} peers, {graph.num_edges} links")

    ttl = 8                  # search time-to-live (hops)
    target_success = 0.90    # fraction of peers whose search should succeed

    sizing = repro.min_targets_for_coverage(
        graph, target_success, ttl, num_replicates=200, seed=3
    )
    replicas = sizing.selected
    print(f"\nreplicas needed for {target_success:.0%} search success at "
          f"TTL={ttl}: {len(replicas)}")

    exact_success = repro.expected_hit_nodes(graph, replicas, ttl)
    print(f"exact expected success rate: "
          f"{exact_success / graph.num_nodes:.1%}")

    # How success degrades for impatient searches (smaller TTLs) — one DP
    # sweep per TTL via the horizons API.
    print(f"\n{'TTL':>4} {'success rate':>14} {'avg hops to hit':>17}")
    ttls = [2, 4, 6, 8]
    probability = repro.hit_probability_horizons(graph, replicas, ttls)
    hitting = repro.hitting_time_horizons(graph, replicas, ttls)
    for i, t in enumerate(ttls):
        rate = probability[i].mean()
        hops = hitting[i].sum() / (graph.num_nodes - len(replicas))
        print(f"{t:>4} {rate:>13.1%} {hops:>17.2f}")

    # Sanity: random placement of the same budget does worse.
    random_set = repro.random_baseline(graph, len(replicas), seed=9).selected
    random_success = repro.expected_hit_nodes(graph, random_set, ttl)
    print(f"\nsame budget placed randomly: "
          f"{random_success / graph.num_nodes:.1%} success "
          f"(greedy: {exact_success / graph.num_nodes:.1%})")


if __name__ == "__main__":
    main()
