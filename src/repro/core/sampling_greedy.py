"""Sampling-based greedy — Algorithm 1 with Algorithm 2 marginal gains.

The paper's intermediate algorithm (Section 3.1, "Approximate marginal gain
computation"): still a fresh Monte-Carlo estimate per candidate per round
(``O(k n^2 R L)`` walks overall), which is why the paper supersedes it with
the materialized-index Algorithm 6.  It is implemented here both for
completeness and because the engine ablation benchmarks quantify exactly how
much the sample-materialization idea buys.

Lazy evaluation is off by default: CELF's correctness argument needs the
evaluated gains to be consistent across rounds, which fresh noisy estimates
are not.  (It can be forced on; the paper itself notes the combination is
used in practice.)
"""

from __future__ import annotations

import numpy as np

from repro.graphs.adjacency import Graph
from repro.core.coverage_kernel import validate_gain_backend
from repro.core.greedy import greedy_select
from repro.walks.backends import WalkEngine, get_engine
from repro.core.objectives import SampledF1, SampledF2
from repro.core.result import SelectionResult

__all__ = ["sampling_greedy_f1", "sampling_greedy_f2"]


def sampling_greedy_f1(
    graph: Graph,
    k: int,
    length: int,
    num_replicates: int = 100,
    seed: "int | np.random.Generator | None" = None,
    lazy: bool = False,
    engine: "str | WalkEngine | None" = None,
    gain_backend: "str | None" = None,
) -> SelectionResult:
    """Greedy for Problem 1 with Eq. 9 estimated gains.

    ``engine`` picks the walk backend (:mod:`repro.walks.backends`) the
    Algorithm 2 estimator samples with; ``gain_backend`` picks the
    estimator aggregation (``"bitset"`` packs the hit flags and popcounts,
    see :mod:`repro.core.coverage_kernel` — same walks, same estimates).
    """
    gain_backend = validate_gain_backend(gain_backend)
    walk_engine = get_engine(engine)
    objective = SampledF1(
        graph, length, num_replicates, seed=seed, engine=walk_engine,
        gain_backend=gain_backend,
    )
    result = greedy_select(objective, k, lazy=lazy, algorithm_name="SamplingF1")
    result.params.update(
        {"L": length, "R": num_replicates, "method": "sampling",
         "objective": "f1", "walk_engine": walk_engine.name,
         "gain_backend": gain_backend}
    )
    return result


def sampling_greedy_f2(
    graph: Graph,
    k: int,
    length: int,
    num_replicates: int = 100,
    seed: "int | np.random.Generator | None" = None,
    lazy: bool = False,
    engine: "str | WalkEngine | None" = None,
    gain_backend: "str | None" = None,
) -> SelectionResult:
    """Greedy for Problem 2 with Eq. 10 estimated gains.

    ``engine`` picks the walk backend (:mod:`repro.walks.backends`) the
    Algorithm 2 estimator samples with; ``gain_backend`` picks the
    estimator aggregation (``"bitset"`` packs the hit flags and popcounts,
    see :mod:`repro.core.coverage_kernel` — same walks, same estimates).
    """
    gain_backend = validate_gain_backend(gain_backend)
    walk_engine = get_engine(engine)
    objective = SampledF2(
        graph, length, num_replicates, seed=seed, engine=walk_engine,
        gain_backend=gain_backend,
    )
    result = greedy_select(objective, k, lazy=lazy, algorithm_name="SamplingF2")
    result.params.update(
        {"L": length, "R": num_replicates, "method": "sampling",
         "objective": "f2", "walk_engine": walk_engine.name,
         "gain_backend": gain_backend}
    )
    return result
