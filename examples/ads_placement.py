"""Ads placement in an advertisement network (paper Section 1.1).

Scenario: an advertiser pays k users to host an ad; other users find it by
browsing.  The advertiser cares about *both* objectives at once — reach as
many users as possible *and* be found quickly — so this example uses the
paper's future-work combined objective ``w1 F1 + w2 F2`` and sweeps the
trade-off, showing the frontier between discovery speed and audience.

Run:  python examples/ads_placement.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # An Epinions-like trust network at 10% scale.
    graph = repro.load_dataset("Epinions", scale=0.10)
    print(f"ad network: {graph.num_nodes} users, {graph.num_edges} edges")

    budget = 40
    horizon = 6

    # One shared walk index across the whole trade-off sweep.
    index = repro.FlatWalkIndex.build(graph, horizon, 100, seed=11)

    print(f"\ntrade-off sweep (k={budget}, L={horizon}):")
    print(f"{'lambda':>7} {'avg hops to ad':>15} {'expected audience':>18}")
    for trade_off in (0.0, 0.25, 0.5, 0.75, 1.0):
        w1, w2 = repro.balanced_weights(trade_off, horizon)
        result = repro.approx_combined(
            graph, budget, horizon, w1, w2, index=index
        )
        aht = repro.average_hitting_time(graph, result.selected, horizon)
        ehn = repro.expected_hit_nodes(graph, result.selected, horizon)
        print(f"{trade_off:>7.2f} {aht:>15.3f} {ehn:>18.1f}")

    degree = repro.degree_baseline(graph, budget)
    aht = repro.average_hitting_time(graph, degree.selected, horizon)
    ehn = repro.expected_hit_nodes(graph, degree.selected, horizon)
    print(f"{'Degree':>7} {aht:>15.3f} {ehn:>18.1f}")

    print("\nlambda=1 weighs discovery speed (F1); lambda=0 weighs audience "
          "(F2).")
    print("on heavy-tailed networks the two objectives largely agree (the "
          "paper's Figs. 6-7\nshow the same small ApproxF1/ApproxF2 gap); "
          "the sweep costs almost nothing because\none walk index serves "
          "every weighting — that is the practical takeaway.")


if __name__ == "__main__":
    main()
