"""Analysis subpackage: submodularity audits and absorbing-chain theory."""

import numpy as np
import pytest

from repro.analysis import (
    absorbing_hitting_time,
    approximation_ratio,
    audit_set_function,
    stationary_distribution,
    truncation_gap,
)
from repro.core.exact_optimal import optimal_value
from repro.core.dp_greedy import dpf2
from repro.core.objectives import F1Objective, F2Objective
from repro.errors import ParameterError
from repro.graphs.builder import GraphBuilder
from repro.graphs.generators import (
    complete_graph,
    paper_example_graph,
    path_graph,
    power_law_graph,
    ring_graph,
    star_graph,
)


class BrokenObjective:
    """A non-submodular, non-monotone set function for negative tests."""

    def __init__(self, num_nodes: int = 6):
        self._n = num_nodes

    @property
    def num_nodes(self) -> int:
        return self._n

    def value(self, targets) -> float:
        size = len(set(targets))
        return float(size * size)  # convex: violates submodularity

    def marginal_gain(self, targets, candidate) -> float:
        return self.value(set(targets) | {candidate}) - self.value(targets)


class ShrinkingObjective(BrokenObjective):
    """Decreasing set function: violates monotonicity."""

    def value(self, targets) -> float:
        return -float(len(set(targets)))


class TestAuditSetFunction:
    def test_f1_audits_clean(self):
        graph = power_law_graph(20, 60, seed=1)
        audit = audit_set_function(F1Objective(graph, 4), trials=40, seed=2)
        assert audit.ok
        assert audit.empty_value == 0.0

    def test_f2_audits_clean(self):
        graph = paper_example_graph()
        audit = audit_set_function(F2Objective(graph, 4), trials=40, seed=3)
        assert audit.ok

    def test_convex_function_flagged(self):
        audit = audit_set_function(BrokenObjective(), trials=60, seed=4)
        assert audit.submodularity_violations
        assert not audit.ok

    def test_decreasing_function_flagged(self):
        audit = audit_set_function(ShrinkingObjective(), trials=60, seed=5)
        assert audit.monotonicity_violations
        assert not audit.ok

    def test_rejects_bad_params(self):
        graph = ring_graph(6)
        objective = F1Objective(graph, 3)
        with pytest.raises(ParameterError):
            audit_set_function(objective, trials=0)
        with pytest.raises(ParameterError):
            audit_set_function(objective, max_set_size=0)

    def test_rejects_tiny_ground_set(self):
        graph = path_graph(2)
        with pytest.raises(ParameterError):
            audit_set_function(F1Objective(graph, 2))

    def test_deterministic_under_seed(self):
        graph = power_law_graph(15, 40, seed=6)
        objective = F2Objective(graph, 3)
        a = audit_set_function(objective, trials=20, seed=7)
        b = audit_set_function(objective, trials=20, seed=7)
        assert a.ok == b.ok
        assert a.empty_value == b.empty_value


class TestApproximationRatio:
    def test_ratio_of_greedy(self):
        graph = paper_example_graph()
        objective = F2Objective(graph, 3)
        greedy = dpf2(graph, 2, 3)
        opt = optimal_value(objective, 2)
        ratio = approximation_ratio(objective, greedy.selected, opt)
        assert 1 - 1 / np.e <= ratio <= 1.0 + 1e-9

    def test_zero_over_zero(self):
        graph = ring_graph(5)
        objective = F2Objective(graph, 0)  # L=0: only S itself is hit
        assert approximation_ratio(objective, (), 0.0) == 1.0


class TestStationaryDistribution:
    def test_sums_to_one(self):
        graph = power_law_graph(30, 90, seed=8)
        pi = stationary_distribution(graph)
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()

    def test_proportional_to_degree(self):
        graph = star_graph(4)  # center degree 4, leaves degree 1
        pi = stationary_distribution(graph)
        assert pi[0] == pytest.approx(4 / 8)
        assert pi[1] == pytest.approx(1 / 8)

    def test_regular_graph_uniform(self):
        graph = ring_graph(10)
        pi = stationary_distribution(graph)
        np.testing.assert_allclose(pi, 0.1)

    def test_dangling_nodes_get_zero(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1)
        builder.touch_node(2)
        pi = stationary_distribution(builder.build())
        assert pi[2] == 0.0

    def test_edgeless_graph_rejected(self):
        builder = GraphBuilder()
        builder.touch_node(3)
        with pytest.raises(ParameterError):
            stationary_distribution(builder.build())

    def test_invariance_under_transition(self):
        """pi P = pi on a graph with no dangling nodes."""
        from repro.hitting.transition import transition_matrix

        graph = power_law_graph(25, 80, seed=9)
        pi = stationary_distribution(graph)
        after = pi @ transition_matrix(graph)
        np.testing.assert_allclose(np.asarray(after).ravel(), pi, atol=1e-12)


class TestAbsorbingHittingTime:
    def test_path_graph_closed_form(self):
        """On path 0-1-2 with target {0}: h_1 = 3, h_2 = 4.

        Standard birth-death chain: from the far end of a 2-edge path the
        walk takes on average 4 steps to reach the head.
        """
        graph = path_graph(3)
        h = absorbing_hitting_time(graph, [0])
        assert h[0] == 0.0
        assert h[1] == pytest.approx(3.0)
        assert h[2] == pytest.approx(4.0)

    def test_complete_graph_closed_form(self):
        """On K_n with one target, h = n - 1 for every non-target node."""
        n = 8
        graph = complete_graph(n)
        h = absorbing_hitting_time(graph, [0])
        np.testing.assert_allclose(h[1:], n - 1)

    def test_unreachable_nodes_are_infinite(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1)
        builder.add_edge(2, 3)
        h = absorbing_hitting_time(builder.build(), [0])
        assert h[1] == pytest.approx(1.0)
        assert np.isinf(h[2]) and np.isinf(h[3])

    def test_empty_targets_rejected(self):
        with pytest.raises(ParameterError):
            absorbing_hitting_time(ring_graph(5), ())

    def test_matches_truncated_limit(self):
        """h^L_uS -> h_uS as L grows (connected graph)."""
        from repro.hitting.exact import hitting_time_vector

        graph = power_law_graph(20, 60, seed=10)
        targets = [0, 3]
        exact = absorbing_hitting_time(graph, targets)
        truncated = hitting_time_vector(graph, targets, 400)
        np.testing.assert_allclose(truncated, exact, atol=1e-6)


class TestTruncationGap:
    def test_nonnegative_and_decreasing_in_length(self):
        graph = power_law_graph(25, 75, seed=11)
        targets = [1, 4]
        gap_short = truncation_gap(graph, targets, 2)
        gap_long = truncation_gap(graph, targets, 12)
        assert (gap_short >= -1e-9).all()
        assert (gap_long <= gap_short + 1e-9).all()

    def test_zero_on_targets(self):
        graph = ring_graph(8)
        gap = truncation_gap(graph, [0], 5)
        assert gap[0] == 0.0

    def test_infinite_for_unreachable(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1)
        builder.touch_node(2)
        gap = truncation_gap(builder.build(), [0], 4)
        assert np.isinf(gap[2])

    def test_rejects_negative_length(self):
        with pytest.raises(ParameterError):
            truncation_gap(ring_graph(5), [0], -1)


class TestRecommendLength:
    def test_complete_graph_small_l(self):
        """K_n mixes in one step: a short horizon already suffices."""
        from repro.analysis import recommend_length

        graph = complete_graph(10)
        length = recommend_length(graph, [0], tolerance=0.05)
        assert 1 <= length <= 64

    def test_path_needs_longer_horizon_than_star(self):
        from repro.analysis import recommend_length

        path_l = recommend_length(path_graph(12), [0], tolerance=0.1)
        star_l = recommend_length(star_graph(11), [0], tolerance=0.1)
        assert path_l > star_l

    def test_meets_tolerance_by_definition(self):
        from repro.analysis import recommend_length, truncation_gap
        from repro.analysis.stationary import absorbing_hitting_time
        import numpy as np

        graph = power_law_graph(30, 90, seed=21)
        targets = [0, 4]
        tol = 0.08
        length = recommend_length(graph, targets, tolerance=tol)
        unbounded = absorbing_hitting_time(graph, targets)
        from repro.hitting.transition import target_mask

        mask = target_mask(graph.num_nodes, targets)
        relevant = np.isfinite(unbounded) & ~mask
        gap = truncation_gap(graph, targets, length)
        assert gap[relevant].mean() <= tol * unbounded[relevant].mean() + 1e-9
        # And length is minimal: one step shorter misses the tolerance.
        if length > 1:
            shorter = truncation_gap(graph, targets, length - 1)
            assert (
                shorter[relevant].mean()
                > tol * unbounded[relevant].mean() - 1e-9
            )

    def test_unreachable_only_sources(self):
        from repro.analysis import recommend_length
        from repro.graphs.builder import GraphBuilder

        builder = GraphBuilder()
        builder.add_edge(0, 1)
        builder.touch_node(2)
        # Node 2 can never reach {0, 1}; nodes 0,1 are the targets.
        assert recommend_length(builder.build(), [0, 1], tolerance=0.1) == 0

    def test_rejects_bad_tolerance(self):
        from repro.analysis import recommend_length

        with pytest.raises(ParameterError):
            recommend_length(ring_graph(5), [0], tolerance=0.0)
        with pytest.raises(ParameterError):
            recommend_length(ring_graph(5), [0], tolerance=1.0)

    def test_max_length_exceeded(self):
        from repro.analysis import recommend_length

        with pytest.raises(ParameterError):
            recommend_length(path_graph(40), [0], tolerance=0.001,
                             max_length=4)
