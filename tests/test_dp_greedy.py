"""Tests for the DP-based greedy (DPF1 / DPF2)."""

import itertools

import pytest

from repro.graphs.generators import paper_example_graph, star_graph, two_cluster_graph
from repro.core.dp_greedy import dpf1, dpf2
from repro.core.objectives import F1Objective, F2Objective


class TestQuality:
    @pytest.mark.parametrize(
        "runner,objective_cls", [(dpf1, F1Objective), (dpf2, F2Objective)]
    )
    def test_greedy_guarantee_on_small_graph(self, runner, objective_cls):
        # Exhaustive optimum on the 8-node paper graph, k=2: greedy must be
        # within 1-1/e (it is usually optimal here).
        g = paper_example_graph()
        length, k = 3, 2
        objective = objective_cls(g, length)
        best = max(
            objective.value(set(c)) for c in itertools.combinations(range(8), k)
        )
        result = runner(g, k, length)
        achieved = objective.value(set(result.selected))
        assert achieved >= (1 - 1 / 2.718281828) * best - 1e-9

    def test_star_center_first(self):
        result = dpf2(star_graph(6), 1, 2)
        assert result.selected == (0,)

    def test_two_clusters_covered(self):
        # With k=2 greedy should put one target in each cluster.
        g = two_cluster_graph(6, bridge_edges=1, seed=3)
        result = dpf2(g, 2, 3)
        sides = {v // 6 for v in result.selected}
        assert sides == {0, 1}

    def test_gains_non_increasing(self, small_power_law):
        result = dpf1(small_power_law, 6, 4)
        gains = list(result.gains)
        assert all(a >= b - 1e-9 for a, b in zip(gains, gains[1:]))

    def test_prefix_property(self, small_power_law):
        # A k=3 run is a prefix of a k=6 run (deterministic objective).
        small = dpf1(small_power_law, 3, 4)
        large = dpf1(small_power_law, 6, 4)
        assert large.selected[:3] == small.selected


class TestLazyEquivalence:
    @pytest.mark.parametrize("runner", [dpf1, dpf2])
    def test_lazy_matches_full(self, runner, small_power_law):
        lazy = runner(small_power_law, 5, 4, lazy=True)
        full = runner(small_power_law, 5, 4, lazy=False)
        assert lazy.selected == full.selected

    def test_lazy_fewer_evaluations(self, small_power_law):
        lazy = dpf1(small_power_law, 5, 4, lazy=True)
        full = dpf1(small_power_law, 5, 4, lazy=False)
        assert lazy.num_gain_evaluations < full.num_gain_evaluations


class TestMetadata:
    def test_params_recorded(self, small_power_law):
        result = dpf1(small_power_law, 2, 5)
        assert result.params["L"] == 5
        assert result.params["objective"] == "f1"
        assert result.algorithm == "DPF1"

    def test_dpf2_name(self, small_power_law):
        assert dpf2(small_power_law, 1, 2).algorithm == "DPF2"

    def test_k_zero(self, small_power_law):
        assert dpf1(small_power_law, 0, 3).selected == ()
