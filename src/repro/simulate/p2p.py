"""P2P resource-search simulation — the paper's third scenario.

Unstructured P2P systems commonly search by random walk with a TTL
(time-to-live) budget [5]; a popular refinement sends several walkers in
parallel and succeeds when any of them finds the resource.  This module
simulates that protocol against a resource placement:

* each *query* originates at a peer and launches ``walkers_per_query``
  independent TTL-bounded walks;
* a query succeeds when any walker reaches a peer hosting the resource
  (hop 0 counts: the querying peer may host it already);
* the *message cost* of a query is the number of hops its walkers take,
  with each walker stopping as soon as it finds the resource (walkers do
  not coordinate — they stop on their own discovery only, the standard
  "walker checks locally" model).

A good placement (the random-walk domination solvers) raises the success
rate and lowers both latency and message cost, which is exactly the
"accelerating resource search" claim of Section 1.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.weighted import WeightedDiGraph
from repro.hitting.transition import target_mask
from repro.simulate._walks import run_first_hits
from repro.walks.backends import WalkEngine
from repro.walks.rng import resolve_rng

__all__ = [
    "P2PSearchReport",
    "simulate_p2p_search",
    "P2PChurnPhase",
    "P2PChurnReport",
    "simulate_p2p_churn",
]


def _query_stats(
    first: np.ndarray, num_queries: int, walkers_per_query: int, ttl: int
) -> tuple[int, float, int]:
    """``(num_successes, mean_hops_to_hit, total_messages)`` of a batch.

    The per-query accounting shared by the static search and the churn
    simulation (one call per phase there), so the two reports can never
    drift onto different success/latency/message conventions: a query
    succeeds when any of its walkers hits within the TTL, its latency is
    the minimum walker first-hit hop, and each walker sends one message
    per hop until its own hit or the TTL (hop 0 costs nothing).
    """
    per_query = first.reshape(num_queries, walkers_per_query)
    hit_hops = np.where(per_query >= 0, per_query, ttl + 1)
    best = hit_hops.min(axis=1)
    success = best <= ttl
    num_successes = int(success.sum())
    walker_cost = np.where(first >= 0, first, ttl)
    total_messages = int(walker_cost.sum())
    mean_hops = float(best[success].mean()) if num_successes else float("nan")
    return num_successes, mean_hops, total_messages


@dataclass(frozen=True)
class P2PSearchReport:
    """Outcome of a P2P search simulation.

    Attributes
    ----------
    num_queries:
        Queries simulated.
    num_successes:
        Queries where at least one walker found the resource in time.
    success_rate:
        ``num_successes / num_queries``.
    mean_hops_to_hit:
        Average latency (first-success hop, minimum across a query's
        walkers) among successful queries; ``nan`` if none succeeded.
    total_messages:
        Total hops taken by all walkers of all queries (walkers stop on
        their own discovery, otherwise walk out their TTL).
    mean_messages_per_query:
        ``total_messages / num_queries``.
    ttl:
        Hop budget per walker.
    walkers_per_query:
        Parallel walkers launched per query.
    num_hosts:
        Peers hosting the resource.
    """

    num_queries: int
    num_successes: int
    success_rate: float
    mean_hops_to_hit: float
    total_messages: int
    mean_messages_per_query: float
    ttl: int
    walkers_per_query: int
    num_hosts: int


def simulate_p2p_search(
    graph: "Graph | WeightedDiGraph",
    hosts: Collection[int],
    num_queries: int = 10_000,
    ttl: int = 6,
    walkers_per_query: int = 1,
    origins: "np.ndarray | None" = None,
    seed: "int | np.random.Generator | None" = None,
    engine: "str | WalkEngine | None" = None,
) -> P2PSearchReport:
    """Simulate TTL-bounded random-walk search against a placement.

    Parameters
    ----------
    graph:
        The P2P overlay (undirected, or a :class:`WeightedDiGraph` whose
        arc weights bias the forwarding choice).
    hosts:
        Peers storing a replica of the resource.
    num_queries:
        Number of independent queries (ignored when ``origins`` is given).
    ttl:
        Hop budget per walker (the paper's ``L``).
    walkers_per_query:
        Independent walkers launched by each query.
    origins:
        Optional explicit query origins (array of node ids); defaults to
        uniformly random peers.
    seed:
        Randomness control, package-wide convention.
    """
    if ttl < 0:
        raise ParameterError("ttl must be >= 0")
    if walkers_per_query < 1:
        raise ParameterError("walkers_per_query must be >= 1")
    mask = target_mask(graph.num_nodes, hosts)
    rng = resolve_rng(seed)
    if origins is None:
        if num_queries < 1:
            raise ParameterError("num_queries must be >= 1")
        origins = rng.integers(0, graph.num_nodes, size=num_queries)
    else:
        origins = np.asarray(origins, dtype=np.int64)
        if origins.size == 0:
            raise ParameterError("origins must be non-empty")
        if origins.min() < 0 or origins.max() >= graph.num_nodes:
            raise ParameterError("origins out of range")
    queries = origins.size
    starts = np.repeat(origins, walkers_per_query)
    first = run_first_hits(graph, starts, ttl, mask, rng, engine=engine)  # -1 on miss
    num_successes, mean_hops, total_messages = _query_stats(
        first, queries, walkers_per_query, ttl
    )
    return P2PSearchReport(
        num_queries=int(queries),
        num_successes=num_successes,
        success_rate=num_successes / queries,
        mean_hops_to_hit=mean_hops,
        total_messages=total_messages,
        mean_messages_per_query=total_messages / queries,
        ttl=ttl,
        walkers_per_query=walkers_per_query,
        num_hosts=int(mask.sum()),
    )


# ----------------------------------------------------------------------
# Churn: peers leave and rejoin mid-simulation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class P2PChurnPhase:
    """Per-phase outcome of a churn simulation (one row per ``step``).

    A departed peer is isolated (all its overlay links are gone), cannot
    originate queries, and — if it hosted the resource — cannot serve it.
    """

    phase: int
    num_present: int
    num_active_hosts: int
    num_queries: int
    success_rate: float
    mean_hops_to_hit: float
    mean_messages_per_query: float


@dataclass(frozen=True)
class P2PChurnReport:
    """Outcome of :func:`simulate_p2p_churn` across all phases."""

    phases: tuple[P2PChurnPhase, ...]
    overall_success_rate: float
    ttl: int
    walkers_per_query: int
    num_hosts: int


def simulate_p2p_churn(
    graph: Graph,
    hosts: Collection[int],
    events,
    num_queries: int = 1_000,
    ttl: int = 6,
    walkers_per_query: int = 1,
    seed: "int | np.random.Generator | None" = None,
    engine: "str | WalkEngine | None" = None,
) -> P2PChurnReport:
    """TTL-bounded search while peers leave and rejoin the overlay.

    ``events`` is a sequence of *phases*; each phase is a batch of
    membership/edge changes applied through a
    :class:`~repro.dynamic.graph.DynamicGraph` before ``num_queries``
    queries run on the resulting snapshot.  Accepted forms: parsed trace
    batches (lists of :class:`~repro.dynamic.churn.TraceOp`) or raw trace
    text in the ``leave``/``rejoin``/``add``/``del``/``step`` format of
    :func:`~repro.dynamic.churn.parse_trace`.

    Membership semantics: a leaving peer loses all current overlay links
    but keeps its id (indexes keep their shape); a rejoining peer
    re-links to its *original* neighbors that are currently present.
    Query origins are sampled among present peers only, and a departed
    host does not serve the resource.
    """
    from repro.dynamic.churn import TraceOp, expand_membership, parse_trace
    from repro.dynamic.graph import DynamicGraph

    if isinstance(graph, WeightedDiGraph):
        raise ParameterError(
            "churn simulation runs on the undirected overlay Graph"
        )
    if ttl < 0:
        raise ParameterError("ttl must be >= 0")
    if walkers_per_query < 1:
        raise ParameterError("walkers_per_query must be >= 1")
    if num_queries < 1:
        raise ParameterError("num_queries must be >= 1")
    if isinstance(events, str):
        events = parse_trace(events)
    host_mask = target_mask(graph.num_nodes, hosts)
    rng = resolve_rng(seed)
    dgraph = DynamicGraph(graph)
    present = np.ones(graph.num_nodes, dtype=bool)
    phases: list[P2PChurnPhase] = []
    total_queries = 0
    total_successes = 0
    for phase_no, ops in enumerate(events):
        ops = list(ops)
        if not all(isinstance(op, TraceOp) for op in ops):
            raise ParameterError(
                "events must be batches of TraceOp (or raw trace text)"
            )
        inserts, deletes = expand_membership(ops, dgraph, graph, present)
        if inserts or deletes:
            dgraph.apply_batch(inserts, deletes)
        snapshot = dgraph.graph
        present_ids = np.flatnonzero(present)
        if present_ids.size == 0:
            raise ParameterError(
                f"phase {phase_no}: every peer has left the overlay"
            )
        active_mask = host_mask & present
        origins = rng.choice(present_ids, size=num_queries, replace=True)
        starts = np.repeat(origins, walkers_per_query)
        first = run_first_hits(
            snapshot, starts, ttl, active_mask, rng, engine=engine
        )
        num_successes, mean_hops, total_messages = _query_stats(
            first, num_queries, walkers_per_query, ttl
        )
        phases.append(
            P2PChurnPhase(
                phase=phase_no,
                num_present=int(present_ids.size),
                num_active_hosts=int(active_mask.sum()),
                num_queries=num_queries,
                success_rate=num_successes / num_queries,
                mean_hops_to_hit=mean_hops,
                mean_messages_per_query=total_messages / num_queries,
            )
        )
        total_queries += num_queries
        total_successes += num_successes
    return P2PChurnReport(
        phases=tuple(phases),
        overall_success_rate=(
            total_successes / total_queries if total_queries else float("nan")
        ),
        ttl=ttl,
        walkers_per_query=walkers_per_query,
        num_hosts=int(host_mask.sum()),
    )
