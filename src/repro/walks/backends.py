"""Pluggable walk-engine backends (DESIGN.md §3).

Every consumer of batched random walks — the solvers, the Monte-Carlo
estimators, the application simulators, the CLI — goes through the
:class:`WalkEngine` interface defined here instead of calling a particular
kernel directly.  Engines are looked up by name in a process-wide registry,
so alternative execution strategies (GPU, distributed, cached) can be
slotted in by registering a new backend without touching any solver.

Three backends ship with the package:

``"numpy"``
    The original gather-loop kernels, :func:`repro.walks.engine.batch_walks`
    and :func:`repro.walks.alias.weighted_batch_walks`, unchanged.  This is
    the default and the reference implementation.
``"csr"``
    A tighter CSR formulation: the adjacency is augmented once per graph
    (dangling nodes get a self-loop, realizing the DESIGN.md §5 convention
    without per-hop masking), and each hop is three allocation-free
    ``np.take`` gathers into preallocated scratch buffers — no boolean
    indexing, no copies, no bounds-check passes.  Weighted graphs reuse a
    cached :class:`~repro.walks.alias.AliasSampler` (alias tables are
    built once per graph, not once per call).  Walks are **bit-identical**
    to the ``"numpy"`` backend under the same seed — both consume the
    PCG64 stream one batch of uniforms per hop in the same order — so the
    two backends are interchangeable mid-experiment.
``"sharded"``
    Splits a replicate batch into a fixed number of shards, derives one
    child :class:`~numpy.random.SeedSequence` stream per shard, and runs
    the shards on a ``concurrent.futures`` thread pool.  Results depend
    only on ``(seed, num_shards)`` — never on worker count or scheduling —
    so sharded runs are reproducible across machines.

Resolution rules (:func:`get_engine`): ``None`` means the package default
(``"numpy"``), a string is looked up in the registry, and a ready
:class:`WalkEngine` instance passes through unchanged, so every API that
takes ``engine=`` accepts all three forms.
"""

from __future__ import annotations

import concurrent.futures
import threading
from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.weighted import WeightedDiGraph
from repro.walks.alias import AliasSampler, weighted_batch_walks
from repro.walks.engine import batch_first_hits, batch_walks
from repro.walks.rng import resolve_rng, spawn_children

__all__ = [
    "WalkEngine",
    "NumpyWalkEngine",
    "CSRWalkEngine",
    "ShardedWalkEngine",
    "DEFAULT_ENGINE",
    "available_engines",
    "get_engine",
    "register_engine",
]

DEFAULT_ENGINE = "numpy"


def _check_walk_args(
    num_nodes: int, starts: np.ndarray, length: int
) -> np.ndarray:
    """Shared argument validation, matching :mod:`repro.walks.engine`."""
    if length < 0:
        raise ParameterError("walk length L must be >= 0")
    starts = np.asarray(starts, dtype=np.int64)
    if starts.size and (starts.min() < 0 or starts.max() >= num_nodes):
        raise ParameterError("start nodes out of range")
    return starts


class WalkEngine(ABC):
    """Backend interface: batched walks and first-hit detection.

    Concrete engines implement the two walk generators; the remaining
    methods have default implementations in terms of them, so a minimal
    backend is two methods.  All engines honor the package seed convention
    (:func:`repro.walks.rng.resolve_rng`) and the dangling-node convention
    (DESIGN.md §5: a walker on a degree-0 node stays put).
    """

    #: Registry name; set by subclasses.
    name: str = "abstract"

    @abstractmethod
    def batch_walks(
        self,
        graph: Graph,
        starts: "Sequence[int] | np.ndarray",
        length: int,
        seed: "int | np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Unweighted L-length walks for a batch of starts, ``(B, L+1)``."""

    @abstractmethod
    def weighted_batch_walks(
        self,
        graph: WeightedDiGraph,
        starts: "Sequence[int] | np.ndarray",
        length: int,
        seed: "int | np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Weight-proportional walks on a directed graph, ``(B, L+1)``."""

    # ------------------------------------------------------------------
    def run_walks(
        self,
        graph: "Graph | WeightedDiGraph",
        starts: "Sequence[int] | np.ndarray",
        length: int,
        seed: "int | np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Dispatch on the graph flavor (the simulators' entry point)."""
        if isinstance(graph, WeightedDiGraph):
            return self.weighted_batch_walks(graph, starts, length, seed=seed)
        return self.batch_walks(graph, starts, length, seed=seed)

    def batch_first_hits(
        self, walks: np.ndarray, target_mask: np.ndarray
    ) -> np.ndarray:
        """First-hit hop per walk row (``-1`` on miss)."""
        return batch_first_hits(walks, target_mask)

    def walk_first_hits(
        self,
        graph: "Graph | WeightedDiGraph",
        starts: "Sequence[int] | np.ndarray",
        length: int,
        target_mask: np.ndarray,
        seed: "int | np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Generate walks and return only their first-hit hops.

        Backends may fuse the two passes (the CSR engine never materializes
        the walk matrix); the default composes :meth:`run_walks` with
        :meth:`batch_first_hits`.  Results are identical either way.
        """
        walks = self.run_walks(graph, starts, length, seed=seed)
        return self.batch_first_hits(walks, target_mask)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class NumpyWalkEngine(WalkEngine):
    """The original per-hop gather loop — default, reference backend."""

    name = "numpy"

    def batch_walks(self, graph, starts, length, seed=None):
        return batch_walks(graph, starts, length, seed=seed)

    def weighted_batch_walks(self, graph, starts, length, seed=None):
        return weighted_batch_walks(graph, starts, length, seed=seed)


# ----------------------------------------------------------------------
# CSR backend
# ----------------------------------------------------------------------
class _CSRPlan:
    """Per-graph precomputation for the CSR backend (unweighted).

    The adjacency is augmented so every dangling node carries one
    self-loop.  A dangling walker then "moves" along its self-loop —
    landing where it already is — which realizes the stay-put convention
    (DESIGN.md §5) without any per-hop mask, while consuming exactly the
    same uniform draw the numpy backend burns on it.
    """

    __slots__ = ("indptr", "indices", "degrees_f64")

    def __init__(self, graph: Graph):
        degrees = graph.degrees
        dangling = np.flatnonzero(degrees == 0)
        if dangling.size == 0:
            self.indptr = graph.indptr
            self.indices = graph.indices
            self.degrees_f64 = degrees.astype(np.float64)
            return
        n = graph.num_nodes
        aug_deg = degrees.copy()
        aug_deg[dangling] = 1
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(aug_deg, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int32)
        src_rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
        within = np.arange(graph.indices.size, dtype=np.int64) - graph.indptr[src_rows]
        indices[indptr[src_rows] + within] = graph.indices
        indices[indptr[dangling]] = dangling
        self.indptr = indptr
        self.indices = indices
        self.degrees_f64 = aug_deg.astype(np.float64)


class _WeightedPlan:
    """Per-graph precomputation for the CSR backend (weighted)."""

    __slots__ = ("sampler", "indices", "out_degrees_f64", "has_dangling")

    def __init__(self, graph: WeightedDiGraph):
        self.sampler = AliasSampler(graph)
        self.indices = graph.indices.astype(np.int64)
        out_deg = graph.out_degrees
        self.out_degrees_f64 = out_deg.astype(np.float64)
        self.has_dangling = bool((out_deg == 0).any())


class _PlanCache:
    """Bounded FIFO of per-graph plans, keyed by object identity.

    The cache keeps a strong reference to each graph, so an ``id()`` can
    never be recycled while its plan is alive; graphs are immutable, so a
    cached plan never goes stale.  Concurrent builds of the same plan (the
    sharded engine's thread pool) are benign: both threads compute the same
    immutable arrays and one wins the dict slot.
    """

    def __init__(self, maxsize: int = 8):
        self._maxsize = maxsize
        self._data: "dict[int, tuple[object, object]]" = {}

    def get(self, graph: object, build: Callable[[object], object]) -> object:
        key = id(graph)
        hit = self._data.get(key)
        if hit is not None and hit[0] is graph:
            return hit[1]
        plan = build(graph)
        self._data[key] = (graph, plan)
        while len(self._data) > self._maxsize:
            # pop(…, None): two pool threads may race to evict the same
            # oldest entry; losing the race must not raise.
            self._data.pop(next(iter(self._data)), None)
        return plan


class CSRWalkEngine(WalkEngine):
    """Vectorized CSR backend: block uniforms, three gathers per hop.

    Bit-identical to :class:`NumpyWalkEngine` under the same seed (the
    parity tests in ``tests/test_walk_backends.py`` assert it), roughly
    2-3x faster on batched unweighted walks, and much faster on repeated
    weighted calls because alias tables are built once per graph.
    """

    name = "csr"

    def __init__(self, cache_size: int = 8):
        self._plans = _PlanCache(cache_size)
        self._weighted_plans = _PlanCache(cache_size)
        # Hop-loop scratch, reused across calls of the same batch size so
        # steady-state walking performs zero allocations.  Thread-local
        # because the sharded engine drives one CSR engine from a pool.
        self._scratch = threading.local()

    # ------------------------------------------------------------------
    def _plan(self, graph: Graph) -> _CSRPlan:
        return self._plans.get(graph, _CSRPlan)

    def _weighted_plan(self, graph: WeightedDiGraph) -> _WeightedPlan:
        return self._weighted_plans.get(graph, _WeightedPlan)

    def _buffers(self, batch: int) -> "tuple[np.ndarray, ...]":
        """Per-thread ``(u, deg, off, pos, current)`` scratch buffers."""
        cached = getattr(self._scratch, "buffers", None)
        if cached is None or cached[0].size != batch:
            cached = (
                np.empty(batch, dtype=np.float64),
                np.empty(batch, dtype=np.float64),
                np.empty(batch, dtype=np.int64),
                np.empty(batch, dtype=np.int64),
                np.empty(batch, dtype=np.int64),
            )
            self._scratch.buffers = cached
        return cached

    # ------------------------------------------------------------------
    def batch_walks(self, graph, starts, length, seed=None):
        starts = _check_walk_args(graph.num_nodes, starts, length)
        rng = resolve_rng(seed)
        batch = starts.size
        walks = np.empty((length + 1, batch), dtype=np.int32)
        walks[0] = starts
        if length and batch:
            plan = self._plan(graph)
            indptr, indices, degf = plan.indptr, plan.indices, plan.degrees_f64
            # Per-hop scratch buffers are allocated once; every hop is a
            # fixed sequence of allocation-free kernels.  ``mode="clip"``
            # skips numpy's bounds-check pass — positions are valid by
            # construction.  The per-hop ``rng.random`` calls consume the
            # PCG64 stream exactly like the numpy backend's, which is what
            # makes the two backends bit-identical under one seed.
            u, deg, off, pos, current = self._buffers(batch)
            np.copyto(current, starts)  # int64: take() needs intp indices
            for t in range(1, length + 1):
                rng.random(out=u)
                np.take(degf, current, out=deg, mode="clip")
                np.multiply(u, deg, out=u)
                np.copyto(off, u, casting="unsafe")  # trunc == floor: u >= 0
                np.take(indptr, current, out=pos, mode="clip")
                pos += off
                np.take(indices, pos, out=walks[t], mode="clip")
                np.copyto(current, walks[t])
        # (B, L+1) transposed view: column-major hop access, which is how
        # every consumer reads walks, stays contiguous.
        return walks.T

    def weighted_batch_walks(self, graph, starts, length, seed=None):
        starts = _check_walk_args(graph.num_nodes, starts, length)
        rng = resolve_rng(seed)
        batch = starts.size
        plan = self._weighted_plan(graph)
        if plan.has_dangling or not (length and batch):
            # The masked per-hop path of AliasSampler.step draws uniforms
            # for movable walkers only; reuse it so the RNG stream matches
            # the numpy backend exactly.  The cached sampler still skips
            # the per-call alias-table rebuild.
            return weighted_batch_walks(
                graph, starts, length, seed=rng, sampler=plan.sampler
            )
        sampler = plan.sampler
        indptr, indices = graph.indptr, plan.indices
        outdegf = plan.out_degrees_f64
        prob, alias = sampler.prob, sampler.alias
        walks = np.empty((length + 1, batch), dtype=np.int32)
        walks[0] = starts
        current = starts
        for t in range(1, length + 1):
            # Draw order (slots, then coins) matches AliasSampler.step so
            # the stream stays aligned with the numpy backend.
            u_slot = rng.random(batch)
            u_coin = rng.random(batch)
            slots = indptr[current] + (u_slot * outdegf[current]).astype(np.int64)
            chosen = np.where(u_coin >= prob[slots], alias[slots], slots)
            current = indices[chosen]
            walks[t] = current
        return walks.T

    def walk_first_hits(self, graph, starts, length, target_mask, seed=None):
        if isinstance(graph, WeightedDiGraph):
            return super().walk_first_hits(
                graph, starts, length, target_mask, seed=seed
            )
        starts = _check_walk_args(graph.num_nodes, starts, length)
        rng = resolve_rng(seed)
        batch = starts.size
        first = np.where(target_mask[starts], 0, -1).astype(np.int64)
        if length and batch:
            plan = self._plan(graph)
            indptr, indices, degf = plan.indptr, plan.indices, plan.degrees_f64
            u, deg, off, pos, current = self._buffers(batch)
            nxt = np.empty(batch, dtype=np.int32)
            np.copyto(current, starts)
            for t in range(1, length + 1):
                rng.random(out=u)
                np.take(degf, current, out=deg, mode="clip")
                np.multiply(u, deg, out=u)
                np.copyto(off, u, casting="unsafe")
                np.take(indptr, current, out=pos, mode="clip")
                pos += off
                np.take(indices, pos, out=nxt, mode="clip")
                np.copyto(current, nxt)
                newly = (first < 0) & target_mask[current]
                first[newly] = t
        return first


# ----------------------------------------------------------------------
# Sharded backend
# ----------------------------------------------------------------------
class ShardedWalkEngine(WalkEngine):
    """Replicate batches split across a thread pool of base-engine shards.

    The batch is cut into ``num_shards`` contiguous shards; each shard gets
    its own child generator via :func:`~repro.walks.rng.spawn_children`
    (``SeedSequence`` spawning) and runs on the base engine inside a
    ``concurrent.futures.ThreadPoolExecutor`` — the hot kernels are numpy
    gathers, which release the GIL.  Shard results are reassembled in shard
    order, so the output is a pure function of ``(seed, num_shards)``:
    worker count and scheduling cannot change it, and a run is reproducible
    on any machine.  ``num_shards`` is deliberately *not* derived from the
    CPU count for exactly that reason.
    """

    name = "sharded"

    def __init__(
        self,
        base: "str | WalkEngine" = "csr",
        num_shards: int = 8,
        max_workers: "int | None" = None,
    ):
        if num_shards < 1:
            raise ParameterError("num_shards must be >= 1")
        self._base_spec = base
        self.num_shards = num_shards
        self.max_workers = max_workers

    @property
    def base(self) -> WalkEngine:
        """The engine each shard runs on (resolved late, default CSR)."""
        return get_engine(self._base_spec)

    # ------------------------------------------------------------------
    def _scatter(self, starts, seed, run_shard) -> np.ndarray:
        starts = np.asarray(starts, dtype=np.int64)
        shards = max(1, min(self.num_shards, starts.size))
        children = spawn_children(seed, shards)
        chunks = np.array_split(starts, shards)
        if shards == 1:
            return run_shard(chunks[0], children[0])
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers
        ) as pool:
            parts = list(pool.map(run_shard, chunks, children))
        return np.vstack(parts)

    def _warm(self, graph: "Graph | WeightedDiGraph") -> WalkEngine:
        """Resolve the base engine and build its per-graph plan once, so
        pool threads only read the shared plan instead of racing to
        construct it (O(n + m) work and memory per thread otherwise)."""
        base = self.base
        if isinstance(base, CSRWalkEngine):
            if isinstance(graph, WeightedDiGraph):
                base._weighted_plan(graph)
            else:
                base._plan(graph)
        return base

    def batch_walks(self, graph, starts, length, seed=None):
        starts = _check_walk_args(graph.num_nodes, starts, length)
        base = self._warm(graph)
        return self._scatter(
            starts, seed,
            lambda chunk, child: base.batch_walks(graph, chunk, length, seed=child),
        )

    def weighted_batch_walks(self, graph, starts, length, seed=None):
        starts = _check_walk_args(graph.num_nodes, starts, length)
        base = self._warm(graph)
        return self._scatter(
            starts, seed,
            lambda chunk, child: base.weighted_batch_walks(
                graph, chunk, length, seed=child
            ),
        )

    def walk_first_hits(self, graph, starts, length, target_mask, seed=None):
        starts = _check_walk_args(graph.num_nodes, starts, length)
        base = self._warm(graph)
        hits = self._scatter(
            starts, seed,
            lambda chunk, child: base.walk_first_hits(
                graph, chunk, length, target_mask, seed=child
            ).reshape(-1, 1),
        )
        return hits.reshape(-1)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_FACTORIES: "dict[str, Callable[[], WalkEngine]]" = {}
_INSTANCES: "dict[str, WalkEngine]" = {}


def register_engine(
    name: str, factory: Callable[[], WalkEngine], replace: bool = False
) -> None:
    """Register a backend factory under ``name``.

    ``factory`` is called lazily, once, on first :func:`get_engine` lookup.
    Re-registering an existing name requires ``replace=True`` (and drops
    any cached instance), so a typo cannot silently shadow a builtin.
    """
    if not name or not isinstance(name, str):
        raise ParameterError("engine name must be a non-empty string")
    if name in _FACTORIES and not replace:
        raise ParameterError(
            f"engine {name!r} is already registered (pass replace=True)"
        )
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_engines() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def get_engine(engine: "str | WalkEngine | None" = None) -> WalkEngine:
    """Resolve an ``engine=`` argument to a :class:`WalkEngine` instance.

    ``None`` -> the default backend (``"numpy"``); a string -> the shared
    instance registered under that name; an instance -> itself.
    """
    if engine is None:
        engine = DEFAULT_ENGINE
    if isinstance(engine, WalkEngine):
        return engine
    if not isinstance(engine, str):
        raise ParameterError(
            f"cannot interpret {type(engine).__name__} as a walk engine"
        )
    try:
        instance = _INSTANCES.get(engine)
        if instance is None:
            instance = _INSTANCES[engine] = _FACTORIES[engine]()
        return instance
    except KeyError:
        raise ParameterError(
            f"unknown walk engine {engine!r}; available: "
            f"{', '.join(available_engines())}"
        ) from None


register_engine("numpy", NumpyWalkEngine)
register_engine("csr", CSRWalkEngine)
register_engine("sharded", ShardedWalkEngine)
