"""Bit-packed coverage kernel for the index-based greedy (Algorithm 6).

The :class:`~repro.walks.index.FlatWalkIndex` stores, for every hit node
``v``, the ``(replicate, walker)`` pairs whose walk first-visits ``v``.
Each such pair is one *state* ``s = replicate * n + walker`` — a cell of
the ``D[1:R][1:n]`` matrix of Algorithms 4-6.  Selecting ``v`` "covers"
states (Problem 2) or relaxes their first-hit distance (Problem 1), and a
marginal gain is a sum over the candidate's state set.

This module turns those state sets into packed ``uint64`` bitset rows and
keeps every candidate's gain *materialized*:

* **Problem 2 (coverage).**  Candidate ``u``'s coverage set is one packed
  row ``rows[u]`` (its index entries plus its own ``R`` self states), and
  the covered set is one packed vector, so a gain query is literally
  ``popcount(rows[u] & ~covered)`` over contiguous words
  (:meth:`CoverageKernel.popcount_gain`).
* **Problem 1 (hitting time).**  The gain is a masked min-reduction over
  first-visit hops: ``sum_s max(d[s] - hop_u(s), 0)`` with ``hop_u`` read
  from the candidate's hop row (:meth:`CoverageKernel.min_reduction_gains`
  evaluates it against the dense hop matrix exported by
  :meth:`~repro.walks.index.FlatWalkIndex.dense_hop_matrix`).
* **Incremental maintenance.**  A state belongs to at most ``L + 1``
  candidate rows (the distinct nodes its walk first-visits, plus the
  walker itself).  The kernel therefore keeps a state-major transpose of
  the index and, on every selection, propagates the delta of the newly
  covered (or newly relaxed) states to exactly the affected candidates.
  Summed over a whole greedy run this is ``O(E + S)`` total update work
  for Problem 2 (``E`` index entries, ``S = n R`` states) instead of the
  entry path's ``O(E)`` *per round* — which is where the kernel's
  measured speedup on full-sweep Algorithm 6 comes from
  (``benchmarks/bench_coverage_kernel.py``).

All arithmetic is integer-exact, so the kernel is *bit-identical* to the
entry-list gain path of :class:`~repro.core.approx_fast.FastApproxEngine`:
same gain values, same argmax, same tie-breaking, same selections.  The
test suite asserts this entry-for-entry (``tests/test_coverage_kernel.py``)
and CI enforces it as a hard parity gate.  See DESIGN.md §8.

Consumers opt in through the ``gain_backend`` switch (``"entries"`` keeps
the original per-entry arrays, ``"bitset"`` routes through this kernel)
threaded through :func:`~repro.core.approx_fast.approx_greedy_fast`,
:func:`~repro.core.stochastic.stochastic_approx_greedy`,
:func:`~repro.core.coverage.min_targets_for_coverage`,
:func:`~repro.core.combined.approx_combined`, the sampling-greedy
estimator aggregation, and the CLI ``--gain-backend`` flag.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.errors import ParameterError
from repro.walks.index import FlatWalkIndex, scatter_or_bits
from repro.walks.rows import (
    DEFAULT_ROW_CAP_BYTES,
    ROWS_FORMATS,
    CompressedRows,
    validate_rows_format,
)
from repro.walks.storage import MmapStorage

__all__ = [
    "GAIN_BACKENDS",
    "DEFAULT_GAIN_BACKEND",
    "ROWS_FORMATS",
    "validate_gain_backend",
    "validate_rows_format",
    "pack_states",
    "popcount",
    "popcount_rows",
    "patch_packed_rows",
    "CoverageKernel",
]

#: Marginal-gain evaluation strategies accepted everywhere a
#: ``gain_backend=`` parameter (or the CLI ``--gain-backend`` flag) is.
GAIN_BACKENDS = ("entries", "bitset")
DEFAULT_GAIN_BACKEND = "entries"

#: Default ceiling for the *dense* packed candidate rows — that part of
#: the kernel grows as ``n^2 R / 8`` bytes.  One shared constant
#: (:data:`repro.walks.rows.DEFAULT_ROW_CAP_BYTES`) with the archive
#: save side, so the kernel-side and save-side budgets can never drift.
#: Beyond it, ``rows_format="compressed"`` (or the ``"entries"``
#: backend) is the escape hatch.
DEFAULT_MAX_PACKED_BYTES = DEFAULT_ROW_CAP_BYTES


def validate_gain_backend(name: "str | None") -> str:
    """Resolve a ``gain_backend`` value (``None`` means the default)."""
    if name is None:
        return DEFAULT_GAIN_BACKEND
    if name not in GAIN_BACKENDS:
        raise ParameterError(
            f"gain_backend must be one of {GAIN_BACKENDS}, got {name!r}"
        )
    return name


def pack_states(states: np.ndarray, num_states: int) -> np.ndarray:
    """Pack a set of state ids into a ``uint64`` bitset vector.

    Bit ``s`` of the result is set iff ``s`` appears in ``states``; bits at
    and beyond ``num_states`` (the padding of the last word) are zero.
    """
    if num_states < 0:
        raise ParameterError("num_states must be >= 0")
    words = (num_states + 63) >> 6
    packed = np.zeros(words, dtype=np.uint64)
    states = np.asarray(states, dtype=np.int64)
    if states.size == 0:
        return packed
    if states.min() < 0 or states.max() >= num_states:
        raise ParameterError("state id out of range for pack_states")
    bits = np.left_shift(np.uint64(1), (states & 63).astype(np.uint64))
    np.bitwise_or.at(packed, states >> 6, bits)
    return packed


if hasattr(np, "bitwise_count"):
    _bitwise_count = np.bitwise_count
else:  # numpy < 2.0: byte-LUT fallback (returns per-byte counts, callers sum)
    _POPCOUNT_LUT = np.asarray(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    def _bitwise_count(packed: np.ndarray) -> np.ndarray:
        return _POPCOUNT_LUT[np.ascontiguousarray(packed).view(np.uint8)]


def popcount(packed: np.ndarray) -> int:
    """Total number of set bits in a packed array."""
    if packed.size == 0:
        return 0
    return int(_bitwise_count(packed).sum(dtype=np.int64))


def popcount_rows(packed: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a 2-D packed array (``int64``)."""
    if packed.size == 0:
        return np.zeros(packed.shape[0], dtype=np.int64)
    counts = _bitwise_count(packed)
    return counts.reshape(packed.shape[0], -1).sum(axis=1, dtype=np.int64)


def _gather_ranges(
    indptr: np.ndarray, ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Positions of the concatenated CSR slices ``[indptr[i], indptr[i+1])``.

    Returns ``(positions, lengths)`` where ``positions`` indexes the CSR
    value arrays and ``lengths[j]`` is the slice length of ``ids[j]`` (so
    per-id payloads can be broadcast with ``np.repeat``).  Vectorized —
    no Python-level loop over ``ids``.
    """
    lengths = indptr[ids + 1] - indptr[ids]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lengths
    starts = np.repeat(indptr[ids], lengths)
    segment_base = np.repeat(np.cumsum(lengths) - lengths, lengths)
    positions = starts + (np.arange(total, dtype=np.int64) - segment_base)
    return positions, lengths


def patch_packed_rows(
    rows: np.ndarray,
    index: FlatWalkIndex,
    nodes: np.ndarray,
    include_self: bool = True,
) -> np.ndarray:
    """Recompute selected candidates' packed coverage rows **in place**.

    The row-patch counterpart of
    :meth:`~repro.walks.index.FlatWalkIndex.packed_hit_rows`: after an
    incremental index update (:mod:`repro.dynamic`, DESIGN.md §9) only the
    hit nodes whose entry lists changed need their bitset rows refreshed.
    ``rows`` must be the full ``(n, ceil(nR/64))`` packed matrix; the rows
    of ``nodes`` are zeroed and rebuilt from the *current* entry arrays of
    ``index`` (plus the hop-0 self states when ``include_self``), leaving
    every other row untouched.  Patching is bit-identical to a full
    ``packed_hit_rows`` recompute — the dynamic test suite pins this.

    Returns ``rows`` for convenience.
    """
    n = index.num_nodes
    words = (index.num_states + 63) >> 6
    if rows.shape != (n, words) or rows.dtype != np.uint64:
        raise ParameterError(
            f"rows must be the full uint64 packed matrix of shape "
            f"({n}, {words}), got {rows.dtype} {rows.shape}"
        )
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    if nodes.size == 0:
        return rows
    if nodes.min() < 0 or nodes.max() >= n:
        raise ParameterError("patch nodes out of range")
    rows[nodes] = 0
    positions, lengths = _gather_ranges(index.indptr, nodes)
    states = index.state[positions].astype(np.int64)
    owners = np.repeat(nodes, lengths)
    if include_self:
        reps = np.arange(index.num_replicates, dtype=np.int64)
        self_states = (reps[:, None] * n + nodes[None, :]).ravel()
        states = np.concatenate([states, self_states])
        owners = np.concatenate([owners, np.tile(nodes, index.num_replicates)])
    scatter_or_bits(rows, owners, states)
    return rows


class CoverageKernel:
    """Materialized-gain engine over packed first-hit state sets.

    Mirrors the mutable state of Algorithms 4-6 for one objective and
    answers the three queries the greedy drivers need — ``gains_all`` /
    ``gain_of`` / ``select`` — with maintained integer gains.  Build one
    with :meth:`from_index`; drive it through
    :class:`~repro.core.approx_fast.FastApproxEngine` (``gain_backend=
    "bitset"``) or directly.
    """

    def __init__(self, index: FlatWalkIndex, objective: str = "f1",
                 max_packed_bytes: "int | None" = DEFAULT_MAX_PACKED_BYTES,
                 materialize_rows: "bool | None" = None,
                 rows_format: "str | None" = None):
        if objective not in ("f1", "f2"):
            raise ParameterError("objective must be one of ('f1', 'f2')")
        self.index = index
        self.objective = objective
        # Row representation behind the popcount queries (DESIGN.md §16):
        # "dense" reads one materialized (n, words) matrix, "stream"
        # rebuilds candidate blocks on the fly from the index storage,
        # "compressed" runs container-wise over roaring rows.  The
        # legacy ``materialize_rows`` flag maps onto dense/stream.
        # Auto: an archive that stored only compressed rows uses them; a
        # compressed entry index streams (its whole point is not to hold
        # dense rows); everything else keeps the materialized fast path
        # (mmap's stored dense rows are already a no-copy map).
        if rows_format is not None and materialize_rows is not None:
            raise ParameterError(
                "pass rows_format or the legacy materialize_rows flag, "
                "not both"
            )
        if rows_format is None and materialize_rows is not None:
            rows_format = "dense" if materialize_rows else "stream"
        validate_rows_format(rows_format)
        if rows_format is None:
            storage = index.storage
            if (
                isinstance(storage, MmapStorage)
                and storage.rows is None
                and storage.compressed_rows is not None
            ):
                rows_format = "compressed"
            elif index.storage_format == "compressed":
                rows_format = "stream"
            else:
                rows_format = "dense"
        self.rows_format = rows_format
        self._materialize_rows = rows_format == "dense"
        n = index.num_nodes
        self.num_nodes = n
        self.num_replicates = index.num_replicates
        self.length = index.length
        self.num_states = n * index.num_replicates
        self.words = (self.num_states + 63) >> 6

        # Candidate-major coverage sets: the index entries plus each
        # candidate's own R self states (hop 0 — Algorithm 5 zeroes the
        # candidate's D column on selection).  The index entries already
        # arrive grouped by hit node, so the forward CSR is a direct merge
        # (no sort): candidate u's slice is its entry slice followed by
        # its R self states in replicate order.
        replicates = index.num_replicates
        entry_counts = np.diff(index.indptr)
        num_entries = int(index.indptr[-1])
        total = num_entries + self.num_states
        self._fptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(entry_counts + replicates, out=self._fptr[1:])
        self._fstate = np.empty(total, dtype=np.int64)
        self._fhop = np.empty(total, dtype=np.int64)
        if num_entries:
            dest_entries = np.repeat(self._fptr[:-1], entry_counts) + (
                np.arange(num_entries, dtype=np.int64)
                - np.repeat(index.indptr[:-1], entry_counts)
            )
            self._fstate[dest_entries] = index.state.astype(np.int64)
            self._fhop[dest_entries] = index.hop.astype(np.int64)
        # Self state i*n + u lands at fptr[u] + entry_counts[u] + i; the
        # (replicate, node)-raveled grids below realize exactly that.
        self_base = self._fptr[:-1] + entry_counts
        dest_self = (
            self_base[None, :]
            + np.arange(replicates, dtype=np.int64)[:, None]
        ).ravel()
        self._fstate[dest_self] = np.arange(self.num_states, dtype=np.int64)
        self._fhop[dest_self] = 0

        # State-major transpose (state -> candidates whose set contains it)
        # for incremental gain maintenance.
        fcand = np.repeat(
            np.arange(n, dtype=np.int64), entry_counts + replicates
        )
        rorder = np.argsort(self._fstate, kind="stable")
        self._rcand = fcand[rorder]
        self._rhop = self._fhop[rorder]
        self._rptr = np.zeros(self.num_states + 1, dtype=np.int64)
        np.cumsum(np.bincount(self._fstate, minlength=self.num_states),
                  out=self._rptr[1:])

        # Packed candidate rows — the popcount substrate.  Materialized on
        # first popcount use (and the memory cap enforced there), so the
        # maintained-gain hot path never pays for them: that path needs
        # only the O(E + S) CSR state above, even when the dense rows
        # would not fit.
        self._max_packed_bytes = max_packed_bytes
        self._rows: "np.ndarray | None" = None
        self._crows: "CompressedRows | None" = None

        # Mutable per-objective state, matching FastApproxEngine exactly.
        if objective == "f1":
            self._d = np.full(self.num_states, index.length, dtype=np.int32)
            self.covered = None
            self._covered_bool = None
            # gain(u) at D = L everywhere: sum of (L - hop) over u's set.
            contrib = index.length - self._fhop
        else:
            self._d = None
            self.covered = np.zeros(self.words, dtype=np.uint64)
            self._covered_bool = np.zeros(self.num_states, dtype=bool)
            contrib = np.ones(self._fhop.size, dtype=np.int64)
        running = np.zeros(contrib.size + 1, dtype=np.int64)
        np.cumsum(contrib, out=running[1:])
        self.gains = running[self._fptr[1:]] - running[self._fptr[:-1]]

    # ------------------------------------------------------------------
    @classmethod
    def from_index(
        cls,
        index: FlatWalkIndex,
        objective: str = "f1",
        max_packed_bytes: "int | None" = DEFAULT_MAX_PACKED_BYTES,
        materialize_rows: "bool | None" = None,
        rows_format: "str | None" = None,
    ) -> "CoverageKernel":
        """Build a kernel over an existing walk index."""
        started = time.perf_counter()
        with obs.span("kernel.build", objective=objective):
            kernel = cls(index, objective=objective,
                         max_packed_bytes=max_packed_bytes,
                         materialize_rows=materialize_rows,
                         rows_format=rows_format)
        if obs.enabled():
            obs.inc(
                "kernel_builds_total",
                help="Coverage-kernel constructions.",
                objective=objective,
            )
            obs.observe(
                "kernel_build_seconds",
                time.perf_counter() - started,
                help="Coverage-kernel build wall time.",
                objective=objective,
            )
        return kernel

    # ------------------------------------------------------------------
    @property
    def rows(self) -> np.ndarray:
        """Packed per-candidate coverage rows (built on first access;
        raises :class:`ParameterError` beyond ``max_packed_bytes``)."""
        if self._rows is None:
            self._rows = self.index.packed_hit_rows(
                include_self=True, max_bytes=self._max_packed_bytes
            )
        return self._rows

    @property
    def crows(self) -> CompressedRows:
        """Roaring compressed coverage rows (built on first access;
        archive-backed when the mmap archive stored them)."""
        if self._crows is None:
            self._crows = self.index.compressed_hit_rows(include_self=True)
        return self._crows

    def _row_chunk(self, lo: int, hi: int) -> np.ndarray:
        """Packed rows of candidates ``[lo, hi)`` — a slice of the
        materialized matrix (``rows_format="dense"``), a container
        decode (``"compressed"``), or (``"stream"``) the stored mmap
        rows / a per-chunk rebuild through
        :meth:`~repro.walks.index.FlatWalkIndex.packed_rows_for`, so the
        full matrix never exists.  Bit-identical every way."""
        if self._materialize_rows:
            return self.rows[lo:hi]
        if self.rows_format == "compressed":
            return self.crows.decode_rows(lo, hi)
        storage = self.index.storage
        if isinstance(storage, MmapStorage) and storage.rows is not None:
            # The archive already stores the dense rows
            # (include_self=True is the stored convention): slice the
            # read-only map instead of range-decoding the entry arrays.
            return storage.rows[lo:hi]
        return self.index.packed_rows_for(lo, hi, include_self=True)

    # ------------------------------------------------------------------
    # Gain queries — same raw integer scale (sigma_u * R) as the entry path.
    def gains_all(self) -> np.ndarray:
        """Maintained raw gains of every candidate (a fresh copy)."""
        return self.gains.copy()

    def gain_of(self, node: int) -> int:
        """Maintained raw gain of one candidate (exact, O(1))."""
        if not 0 <= node < self.num_nodes:
            raise ParameterError(f"node {node} out of range")
        return int(self.gains[node])

    def popcount_gain(self, node: int) -> int:
        """Problem-2 gain recomputed from first principles:
        ``popcount(rows[node] & ~covered)``.  Always equals
        :meth:`gain_of` — the invariant the parity tests pin."""
        if self.objective != "f2":
            raise ParameterError("popcount_gain is defined for f2 only")
        if not 0 <= node < self.num_nodes:
            raise ParameterError(f"node {node} out of range")
        if self.rows_format == "compressed":
            return int(
                self.crows.popcount_rows_masked(self.covered, node, node + 1)[
                    0
                ]
            )
        return popcount(self._row_chunk(node, node + 1)[0] & ~self.covered)

    def refresh_gains(self, chunk_rows: int = 256) -> np.ndarray:
        """Recompute every gain from the packed substrate (no maintained
        state): the f2 path is the chunked masked popcount sweep
        (container-wise on compressed rows — no dense decode), the f1
        path the masked min-reduction over the forward hop arrays.  Used
        by tests and benchmarks as the independent oracle."""
        if self.objective == "f2":
            if self.rows_format == "compressed":
                return self.crows.popcount_rows_masked(self.covered)
            mask = ~self.covered
            out = np.empty(self.num_nodes, dtype=np.int64)
            for lo in range(0, self.num_nodes, chunk_rows):
                hi = min(lo + chunk_rows, self.num_nodes)
                out[lo:hi] = popcount_rows(self._row_chunk(lo, hi) & mask)
            return out
        contrib = self._d[self._fstate].astype(np.int64) - self._fhop
        np.maximum(contrib, 0, out=contrib)
        running = np.zeros(contrib.size + 1, dtype=np.int64)
        np.cumsum(contrib, out=running[1:])
        return running[self._fptr[1:]] - running[self._fptr[:-1]]

    def min_reduction_gains(self, hop_matrix: np.ndarray) -> np.ndarray:
        """Problem-1 gains as a masked min-reduction over a dense hop
        matrix (``hop_matrix`` from
        :meth:`~repro.walks.index.FlatWalkIndex.dense_hop_matrix`):
        ``gain[u] = sum_s (d[s] - min(d[s], H[u, s]))``.  Memory-hungry
        (``n * S`` cells) — an oracle for small instances, not a hot path.
        """
        if self.objective != "f1":
            raise ParameterError("min_reduction_gains is defined for f1 only")
        if hop_matrix.shape != (self.num_nodes, self.num_states):
            raise ParameterError("hop matrix shape must be (n, n * R)")
        d = self._d.astype(np.int64)
        d_total = int(d.sum())
        out = np.empty(self.num_nodes, dtype=np.int64)
        chunk = 256
        for lo in range(0, self.num_nodes, chunk):
            hi = min(lo + chunk, self.num_nodes)
            relaxed = np.minimum(d[None, :], hop_matrix[lo:hi].astype(np.int64))
            out[lo:hi] = d_total - relaxed.sum(axis=1, dtype=np.int64)
        return out

    # ------------------------------------------------------------------
    def select(self, node: int) -> None:
        """Fold one selection into the kernel state (Algorithm 5) and
        propagate the exact gain deltas to the affected candidates."""
        if not 0 <= node < self.num_nodes:
            raise ParameterError(f"node {node} out of range")
        lo, hi = self._fptr[node], self._fptr[node + 1]
        states = self._fstate[lo:hi]
        hops = self._fhop[lo:hi]
        if self.objective == "f2":
            fresh = ~self._covered_bool[states]
            new_states = states[fresh]
            if new_states.size == 0:
                return
            self._covered_bool[new_states] = True
            bits = np.left_shift(
                np.uint64(1), (new_states & 63).astype(np.uint64)
            )
            np.bitwise_or.at(self.covered, new_states >> 6, bits)
            positions, _ = _gather_ranges(self._rptr, new_states)
            touched = self._rcand[positions]
            self.gains -= np.bincount(touched, minlength=self.num_nodes)
        else:
            current = self._d[states].astype(np.int64)
            improving = hops < current
            new_states = states[improving]
            if new_states.size == 0:
                return
            new_hops = hops[improving]
            old_d = current[improving]
            self._d[new_states] = new_hops.astype(np.int32)
            positions, lengths = _gather_ranges(self._rptr, new_states)
            touched = self._rcand[positions]
            touched_hop = self._rhop[positions]
            seg_old = np.repeat(old_d, lengths)
            seg_new = np.repeat(new_hops, lengths)
            delta = np.maximum(seg_old - touched_hop, 0) - np.maximum(
                seg_new - touched_hop, 0
            )
            # Weighted bincount is float64 but the weights are small
            # integers, so the sums are exact.
            self.gains -= np.bincount(
                touched, weights=delta, minlength=self.num_nodes
            ).astype(np.int64)

    # ------------------------------------------------------------------
    def distance_matrix(self) -> np.ndarray:
        """Current ``D`` as an ``(R, n)`` array — identical to the entry
        engine's :meth:`~repro.core.approx_fast.FastApproxEngine.distance_matrix`."""
        if self.objective == "f1":
            return (
                self._d.reshape(self.num_replicates, self.num_nodes)
                .astype(np.int32)
                .copy()
            )
        return (
            self._covered_bool.astype(np.int32)
            .reshape(self.num_replicates, self.num_nodes)
            .copy()
        )

    def covered_count(self) -> int:
        """Number of covered states — ``popcount(covered)`` (f2 only)."""
        if self.objective != "f2":
            raise ParameterError("covered_count is defined for f2 only")
        return popcount(self.covered)
