"""Monte-Carlo estimators of Algorithm 2 and Lemmas 3.1/3.2.

Given a target set ``S``, the paper estimates the generalized hitting time
``h^L_uS`` by running ``R`` independent L-length walks from ``u``:

    ``hhat = (sum of first-hit hops over the r hitting walks + (R - r) L) / R``
    (Eq. 9 — unbiased, Lemma 3.1)

and the hit probability ``E[X^L_uS]`` by the hit fraction ``r / R``
(Eq. 10 — unbiased, Lemma 3.2).  Algorithm 2 aggregates these into unbiased
estimators of the two objectives:

    ``F1(S) = n * L - sum_u hhat_uS``             (lines 12, 14)
    ``F2(S) = sum_{u not in S} r_u / R + |S|``    (lines 13, 15)

Note one deliberate deviation: the paper's Algorithm 2 line 14 normalizes
``F1`` with ``|V \\ S| * L`` while its own Eq. 6 and Theorem 3.1 use
``n * L``.  The two differ by the constant ``|S| * L``, which affects no
argmax and no metric; we follow Eq. 6 so the estimator is consistent with
the exact :class:`repro.core.objectives.F1Objective`.

Everything below runs on a pluggable walk backend (``engine=``, see
:mod:`repro.walks.backends`; the default is the numpy gather loop of
:func:`repro.walks.engine.batch_walks`) and is chunked so that the paper's
metric-evaluation setting (R = 500 on the larger datasets) stays within
memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.walks.backends import WalkEngine, get_engine
from repro.walks.rng import resolve_rng

__all__ = [
    "ObjectiveEstimates",
    "estimate_hitting_time",
    "estimate_hit_probability",
    "estimate_pairwise_hitting_time",
    "estimate_objectives",
    "estimate_f1",
    "estimate_f2",
]


@dataclass(frozen=True)
class ObjectiveEstimates:
    """Joint output of Algorithm 2 for one target set."""

    f1: float
    f2: float
    num_samples: int
    length: int


def _target_mask(graph: Graph, targets: Collection[int]) -> np.ndarray:
    mask = np.zeros(graph.num_nodes, dtype=bool)
    idx = np.fromiter((int(v) for v in targets), dtype=np.int64)
    if idx.size:
        if idx.min() < 0 or idx.max() >= graph.num_nodes:
            raise ParameterError("target nodes out of range")
        mask[idx] = True
    return mask


def _check_common(length: int, num_samples: int) -> None:
    if length < 0:
        raise ParameterError("walk length L must be >= 0")
    if num_samples < 1:
        raise ParameterError("num_samples R must be >= 1")


def _per_source_stats(
    graph: Graph,
    sources: np.ndarray,
    mask: np.ndarray,
    length: int,
    num_samples: int,
    rng: np.random.Generator,
    chunk_rows: int = 1 << 19,
    engine: "WalkEngine | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """For each source: (number of hitting walks r, total first-hit hops t).

    Sources inside ``S`` hit at hop 0 by definition; the mask lookup handles
    that uniformly.  ``engine`` must be a resolved backend; its fused
    first-hit path lets the CSR backend skip materializing the walk matrix.
    """
    if engine is None:
        engine = get_engine(None)
    starts = np.repeat(sources, num_samples)
    r = np.zeros(sources.size, dtype=np.int64)
    t = np.zeros(sources.size, dtype=np.int64)
    for lo in range(0, starts.size, chunk_rows):
        rows = starts[lo : lo + chunk_rows]
        hits = engine.walk_first_hits(graph, rows, length, mask, seed=rng)
        src_pos = (np.arange(lo, lo + rows.size) // num_samples).astype(np.int64)
        hit_mask = hits >= 0
        np.add.at(r, src_pos[hit_mask], 1)
        np.add.at(t, src_pos[hit_mask], hits[hit_mask])
    return r, t


def _packed_totals(
    graph: Graph,
    sources: np.ndarray,
    mask: np.ndarray,
    length: int,
    num_samples: int,
    rng: np.random.Generator,
    chunk_rows: int = 1 << 19,
    engine: "WalkEngine | None" = None,
) -> tuple[int, int]:
    """Bit-packed twin of :func:`_per_source_stats` for Algorithm 2 totals.

    Algorithm 2's objective estimates only need the *totals*
    ``sum_u r_u`` and ``sum_u t_u``, so the per-source scatter
    (``np.add.at``) can be replaced by packing each chunk's hit flags
    (``np.packbits``) and popcounting them — the coverage kernel's
    aggregation (DESIGN.md §8) applied to fresh Algorithm 2 walks.  The
    walk calls and chunk boundaries are identical to
    :func:`_per_source_stats`, so the RNG stream, the walks, and therefore
    the returned integers match that path exactly; the walks dominate the
    cost either way, so this switch is about wiring the kernel path, not
    speed.
    """
    from repro.core.coverage_kernel import popcount

    if engine is None:
        engine = get_engine(None)
    starts = np.repeat(sources, num_samples)
    r_total = 0
    t_total = 0
    for lo in range(0, starts.size, chunk_rows):
        rows = starts[lo : lo + chunk_rows]
        hits = engine.walk_first_hits(graph, rows, length, mask, seed=rng)
        hit_mask = hits >= 0
        r_total += popcount(np.packbits(hit_mask))
        t_total += int(np.where(hit_mask, hits, 0).sum(dtype=np.int64))
    return r_total, t_total


def estimate_hitting_time(
    graph: Graph,
    source: int,
    targets: Collection[int],
    length: int,
    num_samples: int,
    seed: "int | np.random.Generator | None" = None,
    engine: "str | WalkEngine | None" = None,
) -> float:
    """Unbiased estimate of the generalized hitting time ``h^L_uS`` (Eq. 9)."""
    _check_common(length, num_samples)
    mask = _target_mask(graph, targets)
    rng = resolve_rng(seed)
    r, t = _per_source_stats(
        graph, np.asarray([source], dtype=np.int64), mask, length, num_samples,
        rng, engine=get_engine(engine),
    )
    return float((t[0] + (num_samples - r[0]) * length) / num_samples)


def estimate_hit_probability(
    graph: Graph,
    source: int,
    targets: Collection[int],
    length: int,
    num_samples: int,
    seed: "int | np.random.Generator | None" = None,
    engine: "str | WalkEngine | None" = None,
) -> float:
    """Unbiased estimate of ``E[X^L_uS] = p^L_uS`` (Eq. 10)."""
    _check_common(length, num_samples)
    mask = _target_mask(graph, targets)
    rng = resolve_rng(seed)
    r, _ = _per_source_stats(
        graph, np.asarray([source], dtype=np.int64), mask, length, num_samples,
        rng, engine=get_engine(engine),
    )
    return float(r[0] / num_samples)


def estimate_pairwise_hitting_time(
    graph: Graph,
    source: int,
    target: int,
    length: int,
    num_samples: int,
    seed: "int | np.random.Generator | None" = None,
    engine: "str | WalkEngine | None" = None,
) -> float:
    """Estimate of the node-to-node hitting time ``h^L_uv`` (Eq. 1).

    The special case ``S = {v}`` of Eq. 9 — the estimator of Sarkar et
    al. [30] that the paper generalizes.
    """
    return estimate_hitting_time(
        graph, source, [target], length, num_samples, seed=seed, engine=engine
    )


def estimate_objectives(
    graph: Graph,
    targets: Collection[int],
    length: int,
    num_samples: int,
    seed: "int | np.random.Generator | None" = None,
    engine: "str | WalkEngine | None" = None,
    gain_backend: "str | None" = None,
) -> ObjectiveEstimates:
    """Algorithm 2: unbiased estimates of ``F1(S)`` and ``F2(S)`` together.

    ``gain_backend`` picks the aggregation: ``"entries"`` scatters
    per-source stats, ``"bitset"`` packs the hit flags and popcounts the
    totals (:func:`_packed_totals`).  Both consume the same walks from the
    same stream, so the estimates are bit-identical.
    """
    # Imported lazily: repro.core.coverage_kernel imports this package.
    from repro.core.coverage_kernel import validate_gain_backend

    gain_backend = validate_gain_backend(gain_backend)
    _check_common(length, num_samples)
    mask = _target_mask(graph, targets)
    rng = resolve_rng(seed)
    outside = np.flatnonzero(~mask)
    if outside.size == 0:
        # S = V: every hitting time is 0, every node hits.
        return ObjectiveEstimates(
            f1=float(graph.num_nodes * length),
            f2=float(mask.sum()),
            num_samples=num_samples,
            length=length,
        )
    if gain_backend == "bitset":
        r_sum, t_sum = _packed_totals(
            graph, outside, mask, length, num_samples, rng,
            engine=get_engine(engine),
        )
    else:
        r, t = _per_source_stats(
            graph, outside, mask, length, num_samples, rng,
            engine=get_engine(engine),
        )
        r_sum, t_sum = int(r.sum()), int(t.sum())
    # hhat per source, Eq. 9; aggregation per Algorithm 2 lines 12/14, with
    # the Eq. 6 normalization n*L (see module docstring).
    hhat_total = float(t_sum + (num_samples * outside.size - r_sum) * length)
    hhat_total /= num_samples
    f1 = graph.num_nodes * length - hhat_total
    # lines 13/15.
    f2 = float(r_sum / num_samples + mask.sum())
    return ObjectiveEstimates(
        f1=f1, f2=f2, num_samples=num_samples, length=length
    )


def estimate_f1(
    graph: Graph,
    targets: Collection[int],
    length: int,
    num_samples: int,
    seed: "int | np.random.Generator | None" = None,
    engine: "str | WalkEngine | None" = None,
    gain_backend: "str | None" = None,
) -> float:
    """Unbiased estimate of ``F1(S) = |V\\S| L - sum h^L_uS``."""
    return estimate_objectives(
        graph, targets, length, num_samples, seed=seed, engine=engine,
        gain_backend=gain_backend,
    ).f1


def estimate_f2(
    graph: Graph,
    targets: Collection[int],
    length: int,
    num_samples: int,
    seed: "int | np.random.Generator | None" = None,
    engine: "str | WalkEngine | None" = None,
    gain_backend: "str | None" = None,
) -> float:
    """Unbiased estimate of ``F2(S) = E[sum_u X^L_uS]``."""
    return estimate_objectives(
        graph, targets, length, num_samples, seed=seed, engine=engine,
        gain_backend=gain_backend,
    ).f2
