"""Acceptance benchmark for the multiproc walk engine (DESIGN.md §11).

The standing claim: on the large-graph R=100 index-build workload (the
paper's canonical ``n x R`` batch, here the 10k-node power-law graph the
micro-kernel suite uses), the ``multiproc`` engine

* builds a **bit-identical** index to single-threaded ``csr`` (hard
  parity gate, always), and
* is **>= 2x faster** on machines with at least two cores (the floor
  honors ``--no-timing-gate``; on a single-core machine process
  parallelism cannot beat its own substrate, so the floor is reported
  but not asserted — the recorded ``*_x`` ratio still feeds the
  baseline-regression gate in ``tools/check_bench_regression.py``).

Also recorded: the raw batched-walk fan-out head-to-head, report-only —
index builds are where the records-streaming path pays off and are the
gated workload.
"""

import os

import numpy as np
import pytest

from repro.graphs.generators import power_law_graph
from repro.walks.backends import MultiprocWalkEngine, get_engine
from repro.walks.index import FlatWalkIndex, walker_major_starts

from benchmarks.conftest import best_of

#: Hard-assert the speedup floor only where the hardware can deliver it.
MULTI_CORE = (os.cpu_count() or 1) >= 2
SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def graph():
    """The micro-kernel suite's 10k-node power-law workload graph."""
    return power_law_graph(10_000, 50_000, seed=79)


@pytest.fixture(scope="module")
def engine():
    """A pool-forced multiproc engine, closed at module teardown."""
    multiproc = MultiprocWalkEngine(min_parallel_rows=0)
    yield multiproc
    multiproc.close()


def test_multiproc_index_build_speedup(graph, engine, bench_record, timing_gate):
    """R=100 index build: bit-identical to csr, >=2x on multi-core."""
    # Warm both sides out of the timed region: csr's per-graph plan, the
    # multiproc pool + shared-memory segments (persistent serving state).
    engine.batch_walks(graph, np.arange(4096), 2, seed=0)
    csr_index = FlatWalkIndex.build(graph, 6, 100, seed=5, engine="csr")
    multiproc_index = FlatWalkIndex.build(graph, 6, 100, seed=5, engine=engine)
    parity = (
        np.array_equal(csr_index.indptr, multiproc_index.indptr)
        and np.array_equal(csr_index.state, multiproc_index.state)
        and np.array_equal(csr_index.hop, multiproc_index.hop)
    )
    bench_record("multiproc.index_parity", bool(parity))
    assert parity, "multiproc index differs from csr"

    csr_s, _ = best_of(
        2, lambda: FlatWalkIndex.build(graph, 6, 100, seed=5, engine="csr")
    )
    multiproc_s, _ = best_of(
        2, lambda: FlatWalkIndex.build(graph, 6, 100, seed=5, engine=engine)
    )
    speedup = csr_s / multiproc_s
    print(
        f"\nindex build (n=10k power-law, R=100, L=6, B=1M rows): "
        f"csr {csr_s:.3f} s, multiproc {multiproc_s:.3f} s "
        f"-> {speedup:.2f}x on {os.cpu_count()} core(s), "
        f"{engine.num_procs} worker(s)"
    )
    bench_record("multiproc.index_build_csr_s", csr_s)
    bench_record("multiproc.index_build_multiproc_s", multiproc_s)
    bench_record("multiproc.index_build_speedup_x", speedup)
    if timing_gate and MULTI_CORE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"multiproc only {speedup:.2f}x faster than csr "
            f"(floor {SPEEDUP_FLOOR}x on {os.cpu_count()} cores)"
        )
    elif speedup < SPEEDUP_FLOOR:
        reason = "single core" if not MULTI_CORE else "--no-timing-gate"
        print(
            f"TIMING (report-only, {reason}): multiproc speedup "
            f"{speedup:.2f}x < {SPEEDUP_FLOOR}x floor"
        )


def test_multiproc_batch_walks_head_to_head(graph, engine, bench_record):
    """Raw fan-out walk generation vs csr (report-only timings)."""
    starts = walker_major_starts(graph.num_nodes, 100)
    csr = get_engine("csr")
    parity = np.array_equal(
        csr.batch_walks(graph, starts[:50_000], 6, seed=3),
        engine.batch_walks(graph, starts[:50_000], 6, seed=3),
    )
    bench_record("multiproc.batch_walks_parity", bool(parity))
    assert parity
    csr_s, _ = best_of(2, lambda: csr.batch_walks(graph, starts, 6, seed=1))
    multiproc_s, _ = best_of(
        2, lambda: engine.batch_walks(graph, starts, 6, seed=1)
    )
    print(
        f"\nbatched walks (B=1M, L=6): csr {csr_s:.3f} s, "
        f"multiproc {multiproc_s:.3f} s -> {csr_s / multiproc_s:.2f}x"
    )
    bench_record("multiproc.batch_walks_csr_s", csr_s)
    bench_record("multiproc.batch_walks_multiproc_s", multiproc_s)
