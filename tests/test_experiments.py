"""Tests for the experiment harness: config, runner, reporting."""

import pytest

from repro.errors import ParameterError
from repro.experiments.config import HarnessConfig, default_config
from repro.experiments.reporting import ExperimentTable, format_table, format_value
from repro.experiments.runner import ALGORITHMS, quality_series, run_algorithm


class TestConfig:
    def test_defaults(self):
        cfg = HarnessConfig()
        assert 0 < cfg.scale <= 1
        assert cfg.length == 6

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        monkeypatch.setenv("REPRO_R", "42")
        monkeypatch.setenv("REPRO_SEED", "7")
        cfg = default_config()
        assert cfg.scale == 0.5
        assert cfg.num_replicates == 42
        assert cfg.seed == 7

    def test_with_overrides(self):
        cfg = HarnessConfig().with_overrides(scale=0.1)
        assert cfg.scale == 0.1

    def test_validation(self):
        with pytest.raises(ParameterError):
            HarnessConfig(scale=0.0)
        with pytest.raises(ParameterError):
            HarnessConfig(num_replicates=0)
        with pytest.raises(ParameterError):
            HarnessConfig(budgets=(-1,))


class TestRunner:
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_every_algorithm_runs(self, name, small_power_law):
        kwargs = {"num_replicates": 10, "seed": 1}
        result = run_algorithm(name, small_power_law, 3, 3, **kwargs)
        assert len(result.selected) == 3

    def test_unknown_algorithm(self, small_power_law):
        with pytest.raises(ParameterError):
            run_algorithm("Oracle", small_power_law, 2, 3)

    def test_quality_series_points(self, small_power_law):
        result = run_algorithm("Degree", small_power_law, 6, 4)
        points = quality_series(small_power_law, result, [2, 4, 6], 4)
        assert [p.k for p in points] == [2, 4, 6]
        # AHT non-increasing in k (nested selections), EHN non-decreasing.
        ahts = [p.aht for p in points]
        ehns = [p.ehn for p in points]
        assert all(a >= b - 1e-9 for a, b in zip(ahts, ahts[1:]))
        assert all(a <= b + 1e-9 for a, b in zip(ehns, ehns[1:]))

    def test_quality_series_budget_too_large(self, small_power_law):
        result = run_algorithm("Degree", small_power_law, 3, 4)
        with pytest.raises(ParameterError):
            quality_series(small_power_law, result, [5], 4)

    def test_shared_index(self, small_power_law):
        from repro.walks.index import FlatWalkIndex

        index = FlatWalkIndex.build(small_power_law, 3, 8, seed=5)
        a = run_algorithm("ApproxF1", small_power_law, 3, 3, index=index)
        b = run_algorithm("ApproxF1", small_power_law, 3, 3, index=index)
        assert a.selected == b.selected


class TestReporting:
    def test_add_row_validates_width(self):
        table = ExperimentTable(title="t", columns=("a", "b"))
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_and_filtered(self):
        table = ExperimentTable(title="t", columns=("algo", "k", "v"))
        table.add_row("A", 1, 0.5)
        table.add_row("A", 2, 0.7)
        table.add_row("B", 1, 0.9)
        assert table.column("k") == [1, 2, 1]
        assert table.filtered(algo="A", k=2) == [("A", 2, 0.7)]

    def test_str_contains_rows_and_notes(self):
        table = ExperimentTable(
            title="demo", columns=("x",), notes=["a note"]
        )
        table.add_row(3.14159)
        text = str(table)
        assert "demo" in text
        assert "3.1416" in text
        assert "a note" in text

    def test_format_value(self):
        assert format_value(1234.5) == "1,234.5"
        assert format_value(0.25) == "0.25"
        assert format_value(float("nan")) == "nan"
        assert format_value(True) == "True"
        assert format_value("x") == "x"

    def test_format_table_alignment(self):
        text = format_table("t", ["col"], [["a"], ["bb"]])
        lines = text.splitlines()
        assert lines[1].startswith("col")
        assert len(lines) == 5  # title, header, rule, 2 rows


class TestFiguresSmoke:
    """Tiny-scale smoke of every figure entry point (full scale runs live in
    benchmarks/)."""

    @pytest.fixture
    def tiny(self):
        return HarnessConfig(
            scale=0.02, num_replicates=10, seed=5, budgets=(2, 4), length=3
        )

    def test_table2(self, tiny):
        from repro.experiments.figures import table2

        table = table2(tiny)
        assert len(table.rows) == 4
        assert table.column("name") == [
            "CAGrQc", "CAHepPh", "Brightkite", "Epinions",
        ]

    def test_fig2_shape(self, tiny):
        from repro.experiments.figures import fig2

        table = fig2(tiny, r_values=(10,), lengths=(3,), k=3)
        algos = set(table.column("algorithm"))
        assert algos == {"DPF1", "ApproxF1"}

    def test_fig3_shape(self, tiny):
        from repro.experiments.figures import fig3

        table = fig3(tiny, r_values=(10,), lengths=(3,), k=3)
        assert set(table.column("algorithm")) == {"DPF2", "ApproxF2"}

    def test_fig4_rows(self, tiny):
        from repro.experiments.figures import fig4

        table = fig4(tiny, lengths=(3,), num_replicates=10, k=3)
        assert len(table.rows) == 4
        assert all(row[-1] >= 0 for row in table.rows)

    def test_fig5_rows(self, tiny):
        from repro.experiments.figures import fig5

        table = fig5(tiny, r_values=(5, 10), lengths=(3,), k=3)
        assert len(table.rows) == 4

    def test_fig6_fig7(self, tiny):
        from repro.experiments.figures import fig6_fig7

        aht, ehn = fig6_fig7(tiny, datasets=["CAGrQc"])
        assert len(aht.rows) == 4 * 2  # 4 algorithms x 2 budgets
        assert len(ehn.rows) == 8

    def test_fig8(self, tiny):
        from repro.experiments.figures import fig8

        table = fig8(tiny, dataset="CAGrQc", budgets=(2,), lengths=(3,))
        sweeps = set(table.column("sweep"))
        assert sweeps == {"vs-k", "vs-L"}

    def test_fig9(self, tiny):
        from repro.experiments.figures import fig9

        cfg = tiny.with_overrides(scale=0.002)
        table = fig9(cfg, indices=(1, 2), k=5, length=3, num_replicates=5)
        assert len(table.rows) == 4
        nodes = table.column("nodes")
        assert nodes[2] == 2 * nodes[0]

    def test_fig10(self, tiny):
        from repro.experiments.figures import fig10

        table = fig10(tiny, datasets=("CAGrQc",), lengths=(2, 3), k=4)
        assert set(table.column("L")) == {2, 3}
        assert len(table.rows) == 2 * 4
