"""Incrementally maintained walk index (DESIGN.md §9.2).

The static :meth:`~repro.walks.index.FlatWalkIndex.build` threads one RNG
stream through all ``n * R`` walks, so a single edge edit perturbs every
walk sampled after it — nothing short of a full rebuild reproduces the
same index.  :class:`DynamicWalkIndex` removes that coupling with *frozen
uniforms*: at build time it records the exact per-``(walk, hop)`` uniform
draws the selected walk engine consumes, making every trajectory a pure
deterministic function of ``(uniforms[row], graph)``.

That functional form yields the two properties this module is built on:

* **Locality.**  A walk can only change if it *visits a modified node with
  hops still left to take* — everywhere else the frozen uniforms map onto
  unchanged neighbor lists and reproduce the old trajectory step for step.
  The dirty set of an edit batch is therefore derivable from the cached
  trajectories alone.
* **Bit-identity.**  Re-walking exactly the dirty rows against the edited
  graph produces the same walk matrix — and, after patching the CSR-by-hit
  entry arrays, the same index — as a from-scratch
  :meth:`DynamicWalkIndex.build` on the edited graph with the same seed
  material.  ``tests/test_dynamic.py`` pins this with a hypothesis
  property over all three walk engines, and
  ``benchmarks/bench_dynamic_updates.py`` gates it (plus a >= 5x
  end-to-end speedup) in CI.

Entries are kept in the *canonical* order — grouped by hit node, sorted
by state within each group — that every builder in the package now emits
(the static builder canonicalizes in
:meth:`~repro.walks.index.FlatWalkIndex._from_records`).  A dynamic
index is therefore byte-identical — not merely set-equivalent — to a
static rebuild whenever the ``n · R`` batch fits one static-build chunk
(``chunk_rows``, default ``2**19``); past that the static builder's
chunked stream consumption legitimately produces different *walks*, so
only the full-batch frozen-uniform discipline here is authoritative.
Canonical order is also what keeps edits cheap: a patch removes and
merges instead of re-sorting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.walks.backends import WalkEngine, get_engine
from repro.walks.engine import batch_first_hits
from repro.walks.index import FlatWalkIndex, walker_major_starts
from repro.walks.parallel import first_visit_records as _first_visit_records
from repro.dynamic.graph import DynamicGraph, EditBatch, edit_graph

__all__ = [
    "DynamicWalkIndex",
    "DynamicUpdateStats",
    "replay_walks",
    "engine_uniforms",
]


def _check_build_params(num_nodes: int, length: int, num_replicates: int) -> None:
    if num_nodes < 0:
        raise ParameterError("num_nodes must be >= 0")
    if length < 0:
        raise ParameterError("walk length L must be >= 0")
    if num_replicates < 1:
        raise ParameterError("number of replicates R must be >= 1")


def _resolve_entropy(seed: "int | None") -> int:
    """Seed material for the frozen uniform stream.

    The dynamic index must be able to *regenerate* its uniforms (e.g.
    after a journal-aware snapshot reload), so only replayable seeds are
    accepted: an ``int``, or ``None`` for one fresh entropy draw that is
    then recorded.  A caller-managed ``Generator`` has hidden state and is
    rejected.
    """
    if seed is None:
        return int(np.random.SeedSequence().generate_state(1, np.uint64)[0])
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ParameterError("integer seeds must be non-negative")
        return int(seed)
    raise ParameterError(
        "DynamicWalkIndex needs a replayable seed (int or None); a "
        "Generator instance cannot be re-derived for incremental updates"
    )


def engine_uniforms(
    entropy: int,
    batch: int,
    length: int,
    num_shards: int = 0,
) -> np.ndarray:
    """The uniform draws a walk engine consumes for one full batch call.

    Returns a walk-major ``(B, L)`` array: ``out[b, t - 1]`` is the
    uniform that decides walk ``b``'s hop ``t`` — walk-major so the
    incremental path can slice a dirty-row subset with contiguous reads.
    Every registered backend burns exactly one ``rng.random(batch)`` per
    hop from a single PCG64 stream — the sequential engines draw it
    outright, the sharded/multiproc engines slice it per shard
    (:mod:`repro.walks.parallel`) — which is precisely
    ``default_rng(entropy).random((L, B))`` read row by row, so one
    frozen-uniform discipline reproduces all of them.  ``num_shards > 0``
    selects the *legacy* per-shard ``SeedSequence`` discipline of
    pre-unification sharded snapshots, kept so their reloaded journals
    keep replaying bit-identically.
    """
    if num_shards > 0:
        # Legacy replay path: snapshots written before the walk backends
        # were unified onto one sliceable stream stored the sharded
        # engine's old per-shard SeedSequence discipline; regenerating
        # their uniforms must keep matching the cached trajectories.
        # New builds always record ``num_shards == 0``.
        rng = np.random.default_rng(entropy)
        shards = max(1, min(num_shards, batch))
        children = rng.spawn(shards)
        base, rem = divmod(batch, shards)
        sizes = [base + 1] * rem + [base] * (shards - rem)
        parts = [
            child.random((length, size))
            for child, size in zip(children, sizes)
        ]
        return np.ascontiguousarray(np.concatenate(parts, axis=1).T)
    return np.ascontiguousarray(
        np.random.default_rng(entropy).random((length, batch)).T
    )


def replay_walks(
    graph: Graph, starts: np.ndarray, uniforms: np.ndarray
) -> np.ndarray:
    """Deterministic walk kernel: trajectories from frozen uniforms.

    Mirrors :func:`repro.walks.engine.batch_walks` exactly — same
    ``floor(u * deg)`` neighbor choice, same stay-put dangling convention,
    one uniform consumed per walk per hop — but reads the uniforms from
    ``uniforms[:, t - 1]`` (walk-major, see :func:`engine_uniforms`)
    instead of an RNG, so any subset of rows can be recomputed
    independently of the rest of the batch.  Returns the ``(B, L + 1)``
    walk matrix.
    """
    starts = np.asarray(starts, dtype=np.int64)
    batch = starts.size
    if uniforms.ndim != 2 or uniforms.shape[0] != batch:
        raise ParameterError("uniforms must have shape (len(starts), L)")
    length = uniforms.shape[1]
    if batch and (starts.min() < 0 or starts.max() >= graph.num_nodes):
        raise ParameterError("start nodes out of range")
    walks = np.empty((batch, length + 1), dtype=np.int32)
    walks[:, 0] = starts
    if length == 0 or batch == 0:
        return walks
    indptr = graph.indptr
    indices = graph.indices
    degrees = graph.degrees
    current = starts.copy()
    for t in range(1, length + 1):
        deg = degrees[current]
        movable = deg > 0
        offsets = (uniforms[:, t - 1] * deg).astype(np.int64)
        nxt = current.copy()
        rows = current[movable]
        nxt[movable] = indices[indptr[rows] + offsets[movable]]
        walks[:, t] = nxt
        current = nxt
    return walks


@dataclass(frozen=True)
class DynamicUpdateStats:
    """What one :meth:`DynamicWalkIndex.sync` (or batch) actually did."""

    batches: int
    edits: int
    resampled_rows: int
    total_rows: int
    entries_removed: int
    entries_added: int

    @property
    def resampled_fraction(self) -> float:
        """Share of materialized walks that had to be regenerated."""
        return self.resampled_rows / self.total_rows if self.total_rows else 0.0


class DynamicWalkIndex:
    """A :class:`~repro.walks.index.FlatWalkIndex` that survives edge churn.

    Attributes
    ----------
    graph:
        The snapshot the index currently describes.
    flat:
        The maintained index in canonical ``(hit, state)`` order — feed it
        anywhere a :class:`FlatWalkIndex` is accepted (``approx_greedy_fast
        (index=...)``, :class:`~repro.core.coverage_kernel.CoverageKernel`,
        ...).
    walks:
        The materialized ``(n * R, L + 1)`` trajectories in walker-major
        row order (row ``b`` is replicate ``b % R`` of walker ``b // R``).
    epoch:
        Journal position: how many edit batches have been folded in.
    """

    def __init__(
        self,
        graph: Graph,
        flat: FlatWalkIndex,
        walks: np.ndarray,
        seed_entropy: int,
        engine_name: str,
        num_shards: int = 0,
        epoch: int = 0,
        uniforms: "np.ndarray | None" = None,
        keys: "np.ndarray | None" = None,
    ):
        self.graph = graph
        self.flat = flat
        self.walks = walks
        self.seed_entropy = int(seed_entropy)
        self.engine_name = engine_name
        self.num_shards = int(num_shards)
        self.epoch = int(epoch)
        self._uniforms = uniforms
        # Canonical sort keys `hit * num_states + state`, maintained in
        # lock-step with the entry arrays so a patch can locate removals
        # by binary search instead of recomputing or re-sorting.
        self._keys = keys
        self._rows: "np.ndarray | None" = None
        self._crows = None  # CompressedRows cache, patched across edits
        # Reusable splice buffers (internal arrays only — never aliased
        # into the exposed FlatWalkIndex), so steady-state syncs do not
        # re-fault fresh pages every batch.  `_spare_keys` ping-pongs
        # with the live keys backing.
        self._scratch: dict = {}
        self._spare_keys: "np.ndarray | None" = None

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        length: int,
        num_replicates: int,
        seed: "int | None" = None,
        engine: "str | WalkEngine | None" = None,
    ) -> "DynamicWalkIndex":
        """Materialize walks and index under frozen per-walk uniforms.

        The trajectories are bit-identical to what
        ``engine.batch_walks(graph, starts, L, seed=default_rng(seed))``
        produces for the full walker-major batch — the frozen-uniform
        replay consumes the same stream the engine would.  Both builders
        emit canonical ``(hit, state)`` order, so when the batch fits
        one static-build chunk (``n · R <= chunk_rows``) the entry
        arrays are byte-identical to the static builder's too; for
        larger batches the static builder's per-chunk stream consumption
        yields different walks, and this full-batch discipline is the
        one the incremental machinery reproduces.
        """
        _check_build_params(graph.num_nodes, length, num_replicates)
        walk_engine = get_engine(engine)
        # Every registered backend consumes (or slices) the same logical
        # stream, so one frozen-uniform discipline reproduces them all;
        # num_shards stays 0 except when reloading pre-unification
        # snapshots (see engine_uniforms).
        entropy = _resolve_entropy(seed)
        n = graph.num_nodes
        starts = walker_major_starts(n, num_replicates)
        uniforms = engine_uniforms(entropy, starts.size, length)
        walks = replay_walks(graph, starts, uniforms)
        states = _states_of_rows(np.arange(starts.size), n, num_replicates)
        hits, state_vals, hops = _first_visit_records(walks, states)
        flat, keys = _canonical_flat(
            hits, state_vals, hops, n, length, num_replicates
        )
        return cls(
            graph=graph,
            flat=flat,
            walks=walks,
            seed_entropy=entropy,
            engine_name=walk_engine.name,
            uniforms=uniforms,
            keys=keys,
        )

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.flat.num_nodes

    @property
    def length(self) -> int:
        return self.flat.length

    @property
    def num_replicates(self) -> int:
        return self.flat.num_replicates

    @property
    def num_states(self) -> int:
        return self.flat.num_states

    @property
    def total_entries(self) -> int:
        return self.flat.total_entries

    @property
    def keys(self) -> np.ndarray:
        """Maintained canonical sort keys ``hit * num_states + state``.

        Rebuilt once from the entry arrays after a snapshot reload; kept
        in lock-step with them by every patch.
        """
        if self._keys is None:
            owners = np.repeat(
                np.arange(self.num_nodes, dtype=np.int64),
                np.diff(self.flat.indptr),
            )
            self._keys = owners * self.num_states + self.flat.state
        return self._keys

    def _buffer(self, name: str, size: int, dtype) -> np.ndarray:
        """A pooled scratch array of at least ``size`` (grown 1.25x)."""
        cached = self._scratch.get(name)
        if cached is None or cached.size < size or cached.dtype != dtype:
            cached = np.empty(max(size, int(size * 1.25)), dtype=dtype)
            self._scratch[name] = cached
        return cached[:size]

    @property
    def uniforms(self) -> np.ndarray:
        """The frozen ``(n R, L)`` uniform stream (regenerated on demand).

        Journal-aware snapshots persist only the seed material, not the
        14-bytes-per-hop stream itself; the first incremental update after
        a reload regenerates it from ``(entropy, engine, num_shards)``.
        """
        if self._uniforms is None:
            self._uniforms = engine_uniforms(
                self.seed_entropy,
                self.walks.shape[0],
                self.length,
                self.num_shards,
            )
        return self._uniforms

    # ------------------------------------------------------------------
    def sync(self, dynamic_graph: DynamicGraph) -> DynamicUpdateStats:
        """Fold in every journal batch this index has not yet absorbed.

        The index may lag the journal by any number of batches; each is
        replayed in order against the matching intermediate snapshot, so
        after ``sync`` the index is exactly what :meth:`build` would
        produce on ``dynamic_graph.graph``.
        """
        if dynamic_graph.num_nodes != self.num_nodes:
            raise ParameterError(
                "dynamic graph and index disagree on the node count"
            )
        journal = dynamic_graph.journal
        if self.epoch > len(journal):
            raise ParameterError(
                f"index is at epoch {self.epoch} but the journal only has "
                f"{len(journal)} batches — wrong DynamicGraph?"
            )
        totals = [0, 0, 0, 0, 0]
        last_epoch = len(journal)
        for batch in journal[self.epoch :]:
            # The final snapshot is already materialized on the journal
            # owner; intermediate snapshots are re-derived per batch.
            known = dynamic_graph.graph if batch.epoch == last_epoch else None
            stats = self.apply_batch(batch, graph=known)
            totals[0] += stats.batches
            totals[1] += stats.edits
            totals[2] += stats.resampled_rows
            totals[3] += stats.entries_removed
            totals[4] += stats.entries_added
        return DynamicUpdateStats(
            batches=totals[0],
            edits=totals[1],
            resampled_rows=totals[2],
            total_rows=self.walks.shape[0],
            entries_removed=totals[3],
            entries_added=totals[4],
        )

    def apply_batch(
        self, batch: EditBatch, graph: "Graph | None" = None
    ) -> DynamicUpdateStats:
        """Apply one canonical :class:`EditBatch` (delete + insert edges).

        Derives the dirty set from the cached trajectories, re-walks only
        those rows under their frozen uniforms, and patches the entry
        arrays (and the packed bitset rows, when materialized) in place.
        ``graph`` may supply the already-edited snapshot (trusted to equal
        ``edit_graph(self.graph, batch...)``) to skip re-deriving it.
        """
        new_graph = (
            graph
            if graph is not None
            else edit_graph(self.graph, batch.inserts, batch.deletes)
        )
        rows = self._dirty_rows(batch.modified_nodes())
        removed = added = 0
        path = "noop"
        with obs.span(
            "dynamic.apply_batch", edits=batch.num_edits,
            resampled_rows=int(rows.size),
        ):
            if rows.size:
                replicates = self.num_replicates
                new_walks = replay_walks(
                    new_graph, rows // replicates, self.uniforms[rows]
                )
                if rows.size * 4 > self.walks.shape[0]:
                    # Past ~25% dirty, the sorted-merge splice moves more
                    # memory than simply re-extracting and re-sorting all
                    # records from the (mostly cached) walk matrix.
                    path = "rebuild"
                    dirty_states = _states_of_rows(
                        rows, self.num_nodes, replicates
                    )
                    removed = _first_visit_records(
                        self.walks[rows], dirty_states
                    )[0].size
                    before = self.flat.total_entries
                    self.walks[rows] = new_walks
                    self._rebuild_entries_from_walks()
                    added = self.flat.total_entries - before + removed
                else:
                    path = "incremental"
                    removed, added = self._patch_entries(rows, new_walks)
                    self.walks[rows] = new_walks
        if obs.enabled():
            obs.inc(
                "dynamic_updates_total",
                help="Edit batches applied, by update strategy.",
                path=path,
            )
            obs.observe(
                "dynamic_resampled_rows",
                int(rows.size),
                buckets=obs.COUNT_BUCKETS,
                help="Walk rows resampled per edit batch.",
            )
        self.graph = new_graph
        self.epoch += 1
        return DynamicUpdateStats(
            batches=1,
            edits=batch.num_edits,
            resampled_rows=int(rows.size),
            total_rows=self.walks.shape[0],
            entries_removed=removed,
            entries_added=added,
        )

    # ------------------------------------------------------------------
    def _rebuild_entries_from_walks(self) -> None:
        """Re-derive the entry arrays from the (updated) walk matrix.

        The large-batch path: same canonical result as the merge splice,
        reached by the same extraction + sort the from-scratch build uses
        — minus the walk generation, which is the part incremental
        maintenance always avoids.  Caches that patching would have
        updated in place are invalidated instead.
        """
        states = _states_of_rows(
            np.arange(self.walks.shape[0]), self.num_nodes,
            self.num_replicates,
        )
        hits, state_vals, hops = _first_visit_records(self.walks, states)
        self.flat, self._keys = _canonical_flat(
            hits, state_vals, hops, self.num_nodes, self.length,
            self.num_replicates,
        )
        self._spare_keys = None
        self._rows = None
        self._crows = None

    def _dirty_rows(self, touched: np.ndarray) -> np.ndarray:
        """Walk rows whose trajectory must be resampled for an edit.

        A walk changes only if it stands on a modified node with at least
        one hop left (positions ``0 .. L-1``).  The index itself answers
        that without scanning the walk matrix: a walk visits node ``v``
        iff ``v`` is its walker (position 0) or the walk first-visits
        ``v`` (an entry — later revisits imply an earlier first visit).
        Only a first visit *at hop L exactly* is a visit with no hops
        left, so the dirty set is the touched nodes' entry states with
        ``hop < L`` plus all rows of the touched walkers — ``O(entries of
        touched nodes)`` instead of ``O(n R L)``.
        """
        n = self.num_nodes
        replicates = self.num_replicates
        length = self.length
        if length == 0 or touched.size == 0 or self.walks.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        parts = []
        for v in touched:
            states, hops = self.flat.entries_for(int(v))
            states = states[hops < length].astype(np.int64)
            parts.append((states % n) * replicates + states // n)
        walker_rows = (
            touched[:, None] * replicates
            + np.arange(replicates, dtype=np.int64)[None, :]
        ).ravel()
        parts.append(walker_rows)
        return np.unique(np.concatenate(parts))

    # ------------------------------------------------------------------
    def _patch_entries(
        self, rows: np.ndarray, new_walks: np.ndarray
    ) -> tuple[int, int]:
        """Splice the resampled rows' records into the canonical arrays.

        Drops every entry owned by a dirty state, extracts the fresh
        records, and merges them back with one ``searchsorted`` over the
        maintained canonical keys — ``O(E + C log E)`` for ``C`` changed
        records, never a full re-sort.  The removed records' hit counts
        come from the dirty rows' *old* trajectories (their first visits
        are exactly the entries being dropped), so no full-length pass
        beyond the keep/merge splice itself is needed.
        """
        n = self.num_nodes
        replicates = self.num_replicates
        num_states = self.num_states
        flat = self.flat
        keys = self.keys
        dirty_states = _states_of_rows(rows, n, replicates)

        # The entries to drop are exactly the first visits of the dirty
        # rows' *old* trajectories, so their positions come from binary
        # search over the maintained keys — no full-length gather.
        old_hits, old_states, _ = _first_visit_records(
            self.walks[rows], dirty_states
        )
        old_keys = np.sort(old_hits * num_states + old_states)
        removed_pos = np.searchsorted(keys, old_keys)
        if old_keys.size and (
            removed_pos[-1] >= keys.size
            or not np.array_equal(keys[removed_pos], old_keys)
        ):
            raise ParameterError(
                "walk index is inconsistent with its cached trajectories "
                "(was the walks matrix mutated externally?)"
            )
        keep = self._buffer("keep", keys.size, bool)
        keep[:] = True
        keep[removed_pos] = False
        kept_keys = keys[keep]
        kept_state = flat.state[keep]
        kept_hop = flat.hop[keep]

        hits, states, hops = _first_visit_records(new_walks, dirty_states)
        new_keys = hits * num_states + states
        order = np.argsort(new_keys)
        new_keys = new_keys[order]

        positions = np.searchsorted(kept_keys, new_keys)
        total = kept_keys.size + new_keys.size
        new_slots = positions + np.arange(new_keys.size, dtype=np.int64)
        kept_mask = self._buffer("kept_mask", total, bool)
        kept_mask[:] = True
        kept_mask[new_slots] = False
        # The merged keys land in the spare backing; the current keys'
        # backing becomes next batch's spare (ping-pong, zero copies).
        # The exposed entry arrays are allocated fresh — consumers may
        # hold references to the previous ones; only scratch is pooled.
        spare = self._spare_keys
        if spare is None or spare.size < total:
            spare = np.empty(max(total, int(total * 1.25)), dtype=np.int64)
        merged_keys = spare[:total]
        merged_keys[kept_mask] = kept_keys
        merged_keys[new_slots] = new_keys
        merged_state = np.empty(total, dtype=flat.state.dtype)
        merged_state[kept_mask] = kept_state
        merged_state[new_slots] = states[order].astype(flat.state.dtype)
        merged_hop = np.empty(total, dtype=np.int16)
        merged_hop[kept_mask] = kept_hop
        merged_hop[new_slots] = hops[order].astype(np.int16)
        counts = (
            np.diff(flat.indptr)
            - np.bincount(old_hits, minlength=n)
            + np.bincount(hits, minlength=n)
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self.flat = FlatWalkIndex(
            indptr=indptr,
            state=merged_state,
            hop=merged_hop,
            num_nodes=n,
            length=self.length,
            num_replicates=replicates,
        )
        retiring = self._keys
        self._spare_keys = (
            retiring.base if retiring.base is not None else retiring
        )
        self._keys = merged_keys
        if self._rows is not None or self._crows is not None:
            changed = np.union1d(old_hits, hits)
            if self._rows is not None:
                from repro.core.coverage_kernel import patch_packed_rows

                patch_packed_rows(self._rows, self.flat, changed)
            if self._crows is not None:
                # Re-encodes only the changed rows' containers; returns a
                # new instance, never mutating the previous one.
                self._crows = self._crows.patched(self.flat, changed)
        return int(old_hits.size), int(hits.size)

    # ------------------------------------------------------------------
    def packed_hit_rows(self, max_bytes: "int | None" = None) -> np.ndarray:
        """Packed per-candidate coverage rows, patched across edits.

        First call materializes them via
        :meth:`FlatWalkIndex.packed_hit_rows`; later edit batches patch
        only the rows of hit nodes whose entry lists changed
        (:func:`repro.core.coverage_kernel.patch_packed_rows`).  The
        returned array is the live cache — treat it as read-only.

        When the flat index is backed by an mmap archive that stored the
        rows, ``FlatWalkIndex.packed_hit_rows`` hands back the read-only
        archive map; the dynamic cache copies it on first materialize,
        because the next edit batch patches the cache *in place* — a
        read-only map would fail the patch outright, and a writable map
        would silently write the patch through to the archive on disk.
        """
        if self._rows is None:
            rows = self.flat.packed_hit_rows(
                include_self=True, max_bytes=max_bytes
            )
            if not rows.flags.writeable:
                rows = np.array(rows, dtype=np.uint64, copy=True)
            self._rows = rows
        return self._rows

    def compressed_hit_rows(self):
        """Roaring compressed coverage rows, patched across edits.

        First call encodes them via
        :meth:`FlatWalkIndex.compressed_hit_rows`; later edit batches
        re-encode only the containers of changed rows
        (:meth:`~repro.walks.rows.CompressedRows.patched`), which builds
        a fresh instance instead of mutating — so starting from an
        archive-backed (read-only) instance is safe by construction.
        """
        if self._crows is None:
            self._crows = self.flat.compressed_hit_rows(include_self=True)
        return self._crows

    def selection_metrics(self, targets) -> dict:
        """Sampled coverage and AHT of a target set on the current index.

        ``coverage`` counts states whose walk hits the targets within
        ``L`` hops (hop 0 included — the F2 estimator's convention), and
        ``aht`` is the mean truncated first-hit hop (misses count ``L``,
        the F1 estimator's convention).
        """
        mask = np.zeros(self.num_nodes, dtype=bool)
        targets = np.asarray(list(targets), dtype=np.int64)
        if targets.size and (
            targets.min() < 0 or targets.max() >= self.num_nodes
        ):
            raise ParameterError("targets out of range")
        mask[targets] = True
        total = self.walks.shape[0]
        first = batch_first_hits(self.walks, mask)
        covered = int((first >= 0).sum())
        truncated = np.where(first >= 0, first, self.length)
        return {
            "coverage": covered,
            "coverage_fraction": covered / total if total else 0.0,
            "aht": float(truncated.mean()) if total else float("nan"),
            "num_states": total,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicWalkIndex(n={self.num_nodes}, R={self.num_replicates}, "
            f"L={self.length}, entries={self.total_entries}, "
            f"epoch={self.epoch}, engine={self.engine_name!r})"
        )


# ----------------------------------------------------------------------
def _states_of_rows(
    rows: np.ndarray, num_nodes: int, num_replicates: int
) -> np.ndarray:
    """Flattened ``D`` state ids of walker-major walk rows.

    Row ``b`` is replicate ``b % R`` of walker ``b // R``; its state is
    ``(b % R) * n + b // R``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    return (rows % num_replicates) * num_nodes + rows // num_replicates


def _canonical_flat(
    hits: np.ndarray,
    states: np.ndarray,
    hops: np.ndarray,
    num_nodes: int,
    length: int,
    num_replicates: int,
) -> tuple[FlatWalkIndex, np.ndarray]:
    """Assemble records into canonical ``(hit, state)`` order.

    States are unique within a hit node (first-visit dedup), so the key
    ``hit * num_states + state`` is a strict total order and the layout is
    independent of record generation order — the property that lets
    incremental patches merge instead of re-sorting.  Returns the index
    and its sorted key array (maintained by the patches).
    """
    num_states = num_nodes * num_replicates
    keys = hits * num_states + states
    order = np.argsort(keys)
    counts = (
        np.bincount(hits, minlength=num_nodes)
        if hits.size
        else np.zeros(num_nodes, dtype=np.int64)
    )
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    state_dtype = (
        np.int32 if num_states < np.iinfo(np.int32).max else np.int64
    )
    flat = FlatWalkIndex(
        indptr=indptr,
        state=states[order].astype(state_dtype),
        hop=hops[order].astype(np.int16),
        num_nodes=num_nodes,
        length=length,
        num_replicates=num_replicates,
    )
    return flat, keys[order]
