"""Acceptance benchmark for compressed coverage rows (DESIGN.md §16).

The standing claims on the R=100 row-compression workload (a 2k-node
power-law graph at L=10 — 200k states per row, 50 MB of dense packed
rows; big enough that row bytes dominate, small enough for the shared
bench job):

* the roaring-style container codec holds the coverage rows in **>= 4x**
  fewer bytes than the dense ``n x ceil(nR/64)`` packed matrix (hard
  gate — the codec is deterministic, so the ratio does not depend on
  the runner), while the bitset greedy stays **bit-identical** across
  every ``rows_format`` (hard parity gate), and
* bitset greedy selection with compressed rows stays within **2x** of
  the dense-rows run (soft timing gate, honors ``--no-timing-gate``).
  The greedy hot path never touches the rows, so this bounds the
  construction + oracle overhead, not the kernel inner loop.

Also recorded, report-only: mmap archive sizes with dense vs compressed
stored rows — the compressed variant is the "rows past the 1 GiB cap"
story at bench scale.
"""

import numpy as np
import pytest

from repro.core.approx_fast import approx_greedy_fast
from repro.core.coverage_kernel import CoverageKernel
from repro.graphs.generators import power_law_graph
from repro.walks.index import FlatWalkIndex
from repro.walks.persistence import load_index, save_index
from repro.walks.rows import ROWS_FORMATS

from benchmarks.conftest import best_of

ROW_COMPRESSION_FLOOR = 4.0
QUERY_SLOWDOWN_CEILING = 2.0


@pytest.fixture(scope="module")
def workload():
    graph = power_law_graph(2_000, 20_000, seed=79)
    index = FlatWalkIndex.build(graph, 10, 100, seed=5)
    return graph, index


def test_row_bytes_and_decode_parity(workload, bench_record):
    """Row bytes: compressed >= 4x smaller, decodes identically (hard)."""
    _, index = workload
    dense_rows = index.packed_hit_rows(include_self=True)
    crows = index.compressed_hit_rows(include_self=True)
    parity = np.array_equal(
        crows.decode_rows(0, index.num_nodes), dense_rows
    )
    bench_record("row_compression.decode_parity", bool(parity))
    assert parity, "compressed rows decoded a different coverage matrix"

    dense_bytes = dense_rows.nbytes
    compressed_bytes = crows.nbytes
    ratio = dense_bytes / compressed_bytes
    print(
        f"\nrow bytes (n=2k power-law, L=10, R=100): "
        f"dense {dense_bytes:,}, compressed {compressed_bytes:,} "
        f"-> {ratio:.2f}x"
    )
    bench_record("row_compression.dense_row_bytes", dense_bytes)
    bench_record("row_compression.compressed_row_bytes", compressed_bytes)
    bench_record("row_compression.compression_ratio_x", ratio)
    assert ratio >= ROW_COMPRESSION_FLOOR, (
        f"compressed rows only {ratio:.2f}x smaller than dense "
        f"(floor {ROW_COMPRESSION_FLOOR}x)"
    )


def test_selection_parity_across_rows_formats(workload, bench_record):
    """Bitset greedy: identical selections for every rows_format (hard)."""
    graph, index = workload
    k = 32
    results = {
        rows_format: approx_greedy_fast(
            graph, k, index.length, index=index, objective="f2",
            gain_backend="bitset", rows_format=rows_format,
        )
        for rows_format in ROWS_FORMATS
    }
    want = results["dense"]
    parity = all(
        got.selected == want.selected and got.gains == want.gains
        for got in results.values()
    )
    bench_record("row_compression.selection_parity", bool(parity))
    assert parity, "rows_format changed the bitset greedy selection"
    # The f2 refresh oracle must agree container-wise vs dense too.
    dense_kernel = CoverageKernel(index, "f2", rows_format="dense")
    crows_kernel = CoverageKernel(index, "f2", rows_format="compressed")
    for node in want.selected[:4]:
        dense_kernel.select(int(node))
        crows_kernel.select(int(node))
    oracle_parity = np.array_equal(
        dense_kernel.refresh_gains(), crows_kernel.refresh_gains()
    )
    bench_record("row_compression.oracle_parity", bool(oracle_parity))
    assert oracle_parity


def test_compressed_rows_query_slowdown(workload, bench_record, timing_gate):
    """Bitset greedy with compressed rows within 2x of dense (soft)."""
    graph, index = workload
    k = 32
    dense_s, want = best_of(
        3, lambda: approx_greedy_fast(
            graph, k, index.length, index=index, objective="f2",
            gain_backend="bitset", rows_format="dense",
        )
    )
    compressed_s, got = best_of(
        3, lambda: approx_greedy_fast(
            graph, k, index.length, index=index, objective="f2",
            gain_backend="bitset", rows_format="compressed",
        )
    )
    assert got.selected == want.selected

    speedup = dense_s / compressed_s
    print(
        f"\nbitset greedy k={k}: dense rows {dense_s:.3f} s, "
        f"compressed rows {compressed_s:.3f} s -> {speedup:.2f}x"
    )
    bench_record("row_compression.select_dense_rows_s", dense_s)
    bench_record("row_compression.select_compressed_rows_s", compressed_s)
    bench_record("row_compression.compressed_query_speedup_x", speedup)
    floor = 1.0 / QUERY_SLOWDOWN_CEILING
    if timing_gate:
        assert speedup >= floor, (
            f"compressed-rows queries {1 / speedup:.2f}x slower than "
            f"dense (ceiling {QUERY_SLOWDOWN_CEILING}x)"
        )
    elif speedup < floor:
        print(
            f"TIMING (report-only, --no-timing-gate): compressed-rows "
            f"queries {1 / speedup:.2f}x slower than dense "
            f"(ceiling {QUERY_SLOWDOWN_CEILING}x)"
        )


def test_archive_bytes_with_compressed_rows(workload, bench_record, tmp_path):
    """mmap archive size, dense vs compressed stored rows (report-only)."""
    graph, index = workload
    sizes = {}
    for rows_format in ("dense", "compressed"):
        path = save_index(
            index, tmp_path / f"walks-{rows_format}", graph=graph,
            format="mmap", rows_format=rows_format,
        )
        sizes[rows_format] = path.stat().st_size
        bench_record(
            f"row_compression.archive_rows_{rows_format}_bytes",
            sizes[rows_format],
        )
        loaded = load_index(path, graph=graph)
        assert loaded.total_entries == index.total_entries
    print(
        f"\nmmap archive: dense rows {sizes['dense']:,} B, "
        f"compressed rows {sizes['compressed']:,} B"
    )
    assert sizes["compressed"] < sizes["dense"]
