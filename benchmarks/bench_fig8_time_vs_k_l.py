"""Fig. 8: running time vs k (L=6) and vs L (k=100) on Epinions.

Paper shape: approximate-greedy time is a small constant multiple of the
baselines' and grows roughly linearly in k and L.
"""

from repro.experiments.figures import fig8


def test_fig8(benchmark, config, report):
    table = benchmark.pedantic(lambda: fig8(config), rounds=1, iterations=1)
    report(table, "fig8.txt")
    seconds = table.columns.index("seconds")
    lengths = sorted({row[2] for row in table.filtered(sweep="vs-L")})
    for algorithm in ("ApproxF1", "ApproxF2"):
        by_length = {
            row[2]: row[seconds]
            for row in table.filtered(sweep="vs-L", algorithm=algorithm)
        }
        # Longer walks cost more (index size is O(n R L)).
        assert by_length[max(lengths)] > by_length[min(lengths)]
    # All runs completed with sane timings.
    assert all(row[seconds] >= 0 for row in table.rows)
