"""Tests for the weighted/directed domination solvers."""

import pytest

from repro.errors import ParameterError
from repro.graphs.generators import power_law_graph
from repro.graphs.weighted import WeightedDiGraph
from repro.core.approx_fast import approx_greedy_fast
from repro.core.dp_greedy import dpf1, dpf2
from repro.core.weighted import (
    WeightedF1Objective,
    WeightedF2Objective,
    build_weighted_index,
    weighted_approx_greedy,
    weighted_dpf1,
    weighted_dpf2,
)


@pytest.fixture(scope="module")
def unit_digraph():
    """A unit-weight lift of a small undirected graph."""
    return WeightedDiGraph.from_undirected(power_law_graph(60, 180, seed=17))


class TestWeightedObjectives:
    def test_match_unweighted_on_unit_lift(self, unit_digraph, small_power_law):
        from repro.core.objectives import F1Objective, F2Objective

        wf1 = WeightedF1Objective(unit_digraph, 4)
        wf2 = WeightedF2Objective(unit_digraph, 4)
        f1 = F1Objective(small_power_law, 4)
        f2 = F2Objective(small_power_law, 4)
        for targets in ({0}, {1, 5}, {2, 9, 20}):
            assert wf1.value(targets) == pytest.approx(f1.value(targets))
            assert wf2.value(targets) == pytest.approx(f2.value(targets))

    def test_negative_length(self, unit_digraph):
        with pytest.raises(ParameterError):
            WeightedF1Objective(unit_digraph, -1)


class TestWeightedDpGreedy:
    def test_matches_unweighted_dp_on_unit_lift(self, unit_digraph, small_power_law):
        assert weighted_dpf1(unit_digraph, 4, 4).selected == dpf1(
            small_power_law, 4, 4
        ).selected
        assert weighted_dpf2(unit_digraph, 4, 4).selected == dpf2(
            small_power_law, 4, 4
        ).selected

    def test_weights_change_selection(self):
        # Directed star variants: node 0 points at 1..5; every other node
        # points at node 1 with huge weight, so walks funnel into 1.
        edges = [(0, i, 1.0) for i in range(1, 6)]
        edges += [(i, 1, 50.0) for i in range(2, 6)]
        edges += [(i, 0, 1.0) for i in range(2, 6)]
        g = WeightedDiGraph.from_edges(edges)
        result = weighted_dpf2(g, 1, 2)
        assert result.selected == (1,)


class TestWeightedApproxGreedy:
    def test_runs_and_distinct(self, unit_digraph):
        result = weighted_approx_greedy(
            unit_digraph, 6, 4, num_replicates=20, seed=1, objective="f2"
        )
        assert len(set(result.selected)) == 6
        assert result.params["weighted"] is True

    def test_unit_lift_close_to_unweighted(self, unit_digraph, small_power_law):
        # Same estimator, same graph distribution: objective values of the
        # two selections should be near-identical.
        from repro.core.objectives import F2Objective

        weighted = weighted_approx_greedy(
            unit_digraph, 5, 4, num_replicates=150, seed=5, objective="f2"
        )
        unweighted = approx_greedy_fast(
            small_power_law, 5, 4, num_replicates=150, seed=5, objective="f2"
        )
        objective = F2Objective(small_power_law, 4)
        assert objective.value(set(weighted.selected)) >= 0.95 * objective.value(
            set(unweighted.selected)
        )

    def test_lazy_matches_full(self, unit_digraph):
        index = build_weighted_index(unit_digraph, 4, 20, seed=3)
        lazy = weighted_approx_greedy(
            unit_digraph, 6, 4, index=index, objective="f1", lazy=True
        )
        full = weighted_approx_greedy(
            unit_digraph, 6, 4, index=index, objective="f1", lazy=False
        )
        assert lazy.selected == full.selected

    def test_k_validation(self, unit_digraph):
        with pytest.raises(ParameterError):
            weighted_approx_greedy(unit_digraph, -2, 3)

    def test_index_mismatch(self, unit_digraph):
        other = WeightedDiGraph.from_edges([(0, 1, 1.0)])
        index = build_weighted_index(other, 3, 5, seed=1)
        with pytest.raises(ParameterError):
            weighted_approx_greedy(unit_digraph, 2, 3, index=index)


class TestWeightedIndex:
    def test_entries_respect_direction(self):
        # Only arc 0 -> 1 exists: node 1's entries may only name walker 0.
        g = WeightedDiGraph.from_edges([(0, 1, 1.0)])
        index = build_weighted_index(g, 3, 10, seed=2)
        records = index.entry_records(1)
        assert records
        assert all(walker == 0 for _, walker, _ in records)
        assert index.entry_records(0) == []

    def test_param_validation(self):
        g = WeightedDiGraph.from_edges([(0, 1, 1.0)])
        with pytest.raises(ParameterError):
            build_weighted_index(g, -1, 5)
        with pytest.raises(ParameterError):
            build_weighted_index(g, 3, 0)
