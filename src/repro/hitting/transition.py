"""Random-walk transition operators.

The DP recursions of Theorems 2.1-2.3 are, in vector form, repeated
applications of the row-stochastic transition matrix ``P`` with
``P[u, w] = 1 / d_u`` for each neighbor ``w``.  This module builds ``P`` as
a scipy CSR matrix and provides the restriction used when a target set
absorbs the walk.

Dangling nodes (degree 0) get a self-loop row, which realizes the
package-wide convention that their walks stay put (DESIGN.md §5): iterating
the hitting-time DP then yields ``h^L_uS = L`` and ``p^L_uS = 0`` for a
dangling ``u ∉ S``, exactly like the sampling engine.
"""

from __future__ import annotations

from typing import Collection

import numpy as np
import scipy.sparse as sp

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph

__all__ = ["transition_matrix", "absorbing_restriction", "target_mask"]


def transition_matrix(graph: Graph) -> sp.csr_matrix:
    """Row-stochastic transition matrix of the uniform random walk.

    ``P[u, w] = 1 / d_u`` for every edge ``(u, w)``; dangling rows become
    ``P[u, u] = 1`` self-loops.
    """
    n = graph.num_nodes
    degrees = graph.degrees
    dangling = np.flatnonzero(degrees == 0)
    inv_deg = np.ones(n, dtype=np.float64)
    nonzero = degrees > 0
    inv_deg[nonzero] = 1.0 / degrees[nonzero]
    data = np.repeat(inv_deg, degrees)
    matrix = sp.csr_matrix(
        (data, graph.indices.astype(np.int64), graph.indptr), shape=(n, n)
    )
    if dangling.size:
        loops = sp.csr_matrix(
            (np.ones(dangling.size), (dangling, dangling)), shape=(n, n)
        )
        matrix = (matrix + loops).tocsr()
    return matrix


def target_mask(num_nodes: int, targets: Collection[int]) -> np.ndarray:
    """Boolean mask over nodes with ``True`` on the target set."""
    mask = np.zeros(num_nodes, dtype=bool)
    idx = np.fromiter((int(v) for v in targets), dtype=np.int64)
    if idx.size:
        if idx.min() < 0 or idx.max() >= num_nodes:
            raise ParameterError("target nodes out of range")
        mask[idx] = True
    return mask


def absorbing_restriction(
    matrix: sp.csr_matrix, mask: np.ndarray
) -> sp.csr_matrix:
    """The taboo (sub-stochastic) operator ``Q = D P D``, ``D = diag(!mask)``.

    Rows *and* columns of absorbed states are zeroed, so ``(Q^t 1)[u]`` is
    the probability that a walk from ``u`` avoids the target set for ``t``
    consecutive steps — the survival mass whose partial sums give truncated
    hitting times.
    """
    if mask.size != matrix.shape[0]:
        raise ParameterError("mask size must match matrix dimension")
    scaler = sp.diags((~mask).astype(np.float64))
    return (scaler @ matrix @ scaler).tocsr()
