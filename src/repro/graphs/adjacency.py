"""Immutable CSR-backed undirected graph.

The :class:`Graph` is the substrate every algorithm in this package runs on.
It stores an undirected, unweighted, simple graph (no self-loops, no parallel
edges) in compressed-sparse-row form:

* ``indptr`` — ``int64`` array of length ``n + 1``; the neighbors of node
  ``u`` live in ``indices[indptr[u]:indptr[u + 1]]``.
* ``indices`` — ``int32`` array of length ``2 m`` (each undirected edge is
  stored in both directions), sorted within each row.

CSR keeps neighbor lookup O(1) + O(deg) and makes the vectorized random-walk
engine (:mod:`repro.walks.engine`) a couple of numpy gathers per step.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ParameterError

__all__ = ["Graph"]


class Graph:
    """Undirected, unweighted, simple graph over nodes ``0..n-1``.

    Instances are immutable: the underlying arrays are created once (by
    :class:`repro.graphs.builder.GraphBuilder` or :meth:`from_edges`) and
    flagged read-only.  Build a new graph to change topology.
    """

    __slots__ = ("_indptr", "_indices", "_num_edges")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        """Wrap pre-validated CSR arrays.

        Most callers should use :meth:`from_edges` or
        :class:`~repro.graphs.builder.GraphBuilder` instead; this constructor
        trusts its input apart from cheap shape checks.
        """
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int32)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ParameterError("indptr and indices must be 1-D arrays")
        if indptr.size == 0 or indptr[0] != 0:
            raise ParameterError("indptr must start with 0 and be non-empty")
        if indptr[-1] != indices.size:
            raise ParameterError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) ({indices.size})"
            )
        if np.any(np.diff(indptr) < 0):
            raise ParameterError("indptr must be non-decreasing")
        indptr.setflags(write=False)
        indices.setflags(write=False)
        self._indptr = indptr
        self._indices = indices
        self._num_edges = indices.size // 2

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        num_nodes: int | None = None,
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Duplicate edges and both orientations of the same edge collapse to a
        single undirected edge; self-loops are rejected.  ``num_nodes`` may
        exceed the largest endpoint to create isolated trailing nodes.
        """
        from repro.graphs.builder import GraphBuilder

        builder = GraphBuilder()
        builder.add_edges(edges)
        return builder.build(num_nodes=num_nodes)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    @property
    def indptr(self) -> np.ndarray:
        """Read-only CSR row pointer (length ``n + 1``)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only CSR column indices (length ``2 m``)."""
        return self._indices

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every node as an ``int64`` array of length ``n``."""
        return np.diff(self._indptr)

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        self._check_node(u)
        return int(self._indptr[u + 1] - self._indptr[u])

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbor array of node ``u`` (a read-only view)."""
        self._check_node(u)
        return self._indices[self._indptr[u] : self._indptr[u + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        self._check_node(u)
        self._check_node(v)
        row = self._indices[self._indptr[u] : self._indptr[u + 1]]
        pos = np.searchsorted(row, v)
        return bool(pos < row.size and row[pos] == v)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges once each, as ``(u, v)`` with ``u < v``."""
        for u in range(self.num_nodes):
            for v in self.neighbors(u):
                if u < v:
                    yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` array with ``u < v`` rows."""
        n = self.num_nodes
        src = np.repeat(np.arange(n, dtype=np.int32), self.degrees)
        mask = src < self._indices
        return np.column_stack((src[mask], self._indices[mask]))

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Sequence[int] | np.ndarray) -> "Graph":
        """Induced subgraph on ``nodes``, relabeled to ``0..len(nodes)-1``.

        The order of ``nodes`` defines the new labels.  Duplicate or
        out-of-range nodes raise :class:`ParameterError`.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size != np.unique(nodes).size:
            raise ParameterError("subgraph nodes must be distinct")
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise ParameterError("subgraph nodes out of range")
        relabel = np.full(self.num_nodes, -1, dtype=np.int64)
        relabel[nodes] = np.arange(nodes.size)
        kept = []
        for new_u, old_u in enumerate(nodes):
            for old_v in self.neighbors(int(old_u)):
                new_v = relabel[old_v]
                if new_v >= 0 and new_u < new_v:
                    kept.append((new_u, int(new_v)))
        return Graph.from_edges(kept, num_nodes=nodes.size)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return np.array_equal(self._indptr, other._indptr) and np.array_equal(
            self._indices, other._indices
        )

    def __hash__(self) -> int:
        return hash((self.num_nodes, self.num_edges, self._indices.tobytes()))

    def __repr__(self) -> str:
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"

    # ------------------------------------------------------------------
    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise ParameterError(f"node {u} out of range [0, {self.num_nodes})")
