"""Smoke tests for the example scripts.

Examples are the first code users run, and the easiest code to break
silently during refactors (nothing else imports them).  Executing each
module with ``run_name != "__main__"`` runs its imports and module-level
constants without the (slow) ``main()`` body — enough to catch renamed
APIs, moved modules, and syntax errors in seconds.

``quickstart.py``'s ``main()`` additionally runs end to end with shrunken
constants, as the one full-path guarantee.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert len(names) >= 8


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=lambda p: p.name
)
def test_example_imports_cleanly(script):
    """Module-level code (imports, constants, function defs) must run."""
    namespace = runpy.run_path(str(script), run_name="example_smoke")
    assert "main" in namespace, f"{script.name} must define main()"
    assert callable(namespace["main"])


def test_quickstart_main_runs_end_to_end(monkeypatch, capsys):
    namespace = runpy.run_path(
        str(EXAMPLES_DIR / "quickstart.py"), run_name="example_smoke"
    )
    # Shrink the scenario so the full pipeline finishes in seconds.
    namespace["main"].__globals__["CLUSTERS"] = 3
    namespace["main"].__globals__["CLUSTER_SIZE"] = 30
    namespace["main"]()
    out = capsys.readouterr().out
    assert "ApproxF1" in out
    assert "communities covered" in out
