"""Stochastic greedy ("lazier than lazy greedy", Mirzasoleiman et al. 2015).

A modern accelerant the paper predates but whose guarantee slots directly
into its framework: instead of scanning all ``n - |S|`` candidates per
round, evaluate a uniform random subset of size ``ceil((n / k) ln(1 / eps))``
and take its best member.  For a nondecreasing submodular objective the
expected approximation factor is ``1 - 1/e - eps`` — the same form the
paper proves for its sampling-based greedy — while the total number of
marginal-gain evaluations drops from ``O(n k)`` to ``O(n ln(1 / eps))``,
independent of ``k``.

Two drivers are provided:

* :func:`stochastic_greedy_select` — works on any
  :class:`~repro.core.objectives.SetObjective` (exact DP or sampled), the
  stochastic counterpart of :func:`repro.core.greedy.greedy_select`;
* :func:`stochastic_approx_greedy` — runs the same candidate-sampling loop
  on the vectorized :class:`~repro.core.approx_fast.FastApproxEngine`, i.e.
  Algorithm 6 with stochastic rounds, the cheapest solver in the package.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.errors import ParameterError
from repro.core.approx_fast import FastApproxEngine
from repro.core.coverage_kernel import validate_gain_backend
from repro.core.objectives import SetObjective
from repro.core.result import SelectionResult
from repro.graphs.adjacency import Graph
from repro.walks.backends import WalkEngine, get_engine
from repro.walks.index import FlatWalkIndex
from repro.walks.rng import resolve_rng

__all__ = [
    "sample_size_per_round",
    "stochastic_greedy_select",
    "stochastic_approx_greedy",
]


def sample_size_per_round(num_candidates: int, k: int, epsilon: float) -> int:
    """Candidates to evaluate per round: ``ceil((n / k) ln(1 / eps))``.

    Clamped to ``[1, num_candidates]``.  ``epsilon`` is the additive slack
    in the ``1 - 1/e - eps`` guarantee.
    """
    if not 0.0 < epsilon < 1.0:
        raise ParameterError("epsilon must lie in (0, 1)")
    if k < 1:
        raise ParameterError("k must be >= 1 to size stochastic rounds")
    if num_candidates < 1:
        raise ParameterError("num_candidates must be >= 1")
    raw = math.ceil(num_candidates / k * math.log(1.0 / epsilon))
    return max(1, min(num_candidates, raw))


def stochastic_greedy_select(
    objective: SetObjective,
    k: int,
    epsilon: float = 0.1,
    seed: "int | np.random.Generator | None" = None,
    algorithm_name: str = "stochastic-greedy",
) -> SelectionResult:
    """Select ``k`` nodes by stochastic greedy over ``objective``.

    Each round draws a fresh uniform sample of unselected candidates (size
    per :func:`sample_size_per_round`) and commits the best of the sample.
    """
    n = objective.num_nodes
    if not 0 <= k <= n:
        raise ParameterError(f"k={k} must lie in [0, n={n}]")
    rng = resolve_rng(seed)
    started = time.perf_counter()
    selected: list[int] = []
    gains: list[float] = []
    chosen: set[int] = set()
    evaluations = 0
    remaining = np.arange(n, dtype=np.int64)
    for _ in range(k):
        batch = sample_size_per_round(remaining.size, k, epsilon)
        sample = rng.choice(remaining, size=batch, replace=False)
        best_node = -1
        best_gain = -float("inf")
        for u in sorted(int(v) for v in sample):
            gain = objective.marginal_gain(chosen, u)
            evaluations += 1
            if gain > best_gain:  # strict: ties keep the smaller id
                best_gain = gain
                best_node = u
        selected.append(best_node)
        gains.append(best_gain)
        chosen.add(best_node)
        remaining = remaining[remaining != best_node]
    elapsed = time.perf_counter() - started
    return SelectionResult(
        algorithm=algorithm_name,
        selected=tuple(selected),
        gains=tuple(gains),
        elapsed_seconds=elapsed,
        num_gain_evaluations=evaluations,
        params={"k": k, "epsilon": epsilon, "strategy": "stochastic"},
    )


def stochastic_approx_greedy(
    graph: Graph,
    k: int,
    length: int,
    num_replicates: int = 100,
    objective: str = "f1",
    epsilon: float = 0.1,
    seed: "int | np.random.Generator | None" = None,
    index: FlatWalkIndex | None = None,
    engine: "str | WalkEngine | None" = None,
    gain_backend: "str | None" = None,
) -> SelectionResult:
    """Algorithm 6 with stochastic-greedy rounds.

    Builds (or reuses) the walk index exactly like
    :func:`~repro.core.approx_fast.approx_greedy_fast`, then per round
    evaluates only a random candidate subset via the engine's single-node
    gain query.  Useful when even one full gain sweep per round is too much
    (very large ``n`` with large ``k``).  ``gain_backend="bitset"`` answers
    those single-node queries from the coverage kernel's maintained gains
    (:mod:`repro.core.coverage_kernel`) — same selections, O(1) per query.
    """
    if not 0 <= k <= graph.num_nodes:
        raise ParameterError(f"k={k} must lie in [0, n={graph.num_nodes}]")
    gain_backend = validate_gain_backend(gain_backend)
    rng = resolve_rng(seed)
    walk_engine = get_engine(engine)
    started = time.perf_counter()
    if index is None:
        index = FlatWalkIndex.build(
            graph, length, num_replicates, seed=rng, engine=walk_engine
        )
    elif index.num_nodes != graph.num_nodes:
        raise ParameterError("index was built for a different graph size")
    engine = FastApproxEngine(
        index, objective=objective, gain_backend=gain_backend
    )
    remaining = np.arange(graph.num_nodes, dtype=np.int64)
    for _ in range(k):
        batch = sample_size_per_round(remaining.size, max(k, 1), epsilon)
        sample = rng.choice(remaining, size=batch, replace=False)
        best_node = -1
        best_gain = -(1 << 62)
        for u in sorted(int(v) for v in sample):
            gain = engine.gain_of(u)
            if gain > best_gain:
                best_gain = gain
                best_node = u
        engine.select(best_node, gain=float(best_gain))
        remaining = remaining[remaining != best_node]
    elapsed = time.perf_counter() - started
    name = "StochasticApproxF1" if objective == "f1" else "StochasticApproxF2"
    return SelectionResult(
        algorithm=name,
        selected=tuple(engine.selected),
        gains=tuple(engine.gains),
        elapsed_seconds=elapsed,
        num_gain_evaluations=engine.num_gain_evaluations,
        params={
            "k": k,
            "L": index.length,
            "R": index.num_replicates,
            "objective": objective,
            "epsilon": epsilon,
            "strategy": "stochastic",
            "walk_engine": walk_engine.name,
            "gain_backend": gain_backend,
        },
    )
