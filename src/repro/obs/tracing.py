"""Span tracing: nested wall-time events in a per-process ring buffer.

``tracer.span("solve.greedy", k=8)`` is a context manager; on exit it
appends one structured event to a bounded ring buffer (old events fall off
— tracing never grows without bound).  Events carry:

* ``name``, ``ts_us``/``dur_us`` (microseconds relative to the tracer's
  start), ``pid``/``tid``,
* ``depth`` — nesting level within the thread (spans opened inside a span
  are children),
* ``self_us`` — wall time minus the time spent in *direct child spans*,
  i.e. the nested wall-time attribution the flame view wants,
* ``args`` — the caller's keyword arguments, coerced to JSON-safe scalars.

:meth:`SpanTracer.export_chrome_trace` renders the buffer as Chrome
``trace_event`` JSON (``{"traceEvents": [...]}`` with ``ph: "X"`` complete
events) loadable in ``chrome://tracing`` / Perfetto.

Thread story: the per-thread span stack lives in ``threading.local``; the
ring buffer append is guarded by one lock.  A disabled tracer
(:class:`NullTracer`) hands out a shared reusable no-op context manager,
so ``with tracer.span(...)`` costs two method calls when tracing is off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

__all__ = ["SpanTracer", "NullTracer", "NULL_TRACER", "DEFAULT_TRACE_BUFFER"]

DEFAULT_TRACE_BUFFER = 65_536


def _json_safe(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


class _Span:
    __slots__ = ("_tracer", "_name", "_args", "_start_us", "_child_us")

    def __init__(self, tracer: "SpanTracer", name: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._args = args
        self._start_us = 0.0
        self._child_us = 0.0

    def __enter__(self) -> "_Span":
        self._start_us = self._tracer._now_us()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end_us = self._tracer._now_us()
        self._tracer._pop(self, end_us, failed=exc_type is not None)


class _NullSpan:
    """Reusable no-op context manager handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class SpanTracer:
    """Bounded ring buffer of completed spans (module docstring)."""

    def __init__(self, buffer_size: int = DEFAULT_TRACE_BUFFER):
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=max(1, int(buffer_size)))
        self._local = threading.local()

    # -- recording -----------------------------------------------------
    def span(self, name: str, **args) -> _Span:
        return _Span(self, str(name), args)

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: _Span) -> None:
        self._stack().append(span)

    def _pop(self, span: _Span, end_us: float, failed: bool) -> None:
        stack = self._stack()
        depth = 0
        if stack and stack[-1] is span:
            stack.pop()
            depth = len(stack)
        dur_us = end_us - span._start_us
        if stack:
            stack[-1]._child_us += dur_us
        event = {
            "name": span._name,
            "ts_us": span._start_us,
            "dur_us": dur_us,
            "self_us": max(dur_us - span._child_us, 0.0),
            "depth": depth,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": {k: _json_safe(v) for k, v in span._args.items()},
        }
        if failed:
            event["failed"] = True
        with self._lock:
            self._events.append(event)

    # -- export --------------------------------------------------------
    def events(self) -> list:
        """Completed spans, oldest first (plain dicts, JSON-safe)."""
        with self._lock:
            return list(self._events)

    def export_chrome_trace(self) -> dict:
        """The ring buffer as Chrome ``trace_event`` JSON (``ph: "X"``)."""
        trace_events = []
        for event in self.events():
            args = dict(event["args"])
            args["self_us"] = round(event["self_us"], 3)
            if event.get("failed"):
                args["failed"] = True
            trace_events.append({
                "name": event["name"],
                "cat": "repro",
                "ph": "X",
                "ts": event["ts_us"],
                "dur": event["dur_us"],
                "pid": event["pid"],
                "tid": event["tid"],
                "args": args,
            })
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        payload = self.export_chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=None, separators=(",", ":"))

    def reset(self) -> None:
        with self._lock:
            self._events.clear()


class NullTracer(SpanTracer):
    """Disabled-mode tracer: spans are a shared no-op, exports are empty."""

    def __init__(self):
        super().__init__(buffer_size=1)

    def span(self, name: str, **args) -> _NullSpan:
        return _NULL_SPAN


NULL_TRACER = NullTracer()
