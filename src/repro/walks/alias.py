"""Weighted neighbor sampling via Walker's alias method.

The weighted random walk picks out-edge ``(u, v)`` with probability
proportional to its weight.  The alias method turns that into O(1) work per
step after O(deg) preprocessing per node: draw a uniform slot ``j`` among
``u``'s out-edges and a uniform coin; keep slot ``j`` or take its alias.
Tables for all nodes are laid out flat, aligned with the graph's CSR
arrays, so batch stepping stays a handful of numpy gathers — the weighted
twin of :func:`repro.walks.engine.batch_walks`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.graphs.weighted import WeightedDiGraph
from repro.walks.rng import resolve_rng

__all__ = ["AliasSampler", "weighted_batch_walks", "weighted_random_walk"]


class AliasSampler:
    """Flat alias tables over every node's out-edge distribution."""

    def __init__(self, graph: WeightedDiGraph):
        self.graph = graph
        size = graph.num_arcs
        self._prob = np.ones(size, dtype=np.float64)
        self._alias = np.arange(size, dtype=np.int64)
        indptr = graph.indptr
        weights = graph.weights
        for u in range(graph.num_nodes):
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            if hi - lo <= 1:
                continue
            self._build_row(lo, weights[lo:hi])

    def _build_row(self, offset: int, row_weights: np.ndarray) -> None:
        """Classic two-bucket alias construction for one node's edges."""
        deg = row_weights.size
        scaled = (row_weights * (deg / row_weights.sum())).tolist()
        prob = [1.0] * deg
        alias = list(range(deg))
        small = [i for i in range(deg) if scaled[i] < 1.0]
        large = [i for i in range(deg) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            big = large.pop()
            prob[s] = scaled[s]
            alias[s] = big
            scaled[big] = scaled[big] + scaled[s] - 1.0
            if scaled[big] < 1.0:
                small.append(big)
            else:
                large.append(big)
        # Leftovers (numerical residue) keep prob 1 / self alias.
        self._prob[offset : offset + deg] = prob
        self._alias[offset : offset + deg] = offset + np.asarray(alias)

    @property
    def prob(self) -> np.ndarray:
        """Per-slot keep probability, flat and CSR-aligned (length ``num_arcs``)."""
        return self._prob

    @property
    def alias(self) -> np.ndarray:
        """Per-slot alias target (flat slot index, length ``num_arcs``)."""
        return self._alias

    def step(self, current: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Advance a batch of walkers one weighted hop.

        Dangling walkers (no out-edges) stay in place.
        """
        indptr = self.graph.indptr
        indices = self.graph.indices
        out_deg = self.graph.out_degrees
        deg = out_deg[current]
        movable = deg > 0
        nxt = current.copy()
        if not movable.any():
            return nxt
        rows = current[movable]
        # Uniform slot among the row's edges.
        slots = indptr[rows] + (rng.random(rows.size) * out_deg[rows]).astype(
            np.int64
        )
        coins = rng.random(rows.size)
        take_alias = coins >= self._prob[slots]
        chosen = np.where(take_alias, self._alias[slots], slots)
        nxt[movable] = indices[chosen]
        return nxt

    def edge_probability(self, u: int, position: int) -> float:
        """Probability the walk at ``u`` takes out-edge slot ``position``
        (diagnostic; slot order matches :meth:`WeightedDiGraph.out_neighbors`)."""
        targets, weights = self.graph.out_neighbors(u)
        if not 0 <= position < targets.size:
            raise ParameterError("edge position out of range")
        return float(weights[position] / weights.sum())


def weighted_batch_walks(
    graph: WeightedDiGraph,
    starts: np.ndarray,
    length: int,
    seed: "int | np.random.Generator | None" = None,
    sampler: AliasSampler | None = None,
) -> np.ndarray:
    """Weighted L-length walks for a batch of starts, shape ``(B, L+1)``."""
    if length < 0:
        raise ParameterError("walk length L must be >= 0")
    starts = np.asarray(starts, dtype=np.int64)
    if starts.size and (starts.min() < 0 or starts.max() >= graph.num_nodes):
        raise ParameterError("start nodes out of range")
    rng = resolve_rng(seed)
    if sampler is None:
        sampler = AliasSampler(graph)
    walks = np.empty((starts.size, length + 1), dtype=np.int32)
    walks[:, 0] = starts
    current = starts.copy()
    for t in range(1, length + 1):
        current = sampler.step(current, rng)
        walks[:, t] = current
    return walks


def weighted_random_walk(
    graph: WeightedDiGraph,
    start: int,
    length: int,
    seed: "int | np.random.Generator | None" = None,
) -> list[int]:
    """One weighted L-length walk as a node list (scalar convenience)."""
    walk = weighted_batch_walks(graph, np.asarray([start]), length, seed=seed)
    return [int(v) for v in walk[0]]
