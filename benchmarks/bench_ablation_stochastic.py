"""Ablation: stochastic greedy rounds vs CELF-lazy vs full sweeps.

Quantifies the modern accelerant (``repro.core.stochastic``) against the
paper-era strategies on the same prebuilt walk index:

* quality (exact EHN of the selection) must stay within a few percent of
  the lazy/full greedy — the 1 - 1/e - eps guarantee at work;
* gain evaluations must drop well below the full sweep's ``O(n k)``.
"""

from repro.experiments.extensions import ext_stochastic


def test_stochastic_ablation(benchmark, config, report):
    table = benchmark.pedantic(
        lambda: ext_stochastic(config), rounds=1, iterations=1
    )
    report(table, "ablation_stochastic.txt")
    strategy = table.columns.index("strategy")
    evals = table.columns.index("gain evals")
    ehn = table.columns.index("EHN")
    rows = {row[strategy]: row for row in table.rows}
    # Lazy is exact: same quality as full.
    assert rows["lazy"][ehn] == rows["full"][ehn]
    # Stochastic trades a bounded quality loss for far fewer evaluations.
    assert rows["stochastic"][ehn] >= 0.9 * rows["full"][ehn]
    assert rows["stochastic"][evals] < rows["full"][evals]
