"""METIS / JSON / weighted-arc interchange formats."""

import gzip

import pytest

from repro.errors import GraphFormatError
from repro.graphs.formats import (
    read_json_graph,
    read_metis,
    read_weighted_arcs,
    write_json_graph,
    write_metis,
    write_weighted_arcs,
)
from repro.graphs.generators import (
    paper_example_graph,
    power_law_graph,
    ring_graph,
)
from repro.graphs.builder import GraphBuilder
from repro.graphs.weighted import WeightedDiGraph


class TestMetis:
    def test_round_trip(self, tmp_path):
        graph = power_law_graph(30, 90, seed=1)
        path = tmp_path / "g.metis"
        write_metis(graph, path)
        assert read_metis(path) == graph

    def test_round_trip_with_isolated_nodes(self, tmp_path):
        builder = GraphBuilder()
        builder.add_edge(0, 1)
        builder.touch_node(3)
        graph = builder.build()
        path = tmp_path / "iso.metis"
        write_metis(graph, path)
        assert read_metis(path) == graph

    def test_header_format(self, tmp_path):
        graph = ring_graph(5)
        path = tmp_path / "ring.metis"
        write_metis(graph, path)
        first = path.read_text().splitlines()[0]
        assert first == "5 5"

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "c.metis"
        path.write_text("% comment\n2 1\n2\n1\n")
        graph = read_metis(path)
        assert graph.num_nodes == 2
        assert graph.num_edges == 1

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.metis"
        path.write_text("")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_rejects_wrong_node_count(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("3 1\n2\n1\n")  # says 3 nodes, has 2 lines
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_rejects_wrong_edge_count(self, tmp_path):
        path = tmp_path / "bad2.metis"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_rejects_out_of_range_neighbor(self, tmp_path):
        path = tmp_path / "bad3.metis"
        path.write_text("2 1\n5\n1\n")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_rejects_self_loop(self, tmp_path):
        path = tmp_path / "bad4.metis"
        path.write_text("2 1\n1\n2\n")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_rejects_non_integer(self, tmp_path):
        path = tmp_path / "bad5.metis"
        path.write_text("2 1\nx\n1\n")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_gzip_round_trip(self, tmp_path):
        graph = ring_graph(7)
        path = tmp_path / "ring.metis.gz"
        write_metis(graph, path)
        with gzip.open(path, "rt") as handle:
            assert handle.readline().strip() == "7 7"
        assert read_metis(path) == graph


class TestJsonGraph:
    def test_round_trip(self, tmp_path):
        graph = paper_example_graph()
        path = tmp_path / "g.json"
        write_json_graph(graph, path)
        assert read_json_graph(path) == graph

    def test_preserves_isolated_nodes(self, tmp_path):
        builder = GraphBuilder()
        builder.add_edge(0, 1)
        builder.touch_node(4)
        graph = builder.build()
        path = tmp_path / "iso.json"
        write_json_graph(graph, path)
        assert read_json_graph(path).num_nodes == 5

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(GraphFormatError):
            read_json_graph(path)

    def test_rejects_missing_num_nodes(self, tmp_path):
        path = tmp_path / "missing.json"
        path.write_text('{"edges": [[0, 1]]}')
        with pytest.raises(GraphFormatError):
            read_json_graph(path)

    def test_rejects_malformed_edges(self, tmp_path):
        path = tmp_path / "mal.json"
        path.write_text('{"num_nodes": 3, "edges": [["a", 1]]}')
        with pytest.raises(GraphFormatError):
            read_json_graph(path)

    def test_empty_edge_list(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text('{"num_nodes": 3, "edges": []}')
        graph = read_json_graph(path)
        assert graph.num_nodes == 3
        assert graph.num_edges == 0


class TestWeightedArcs:
    def _sample(self):
        return WeightedDiGraph.from_edges(
            [(0, 1, 2.0), (1, 0, 1.0), (1, 2, 0.5), (2, 0, 3.25)]
        )

    def test_round_trip(self, tmp_path):
        graph = self._sample()
        path = tmp_path / "arcs.txt"
        write_weighted_arcs(graph, path)
        assert read_weighted_arcs(path) == graph

    def test_header_comment(self, tmp_path):
        path = tmp_path / "arcs.txt"
        write_weighted_arcs(self._sample(), path, header="trust network")
        lines = path.read_text().splitlines()
        assert lines[0] == "# trust network"

    def test_num_nodes_override(self, tmp_path):
        path = tmp_path / "arcs.txt"
        write_weighted_arcs(self._sample(), path)
        graph = read_weighted_arcs(path, num_nodes=10)
        assert graph.num_nodes == 10

    def test_rejects_two_column_lines(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError):
            read_weighted_arcs(path)

    def test_rejects_non_numeric_weight(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 heavy\n")
        with pytest.raises(GraphFormatError):
            read_weighted_arcs(path)

    def test_gzip_round_trip(self, tmp_path):
        graph = self._sample()
        path = tmp_path / "arcs.txt.gz"
        write_weighted_arcs(graph, path)
        assert read_weighted_arcs(path) == graph

    def test_weights_preserved_exactly(self, tmp_path):
        graph = self._sample()
        path = tmp_path / "arcs.txt"
        write_weighted_arcs(graph, path)
        back = read_weighted_arcs(path)
        import numpy as np

        np.testing.assert_array_equal(back.weights, graph.weights)
