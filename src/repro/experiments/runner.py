"""Experiment runner: one place that maps algorithm names to solvers and
evaluates selections the way the paper's figures do.

The quality figures (6, 7, 10) read metrics at several budgets ``k`` from a
*single* run per algorithm: greedy selections are prefixes of each other,
and the baselines' rankings are too, so ``run_algorithm`` is invoked once
with the largest budget and :func:`quality_series` evaluates the prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.core.approx_fast import approx_greedy_fast
from repro.core.baselines import degree_baseline, dominate_baseline, random_baseline
from repro.core.dp_greedy import dpf1, dpf2
from repro.core.result import SelectionResult
from repro.core.sampling_greedy import sampling_greedy_f1, sampling_greedy_f2
from repro.metrics.evaluation import average_hitting_time, expected_hit_nodes
from repro.walks.index import FlatWalkIndex

__all__ = ["ALGORITHMS", "run_algorithm", "quality_series", "QualityPoint"]

#: Algorithm names understood by :func:`run_algorithm`, paper spelling.
ALGORITHMS = (
    "DPF1",
    "DPF2",
    "SamplingF1",
    "SamplingF2",
    "ApproxF1",
    "ApproxF2",
    "Degree",
    "Dominate",
    "Random",
)


def run_algorithm(
    name: str,
    graph: Graph,
    k: int,
    length: int,
    num_replicates: int = 100,
    seed: "int | np.random.Generator | None" = None,
    index: FlatWalkIndex | None = None,
) -> SelectionResult:
    """Run one named algorithm.

    ``index`` lets ApproxF1/ApproxF2 share a prebuilt walk index (e.g. to
    reuse walks across the two problems, as one would in practice).
    """
    if name == "DPF1":
        return dpf1(graph, k, length)
    if name == "DPF2":
        return dpf2(graph, k, length)
    if name == "SamplingF1":
        return sampling_greedy_f1(
            graph, k, length, num_replicates=num_replicates, seed=seed
        )
    if name == "SamplingF2":
        return sampling_greedy_f2(
            graph, k, length, num_replicates=num_replicates, seed=seed
        )
    if name == "ApproxF1":
        return approx_greedy_fast(
            graph, k, length, num_replicates=num_replicates, seed=seed,
            objective="f1", index=index,
        )
    if name == "ApproxF2":
        return approx_greedy_fast(
            graph, k, length, num_replicates=num_replicates, seed=seed,
            objective="f2", index=index,
        )
    if name == "Degree":
        return degree_baseline(graph, k)
    if name == "Dominate":
        return dominate_baseline(graph, k)
    if name == "Random":
        return random_baseline(graph, k, seed=seed)
    raise ParameterError(f"unknown algorithm {name!r}; choose from {ALGORITHMS}")


@dataclass(frozen=True)
class QualityPoint:
    """Both paper metrics for one algorithm at one budget."""

    algorithm: str
    k: int
    aht: float
    ehn: float


def quality_series(
    graph: Graph,
    result: SelectionResult,
    budgets: Sequence[int],
    length: int,
) -> list[QualityPoint]:
    """Evaluate AHT and EHN on prefixes of one selection (exact DP)."""
    points = []
    for k in budgets:
        if k > len(result.selected):
            raise ParameterError(
                f"budget {k} exceeds the {len(result.selected)} selected nodes"
            )
        prefix = result.prefix(k)
        points.append(
            QualityPoint(
                algorithm=result.algorithm,
                k=k,
                aht=average_hitting_time(graph, prefix, length),
                ehn=expected_hit_nodes(graph, prefix, length),
            )
        )
    return points
