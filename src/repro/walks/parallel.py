"""Stream-slicing walk kernels and shared-memory plumbing (DESIGN.md §11).

This module is the substrate of the two parallel walk backends in
:mod:`repro.walks.backends`:

* ``"sharded"`` runs the slice kernels on a thread pool over the graph's
  own CSR arrays;
* ``"multiproc"`` runs them in worker *processes* that read the CSR from
  :mod:`multiprocessing.shared_memory` segments and is driven by the
  top-level task entry point :func:`run_task` (spawn-picklable).

The kernels compute **row slices of one logical batch**: a canonical
batch-walk call over ``total`` rows consumes ``rng.random(total)`` once
per hop from a single PCG64 stream (the ``numpy``/``csr`` discipline).
A slice kernel reconstructs that stream from its picklable state
(:func:`repro.walks.rng.generator_at`), jumps to its rows' offset inside
each per-hop block, draws only its rows, and skips the rest with
``advance`` — so the assembled output is *bit-identical* to the
sequential engines, for any partitioning, on any worker count.

Everything here is deliberately import-light (numpy + stdlib + the rng
helpers): spawned worker processes import this module once and nothing
heavier.
"""

from __future__ import annotations

import numpy as np
from multiprocessing import shared_memory

from repro.walks.rng import generator_at

__all__ = [
    "slice_walks",
    "slice_first_hits",
    "slice_weighted_walks",
    "first_visit_records",
    "canonical_record_key",
    "SharedArrayPack",
    "run_task",
]


# ----------------------------------------------------------------------
# Slice kernels (thread- and process-agnostic: plain arrays in, arrays out)
# ----------------------------------------------------------------------
def slice_walks(
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees_f64: np.ndarray,
    starts: np.ndarray,
    length: int,
    state: "tuple[str, dict]",
    lo: int,
    total: int,
) -> np.ndarray:
    """Rows ``[lo, lo + len(starts))`` of a ``total``-row batch-walk call.

    ``indptr``/``indices``/``degrees_f64`` are the *augmented* CSR of the
    CSR backend's plan (dangling nodes carry a self-loop), and the hop
    arithmetic mirrors :meth:`~repro.walks.backends.CSRWalkEngine.batch_walks`
    operation for operation, so the slice is bit-identical to the matching
    rows of the sequential call.
    """
    batch = starts.size
    walks = np.empty((length + 1, batch), dtype=np.int32)
    walks[0] = starts
    if length and batch:
        gen = generator_at(state, lo)
        bit_gen = gen.bit_generator
        u = np.empty(batch, dtype=np.float64)
        deg = np.empty(batch, dtype=np.float64)
        off = np.empty(batch, dtype=np.int64)
        pos = np.empty(batch, dtype=np.int64)
        current = np.empty(batch, dtype=np.int64)
        np.copyto(current, starts)
        for t in range(1, length + 1):
            gen.random(out=u)
            np.take(degrees_f64, current, out=deg, mode="clip")
            np.multiply(u, deg, out=u)
            np.copyto(off, u, casting="unsafe")  # trunc == floor: u >= 0
            np.take(indptr, current, out=pos, mode="clip")
            pos += off
            np.take(indices, pos, out=walks[t], mode="clip")
            np.copyto(current, walks[t])
            bit_gen.advance(total - batch)  # skip the other rows' draws
    return np.ascontiguousarray(walks.T)


def slice_first_hits(
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees_f64: np.ndarray,
    starts: np.ndarray,
    length: int,
    target_mask: np.ndarray,
    state: "tuple[str, dict]",
    lo: int,
    total: int,
) -> np.ndarray:
    """Fused first-hit twin of :func:`slice_walks` (no walk matrix)."""
    batch = starts.size
    first = np.where(target_mask[starts], 0, -1).astype(np.int64)
    if length and batch:
        gen = generator_at(state, lo)
        bit_gen = gen.bit_generator
        u = np.empty(batch, dtype=np.float64)
        deg = np.empty(batch, dtype=np.float64)
        off = np.empty(batch, dtype=np.int64)
        pos = np.empty(batch, dtype=np.int64)
        nxt = np.empty(batch, dtype=np.int32)
        current = np.empty(batch, dtype=np.int64)
        np.copyto(current, starts)
        for t in range(1, length + 1):
            gen.random(out=u)
            np.take(degrees_f64, current, out=deg, mode="clip")
            np.multiply(u, deg, out=u)
            np.copyto(off, u, casting="unsafe")
            np.take(indptr, current, out=pos, mode="clip")
            pos += off
            np.take(indices, pos, out=nxt, mode="clip")
            np.copyto(current, nxt)
            newly = (first < 0) & target_mask[current]
            first[newly] = t
            bit_gen.advance(total - batch)
    return first


def slice_weighted_walks(
    indptr: np.ndarray,
    indices: np.ndarray,
    out_degrees_f64: np.ndarray,
    prob: np.ndarray,
    alias: np.ndarray,
    starts: np.ndarray,
    length: int,
    state: "tuple[str, dict]",
    lo: int,
    total: int,
) -> np.ndarray:
    """Row slice of a dangling-free weighted batch-walk call.

    A weighted hop burns two per-hop blocks — ``total`` slot uniforms,
    then ``total`` coin uniforms (the
    :meth:`~repro.walks.backends.CSRWalkEngine.weighted_batch_walks`
    fast-path order) — so the slice jumps twice per hop.  Graphs with
    dangling rows consume the stream data-dependently (the masked
    :meth:`~repro.walks.alias.AliasSampler.step` path) and cannot be
    sliced; the backends fall back to a sequential call for those.
    """
    batch = starts.size
    walks = np.empty((length + 1, batch), dtype=np.int32)
    walks[0] = starts
    if length and batch:
        gen = generator_at(state, lo)
        bit_gen = gen.bit_generator
        current = starts.astype(np.int64)
        for t in range(1, length + 1):
            u_slot = gen.random(batch)
            bit_gen.advance(total - batch)
            u_coin = gen.random(batch)
            bit_gen.advance(total - batch)
            slots = indptr[current] + (
                u_slot * out_degrees_f64[current]
            ).astype(np.int64)
            chosen = np.where(u_coin >= prob[slots], alias[slots], slots)
            current = indices[chosen]
            walks[t] = current
    return np.ascontiguousarray(walks.T)


# ----------------------------------------------------------------------
# First-visit record extraction (shared by every index builder)
# ----------------------------------------------------------------------
def first_visit_records(
    walks: np.ndarray, states: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """First-visit ``(hit, state, hop)`` records of a block of walks.

    The Algorithm-3 extraction shared by the static builder
    (:meth:`~repro.walks.index.FlatWalkIndex.build`), the dynamic builder
    (:mod:`repro.dynamic.index`), and the multiproc workers (which run it
    shard-locally and ship back only the records): a position is a record
    iff its node differs from every earlier position of the walk.
    ``states`` carries the per-row flattened ``D`` index.
    """
    batch = walks.shape[0]
    length = walks.shape[1] - 1
    hit_parts: list[np.ndarray] = []
    state_parts: list[np.ndarray] = []
    hop_parts: list[np.ndarray] = []
    for hop in range(1, length + 1):
        col = walks[:, hop].astype(np.int64)
        fresh = np.ones(batch, dtype=bool)
        for prev in range(hop):
            np.logical_and(fresh, col != walks[:, prev], out=fresh)
        if not fresh.any():
            continue
        hit_parts.append(col[fresh])
        state_parts.append(states[fresh])
        hop_parts.append(np.full(int(fresh.sum()), hop, dtype=np.int64))
    if not hit_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    return (
        np.concatenate(hit_parts),
        np.concatenate(state_parts),
        np.concatenate(hop_parts),
    )


def canonical_record_key(
    hits: np.ndarray, states: np.ndarray, num_states: int
) -> np.ndarray:
    """The canonical ``hit * num_states + state`` sort key, as ``int64``.

    States are unique within one hit node's records (first-visit dedup),
    so the key is a strict total order over any record set — the one
    every builder sorts by, in-memory (``FlatWalkIndex._from_records``)
    and out-of-core (:mod:`repro.walks.build`) alike, kept in one place
    so the two can never disagree.  Both operands are forced to
    ``int64`` *before* the multiply: under NEP 50 (numpy >= 2) and under
    1.x value-based casting alike, ``int32_array * python_int`` stays
    ``int32`` whenever the scalar fits, so int32 inputs would wrap
    silently once ``hit * n * R`` crosses 2^31 — reordering entries
    instead of crashing.  Keys are decodable: ``hit = key // num_states``
    and ``state = key % num_states`` (states are ``< num_states`` by
    construction), which is what lets the external sorter spill only the
    key per record.
    """
    return (
        hits.astype(np.int64, copy=False) * np.int64(num_states)
        + states.astype(np.int64, copy=False)
    )


# ----------------------------------------------------------------------
# Shared-memory transport
# ----------------------------------------------------------------------
class SharedArrayPack:
    """A named bundle of numpy arrays copied into shared-memory segments.

    The parent creates the pack once (per graph, or per call for
    transient inputs like a target mask), hands workers the picklable
    ``specs`` dict, and remains the *sole owner* of the segments:
    :meth:`close` both closes and unlinks every one.  Workers only ever
    attach read-only views (:func:`attach_array`) and never unlink — so
    a crashed worker cannot leak a segment; leaks are impossible as long
    as the parent's ``close`` runs, which the multiproc engine guarantees
    on every exception path (and via a finalizer on interpreter exit).
    """

    def __init__(self, arrays: "dict[str, np.ndarray]"):
        self.specs: "dict[str, tuple[str, tuple, str]]" = {}
        self._segments: "list[shared_memory.SharedMemory]" = []
        try:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                self._segments.append(segment)
                view = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=segment.buf
                )
                view[...] = array
                self.specs[name] = (
                    segment.name, array.shape, array.dtype.str
                )
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Close and unlink every segment (idempotent, exception-safe)."""
        segments, self._segments = self._segments, []
        self.specs = {}
        for segment in segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                pass  # already unlinked (double-close is legal)

    @property
    def segment_names(self) -> "tuple[str, ...]":
        """Kernel names of the live segments (diagnostics and tests)."""
        return tuple(segment.name for segment in self._segments)


#: Worker-side attach cache: segment name -> (SharedMemory, base array),
#: LRU-bounded.  Keeping mappings open across tasks amortizes attach
#: cost, but an open mapping also keeps an *unlinked* segment's physical
#: memory alive — so when the parent cycles through many graphs (its own
#: pack cache evicts and unlinks), workers must drop stale mappings too
#: or the freed packs never actually free.  The cap comfortably exceeds
#: the handful of arrays any single task touches, so a task can never
#: evict a segment it is about to read.
_ATTACH_CACHE_SIZE = 16
_ATTACHED: "dict[str, tuple[shared_memory.SharedMemory, np.ndarray]]" = {}


def attach_array(spec: "tuple[str, tuple, str]") -> np.ndarray:
    """A read-only view of a shared array, attached and LRU-cached per
    worker.

    Pool workers share the parent's resource-tracker process, and the
    tracker's registry is a per-name set — the attach-side ``register``
    the stdlib performs is therefore idempotent with the parent's, and
    the parent's single ``unlink`` retires the name exactly once.
    Workers must never unregister (or unlink) themselves: that would
    retire the parent's registration early and double-free the name.
    Evicted mappings are merely *closed*, which is what releases the
    segment's memory once the parent has unlinked it.
    """
    name, shape, dtype = spec
    cached = _ATTACHED.pop(name, None)
    if cached is None:
        segment = shared_memory.SharedMemory(name=name)
        base = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        base.flags.writeable = False
        cached = (segment, base)
    _ATTACHED[name] = cached  # re-insert at the MRU end (dicts keep order)
    while len(_ATTACHED) > _ATTACH_CACHE_SIZE:
        oldest = next(iter(_ATTACHED))  # front of the dict == LRU
        stale_segment, _stale_base = _ATTACHED.pop(oldest)
        stale_segment.close()
    return cached[1]


# ----------------------------------------------------------------------
# Process-pool task entry point
# ----------------------------------------------------------------------
def run_task(task: dict):
    """Execute one multiproc shard task (top-level: spawn-picklable).

    ``task["mode"]`` selects the kernel:

    * ``"walks"`` → the ``(rows, L+1)`` walk slice;
    * ``"first_hits"`` → the per-row first-hit hops (mask from shared
      memory);
    * ``"records"`` → the slice's first-visit ``(hit, state, hop)``
      arrays — the streaming index-build path that never ships a walk
      matrix back to the parent;
    * ``"weighted"`` → the weighted walk slice.

    Workers are stateless between tasks apart from the read-only attach
    cache: the slice generator is rebuilt from the pickled stream state
    every time, so a task that dies mid-shard (worker crash, interrupt)
    leaves nothing to tear down worker-side — recovery is entirely the
    parent's unlink-and-raise path.

    When the parent sets ``task["telemetry"]`` (it does so only while its
    own telemetry is enabled) the payload comes back as
    ``("__obs__", payload, snapshot_dict)``: shard-level metrics recorded
    into a private worker registry and shipped through the same
    record-streaming return path, for the parent to ``obs.absorb``.
    """
    if task.get("telemetry"):
        return _run_task_telemetry(task)
    return _run_task_kernel(task)


def _run_task_kernel(task: dict):
    mode = task["mode"]
    specs = task["specs"]
    starts = task["starts"]
    length = task["length"]
    state = task["state"]
    lo = task["lo"]
    total = task["total"]
    if mode == "weighted":
        return slice_weighted_walks(
            attach_array(specs["indptr"]),
            attach_array(specs["indices"]),
            attach_array(specs["out_degrees_f64"]),
            attach_array(specs["prob"]),
            attach_array(specs["alias"]),
            starts, length, state, lo, total,
        )
    indptr = attach_array(specs["indptr"])
    indices = attach_array(specs["indices"])
    degrees = attach_array(specs["degrees_f64"])
    if mode == "walks":
        return slice_walks(
            indptr, indices, degrees, starts, length, state, lo, total
        )
    if mode == "first_hits":
        mask = attach_array(task["mask_spec"]).view(bool)
        return slice_first_hits(
            indptr, indices, degrees, starts, length, mask, state, lo, total
        )
    if mode == "records":
        walks = slice_walks(
            indptr, indices, degrees, starts, length, state, lo, total
        )
        return first_visit_records(walks, task["states"])
    raise ValueError(f"unknown multiproc task mode {mode!r}")


def _run_task_telemetry(task: dict):
    # Imported lazily: this module stays numpy+stdlib on the default path,
    # and workers only pay the import when the parent opted in.
    import time

    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    mode = task["mode"]
    started = time.perf_counter()
    payload = _run_task_kernel(task)
    elapsed = time.perf_counter() - started
    rows = int(np.asarray(task["starts"]).size)
    registry.counter(
        "walk_shard_rows_total", {"mode": mode},
        help="Walk rows computed by multiproc shard workers.",
    ).inc(rows)
    registry.counter(
        "walk_shards_total", {"mode": mode},
        help="Multiproc shard tasks executed.",
    ).inc()
    registry.histogram(
        "walk_shard_kernel_seconds", {"mode": mode},
        help="In-worker shard kernel wall time.",
    ).observe(elapsed)
    if mode == "records":
        registry.counter(
            "walk_shard_records_total",
            help="First-visit records extracted in workers.",
        ).inc(int(payload[0].size))
    return "__obs__", payload, registry.snapshot().to_dict()
