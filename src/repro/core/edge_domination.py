"""Edge domination — the paper's second future-work problem.

Section 5 of the paper proposes extending Problem 2 "to count the expected
number of edges that are traversed by the L-length random walk starting
from any node to the targeted set".  Placing targets well then means walks
stop early and *few* edges get traversed — network traffic saved, in the
P2P reading of the problem.

Formulation.  For a walk ``w`` from source ``u``, let ``C_w(t)`` be the
number of *distinct* edges among its first ``t`` hops, and ``T_w(S)`` the
truncated first-hit time of Eq. (3).  The expected edge traffic under
target set ``S`` is ``E[C_w(T_w(S))]``; we maximize the expected *traffic
saved* relative to an unstopped walk:

    F3(S) = sum_u E[ C_w(L) - C_w(T_w(S)) ].

``F3`` is nondecreasing submodular with ``F3(empty) = 0``: per walk,
``T_w(S) = min_{s in S} t_w(s)`` and ``C_w`` is nondecreasing, so the
walk's contribution is ``max_{s in S} (C_w(L) - C_w(t_w(s)))`` — a maximum
of per-element constants, the textbook max-coverage form (the test suite
also checks both properties empirically).  Greedy therefore keeps its
``1 - 1/e`` guarantee.

Unlike ``h^L_uS`` and ``p^L_uS``, the distinct-edge count is
path-dependent, so no Theorem-2.2-style DP exists; this module extends the
paper's *sampling* machinery instead.  :class:`EdgeWalkIndex` materializes
the same R walks per node as Algorithm 3 but additionally stores each
walk's prefix distinct-edge counts, and :class:`EdgeDominationEngine`
mirrors Algorithms 4-6 with hop arithmetic replaced by prefix-count
arithmetic.
"""

from __future__ import annotations

import heapq
import time
from typing import Collection, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.core.result import SelectionResult
from repro.graphs.adjacency import Graph
from repro.walks.engine import batch_walks
from repro.walks.index import walker_major_starts
from repro.walks.rng import resolve_rng

__all__ = [
    "prefix_edge_counts",
    "EdgeWalkIndex",
    "EdgeDominationEngine",
    "edge_domination_greedy",
    "expected_edges_traversed",
    "estimate_f3",
]


def prefix_edge_counts(walks: np.ndarray) -> np.ndarray:
    """Distinct-edge counts ``C[b, t]`` for every walk prefix.

    ``walks`` is a ``(B, L+1)`` position matrix; the result has the same
    shape, with ``C[b, t]`` the number of distinct undirected edges among
    hops ``1..t`` of walk ``b`` (``C[b, 0] = 0``).  A stay-in-place hop
    (dangling node) traverses no edge.

    Implementation: each hop's undirected edge becomes one integer key; a
    hop is *fresh* when its key differs from every earlier hop's key in the
    same row, and the prefix count is the cumulative fresh count.  The
    per-prior-hop comparison costs ``O(B L^2)`` vector ops — the same dedup
    pattern the walk index uses, cheap because ``L`` is a small constant.
    """
    walks = np.asarray(walks)
    if walks.ndim != 2:
        raise ParameterError("walks must be a (B, L+1) matrix")
    batch, width = walks.shape
    counts = np.zeros((batch, width), dtype=np.int16)
    if width <= 1 or batch == 0:
        return counts
    lo = np.minimum(walks[:, :-1], walks[:, 1:]).astype(np.int64)
    hi = np.maximum(walks[:, :-1], walks[:, 1:]).astype(np.int64)
    num_labels = int(walks.max()) + 1
    keys = lo * num_labels + hi  # unique non-negative key per undirected edge
    stay = lo == hi  # dangling stay-put hops traverse nothing
    keys[stay] = -1
    fresh = ~stay  # stay hops are never fresh; &= below only clears bits
    hops = width - 1
    for t in range(1, hops):
        col = keys[:, t]
        for prev in range(t):
            fresh[:, t] &= col != keys[:, prev]
    counts[:, 1:] = np.cumsum(fresh, axis=1, dtype=np.int16)
    return counts


class EdgeWalkIndex:
    """Walk materialization for the edge-domination objective.

    Stores, for each of the ``R * n`` walks (walker-major layout):

    * ``prefix`` — ``(R * n, L + 1)`` distinct-edge prefix counts;
    * an inverted structure over hit nodes, exactly like
      :class:`~repro.walks.index.FlatWalkIndex`: for each node ``v``, the
      ``(state, hop)`` pairs of walks whose *first* visit of ``v`` is at
      ``hop``, where ``state = replicate * n + walker`` indexes ``prefix``.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        state: np.ndarray,
        hop: np.ndarray,
        prefix: np.ndarray,
        num_nodes: int,
        length: int,
        num_replicates: int,
    ):
        if num_nodes < 0 or length < 0 or num_replicates < 1:
            raise ParameterError("invalid index dimensions")
        if prefix.shape != (num_nodes * num_replicates, length + 1):
            raise ParameterError("prefix shape must be (R * n, L + 1)")
        if indptr.size != num_nodes + 1 or state.size != hop.size:
            raise ParameterError("inverted arrays are inconsistent")
        self.indptr = indptr
        self.state = state
        self.hop = hop
        self.prefix = prefix
        self.num_nodes = num_nodes
        self.length = length
        self.num_replicates = num_replicates

    @classmethod
    def build(
        cls,
        graph: Graph,
        length: int,
        num_replicates: int,
        seed: "int | np.random.Generator | None" = None,
        chunk_rows: int = 1 << 17,
    ) -> "EdgeWalkIndex":
        """Materialize R walks per node with prefix edge counts."""
        if length < 0:
            raise ParameterError("walk length L must be >= 0")
        if num_replicates < 1:
            raise ParameterError("number of replicates R must be >= 1")
        rng = resolve_rng(seed)
        n = graph.num_nodes
        starts = walker_major_starts(n, num_replicates)
        prefix = np.zeros((n * num_replicates, length + 1), dtype=np.int16)
        hit_parts: list[np.ndarray] = []
        state_parts: list[np.ndarray] = []
        hop_parts: list[np.ndarray] = []
        for lo in range(0, starts.size, chunk_rows):
            rows = starts[lo : lo + chunk_rows]
            walks = batch_walks(graph, rows, length, seed=rng)
            row_ids = np.arange(lo, lo + rows.size, dtype=np.int64)
            state = (row_ids % num_replicates) * n + rows
            prefix[state] = prefix_edge_counts(walks)
            for hop in range(1, length + 1):
                col = walks[:, hop].astype(np.int64)
                fresh = np.ones(rows.size, dtype=bool)
                for prev in range(hop):
                    np.logical_and(fresh, col != walks[:, prev], out=fresh)
                if not fresh.any():
                    continue
                hit_parts.append(col[fresh])
                state_parts.append(state[fresh])
                hop_parts.append(np.full(int(fresh.sum()), hop, dtype=np.int64))
        hits = (
            np.concatenate(hit_parts) if hit_parts else np.empty(0, dtype=np.int64)
        )
        states = (
            np.concatenate(state_parts)
            if state_parts
            else np.empty(0, dtype=np.int64)
        )
        hops = (
            np.concatenate(hop_parts) if hop_parts else np.empty(0, dtype=np.int64)
        )
        order = np.argsort(hits, kind="stable")
        bins = np.bincount(hits, minlength=n) if hits.size else np.zeros(
            n, dtype=np.int64
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(bins, out=indptr[1:])
        return cls(
            indptr=indptr,
            state=states[order],
            hop=hops[order].astype(np.int16),
            prefix=prefix,
            num_nodes=n,
            length=length,
            num_replicates=num_replicates,
        )

    @classmethod
    def from_walks(
        cls,
        walks: "Sequence[Sequence[int]] | np.ndarray",
        num_nodes: int,
        num_replicates: int,
    ) -> "EdgeWalkIndex":
        """Build from explicit walker-major walks (test/injection path)."""
        walks = np.asarray([list(map(int, w)) for w in walks], dtype=np.int64)
        if walks.shape[0] != num_nodes * num_replicates:
            raise ParameterError(
                f"expected {num_nodes * num_replicates} walks, got {walks.shape[0]}"
            )
        length = walks.shape[1] - 1
        expected_starts = walker_major_starts(num_nodes, num_replicates)
        if not np.array_equal(walks[:, 0], expected_starts):
            raise ParameterError("walks must be walker-major and start at walker")
        prefix = np.zeros((num_nodes * num_replicates, length + 1), dtype=np.int16)
        row_ids = np.arange(walks.shape[0], dtype=np.int64)
        state = (row_ids % num_replicates) * num_nodes + walks[:, 0]
        prefix[state] = prefix_edge_counts(walks)
        hit_parts: list[np.ndarray] = []
        state_parts: list[np.ndarray] = []
        hop_parts: list[np.ndarray] = []
        for hop in range(1, length + 1):
            col = walks[:, hop]
            fresh = np.ones(walks.shape[0], dtype=bool)
            for prev in range(hop):
                np.logical_and(fresh, col != walks[:, prev], out=fresh)
            if not fresh.any():
                continue
            hit_parts.append(col[fresh])
            state_parts.append(state[fresh])
            hop_parts.append(np.full(int(fresh.sum()), hop, dtype=np.int64))
        hits = (
            np.concatenate(hit_parts) if hit_parts else np.empty(0, dtype=np.int64)
        )
        states = (
            np.concatenate(state_parts)
            if state_parts
            else np.empty(0, dtype=np.int64)
        )
        hops = (
            np.concatenate(hop_parts) if hop_parts else np.empty(0, dtype=np.int64)
        )
        order = np.argsort(hits, kind="stable")
        bins = np.bincount(hits, minlength=num_nodes) if hits.size else np.zeros(
            num_nodes, dtype=np.int64
        )
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(bins, out=indptr[1:])
        return cls(
            indptr=indptr,
            state=states[order],
            hop=hops[order].astype(np.int16),
            prefix=prefix,
            num_nodes=num_nodes,
            length=length,
            num_replicates=num_replicates,
        )

    def entries_for(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """``(state, hop)`` of walks whose first visit of ``node`` is at hop."""
        if not 0 <= node < self.num_nodes:
            raise ParameterError(f"node {node} out of range")
        lo, hi = self.indptr[node], self.indptr[node + 1]
        return self.state[lo:hi], self.hop[lo:hi]


class EdgeDominationEngine:
    """Algorithm 6's loop with hop arithmetic replaced by edge counts.

    ``d[state]`` is the current truncated stop hop ``T_w(S)`` of each walk
    (``L`` while nothing is selected).  The cost of a walk is
    ``prefix[state, d[state]]``; selecting ``u`` relaxes ``d`` on the walks
    that first-visit ``u`` earlier than their current stop.
    """

    def __init__(self, index: EdgeWalkIndex):
        self.index = index
        size = index.num_nodes * index.num_replicates
        self.d = np.full(size, index.length, dtype=np.int32)
        self._rows = np.arange(size, dtype=np.int64)
        self._chosen = np.zeros(index.num_nodes, dtype=bool)
        self.selected: list[int] = []
        self.gains: list[float] = []
        self.num_gain_evaluations = 0

    @property
    def num_nodes(self) -> int:
        return self.index.num_nodes

    @property
    def num_replicates(self) -> int:
        return self.index.num_replicates

    def objective_value(self) -> float:
        """Current estimate of ``F3(S)``: mean traffic saved across walks."""
        prefix = self.index.prefix
        full = prefix[:, self.index.length].astype(np.int64)
        now = prefix[self._rows, self.d].astype(np.int64)
        return float((full - now).sum()) / self.num_replicates

    def gains_all(self) -> np.ndarray:
        """Raw gain sums (``sigma_u * R``) for every node, one index pass."""
        index = self.index
        current_cost = index.prefix[index.state, self.d[index.state]].astype(
            np.int64
        )
        candidate_cost = index.prefix[index.state, index.hop].astype(np.int64)
        contrib = current_cost - candidate_cost
        np.maximum(contrib, 0, out=contrib)
        running = np.zeros(index.state.size + 1, dtype=np.int64)
        np.cumsum(contrib, out=running[1:])
        gains = running[index.indptr[1:]] - running[index.indptr[:-1]]
        # Selecting u also stops u's own walks at hop 0: state r * n + u sits
        # at row r, column u of the (R, n) view, so the column sums credit
        # each candidate with its own walks' full current cost.
        n = self.num_nodes
        own_cost = index.prefix[self._rows, self.d].reshape(
            self.num_replicates, n
        )
        gains = gains + own_cost.sum(axis=0, dtype=np.int64)
        self.num_gain_evaluations += n
        return gains

    def gain_of(self, node: int) -> int:
        """Raw gain sum (``sigma_u * R``) of a single candidate."""
        if not 0 <= node < self.num_nodes:
            raise ParameterError(f"node {node} out of range")
        index = self.index
        state, hop = index.entries_for(node)
        current_cost = index.prefix[state, self.d[state]].astype(np.int64)
        candidate_cost = index.prefix[state, hop].astype(np.int64)
        contrib = current_cost - candidate_cost
        np.maximum(contrib, 0, out=contrib)
        own_states = self._rows[node :: self.num_nodes]
        own = index.prefix[own_states, self.d[own_states]].sum(dtype=np.int64)
        self.num_gain_evaluations += 1
        return int(contrib.sum()) + int(own)

    def select(self, node: int, gain: "float | None" = None) -> None:
        """Commit one selection and relax the stop hops (Algorithm 5)."""
        if self._chosen[node]:
            raise ParameterError(f"node {node} already selected")
        state, hop = self.index.entries_for(node)
        self.d[node :: self.num_nodes] = 0
        self.d[state] = np.minimum(self.d[state], hop.astype(np.int32))
        self._chosen[node] = True
        self.selected.append(int(node))
        self.gains.append(
            float(gain) / self.num_replicates if gain is not None else float("nan")
        )

    def run(self, k: int, lazy: bool = True) -> None:
        """Greedily select ``k`` nodes (continuing any prior selections)."""
        if not 0 <= k <= self.num_nodes - len(self.selected):
            raise ParameterError("k out of range for remaining candidates")
        if lazy:
            self._run_lazy(k)
        else:
            self._run_full(k)

    def _run_full(self, k: int) -> None:
        for _ in range(k):
            gains = self.gains_all()
            gains[self._chosen] = np.iinfo(np.int64).min
            best = int(gains.argmax())
            self.select(best, gain=float(gains[best]))

    def _run_lazy(self, k: int) -> None:
        if k == 0:
            return
        gains = self.gains_all()
        heap = [
            (-int(gains[u]), u, len(self.selected))
            for u in range(self.num_nodes)
            if not self._chosen[u]
        ]
        heapq.heapify(heap)
        for _ in range(k):
            current = len(self.selected)
            while True:
                neg_gain, node, seen = heapq.heappop(heap)
                if seen == current:
                    self.select(node, gain=float(-neg_gain))
                    break
                fresh = self.gain_of(node)
                heapq.heappush(heap, (-fresh, node, current))


def edge_domination_greedy(
    graph: Graph,
    k: int,
    length: int,
    num_replicates: int = 100,
    seed: "int | np.random.Generator | None" = None,
    index: EdgeWalkIndex | None = None,
    lazy: bool = True,
) -> SelectionResult:
    """Greedy for the edge-domination objective ``F3`` (``ApproxF3``).

    Same shape as :func:`~repro.core.approx_fast.approx_greedy_fast`:
    materialize R walks per node once, then answer every round from the
    index.  Time ``O(k R L n)``, space ``O(n R L + m)``.
    """
    if not 0 <= k <= graph.num_nodes:
        raise ParameterError(f"k={k} must lie in [0, n={graph.num_nodes}]")
    started = time.perf_counter()
    if index is None:
        index = EdgeWalkIndex.build(graph, length, num_replicates, seed=seed)
    elif index.num_nodes != graph.num_nodes:
        raise ParameterError("index was built for a different graph size")
    engine = EdgeDominationEngine(index)
    engine.run(k, lazy=lazy)
    elapsed = time.perf_counter() - started
    return SelectionResult(
        algorithm="ApproxF3",
        selected=tuple(engine.selected),
        gains=tuple(engine.gains),
        elapsed_seconds=elapsed,
        num_gain_evaluations=engine.num_gain_evaluations,
        params={
            "k": k,
            "L": index.length,
            "R": index.num_replicates,
            "objective": "f3",
            "lazy": lazy,
        },
    )


def expected_edges_traversed(
    graph: Graph,
    targets: Collection[int],
    length: int,
    num_replicates: int = 500,
    seed: "int | np.random.Generator | None" = None,
) -> float:
    """Monte-Carlo estimate of ``sum_u E[C_w(T_w(S))]`` — expected total
    distinct-edge traffic until the walks from every node hit ``S``.

    The evaluation metric for edge domination (lower = better placement),
    the edge analogue of the paper's AHT metric.
    """
    if length < 0:
        raise ParameterError("walk length L must be >= 0")
    if num_replicates < 1:
        raise ParameterError("number of replicates R must be >= 1")
    target_set = {int(v) for v in targets}
    for v in target_set:
        if not 0 <= v < graph.num_nodes:
            raise ParameterError(f"target {v} out of range")
    rng = resolve_rng(seed)
    n = graph.num_nodes
    starts = walker_major_starts(n, num_replicates)
    walks = batch_walks(graph, starts, length, seed=rng)
    counts = prefix_edge_counts(walks)
    mask = np.zeros(n, dtype=bool)
    if target_set:
        mask[list(target_set)] = True
    hits = mask[walks]
    any_hit = hits.any(axis=1)
    stop = np.where(any_hit, hits.argmax(axis=1), length)
    cost = counts[np.arange(walks.shape[0]), stop].astype(np.float64)
    return float(cost.sum()) / num_replicates


def estimate_f3(
    graph: Graph,
    targets: Collection[int],
    length: int,
    num_replicates: int = 500,
    seed: "int | np.random.Generator | None" = None,
) -> float:
    """Monte-Carlo estimate of ``F3(S)`` (expected traffic *saved*).

    ``F3(S) = sum_u E[C_w(L)] - expected_edges_traversed(S)`` on the same
    walks, so the two quantities are consistent by construction.
    """
    if length < 0:
        raise ParameterError("walk length L must be >= 0")
    if num_replicates < 1:
        raise ParameterError("number of replicates R must be >= 1")
    target_set = {int(v) for v in targets}
    for v in target_set:
        if not 0 <= v < graph.num_nodes:
            raise ParameterError(f"target {v} out of range")
    rng = resolve_rng(seed)
    n = graph.num_nodes
    starts = walker_major_starts(n, num_replicates)
    walks = batch_walks(graph, starts, length, seed=rng)
    counts = prefix_edge_counts(walks)
    mask = np.zeros(n, dtype=bool)
    if target_set:
        mask[list(target_set)] = True
    hits = mask[walks]
    any_hit = hits.any(axis=1)
    stop = np.where(any_hit, hits.argmax(axis=1), length)
    rows = np.arange(walks.shape[0])
    saved = counts[:, length].astype(np.int64) - counts[rows, stop].astype(np.int64)
    return float(saved.sum()) / num_replicates
