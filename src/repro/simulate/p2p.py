"""P2P resource-search simulation — the paper's third scenario.

Unstructured P2P systems commonly search by random walk with a TTL
(time-to-live) budget [5]; a popular refinement sends several walkers in
parallel and succeeds when any of them finds the resource.  This module
simulates that protocol against a resource placement:

* each *query* originates at a peer and launches ``walkers_per_query``
  independent TTL-bounded walks;
* a query succeeds when any walker reaches a peer hosting the resource
  (hop 0 counts: the querying peer may host it already);
* the *message cost* of a query is the number of hops its walkers take,
  with each walker stopping as soon as it finds the resource (walkers do
  not coordinate — they stop on their own discovery only, the standard
  "walker checks locally" model).

A good placement (the random-walk domination solvers) raises the success
rate and lowers both latency and message cost, which is exactly the
"accelerating resource search" claim of Section 1.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.weighted import WeightedDiGraph
from repro.hitting.transition import target_mask
from repro.simulate._walks import run_first_hits
from repro.walks.backends import WalkEngine
from repro.walks.rng import resolve_rng

__all__ = ["P2PSearchReport", "simulate_p2p_search"]


@dataclass(frozen=True)
class P2PSearchReport:
    """Outcome of a P2P search simulation.

    Attributes
    ----------
    num_queries:
        Queries simulated.
    num_successes:
        Queries where at least one walker found the resource in time.
    success_rate:
        ``num_successes / num_queries``.
    mean_hops_to_hit:
        Average latency (first-success hop, minimum across a query's
        walkers) among successful queries; ``nan`` if none succeeded.
    total_messages:
        Total hops taken by all walkers of all queries (walkers stop on
        their own discovery, otherwise walk out their TTL).
    mean_messages_per_query:
        ``total_messages / num_queries``.
    ttl:
        Hop budget per walker.
    walkers_per_query:
        Parallel walkers launched per query.
    num_hosts:
        Peers hosting the resource.
    """

    num_queries: int
    num_successes: int
    success_rate: float
    mean_hops_to_hit: float
    total_messages: int
    mean_messages_per_query: float
    ttl: int
    walkers_per_query: int
    num_hosts: int


def simulate_p2p_search(
    graph: "Graph | WeightedDiGraph",
    hosts: Collection[int],
    num_queries: int = 10_000,
    ttl: int = 6,
    walkers_per_query: int = 1,
    origins: "np.ndarray | None" = None,
    seed: "int | np.random.Generator | None" = None,
    engine: "str | WalkEngine | None" = None,
) -> P2PSearchReport:
    """Simulate TTL-bounded random-walk search against a placement.

    Parameters
    ----------
    graph:
        The P2P overlay (undirected, or a :class:`WeightedDiGraph` whose
        arc weights bias the forwarding choice).
    hosts:
        Peers storing a replica of the resource.
    num_queries:
        Number of independent queries (ignored when ``origins`` is given).
    ttl:
        Hop budget per walker (the paper's ``L``).
    walkers_per_query:
        Independent walkers launched by each query.
    origins:
        Optional explicit query origins (array of node ids); defaults to
        uniformly random peers.
    seed:
        Randomness control, package-wide convention.
    """
    if ttl < 0:
        raise ParameterError("ttl must be >= 0")
    if walkers_per_query < 1:
        raise ParameterError("walkers_per_query must be >= 1")
    mask = target_mask(graph.num_nodes, hosts)
    rng = resolve_rng(seed)
    if origins is None:
        if num_queries < 1:
            raise ParameterError("num_queries must be >= 1")
        origins = rng.integers(0, graph.num_nodes, size=num_queries)
    else:
        origins = np.asarray(origins, dtype=np.int64)
        if origins.size == 0:
            raise ParameterError("origins must be non-empty")
        if origins.min() < 0 or origins.max() >= graph.num_nodes:
            raise ParameterError("origins out of range")
    queries = origins.size
    starts = np.repeat(origins, walkers_per_query)
    first = run_first_hits(graph, starts, ttl, mask, rng, engine=engine)  # -1 on miss
    per_query = first.reshape(queries, walkers_per_query)
    hit_hops = np.where(per_query >= 0, per_query, ttl + 1)
    best = hit_hops.min(axis=1)
    success = best <= ttl
    num_successes = int(success.sum())
    # Each walker sends one message per hop until min(its own hit, TTL);
    # hop 0 (origin already hosts) costs nothing.
    walker_cost = np.where(first >= 0, first, ttl)
    total_messages = int(walker_cost.sum())
    mean_hops = float(best[success].mean()) if num_successes else float("nan")
    return P2PSearchReport(
        num_queries=int(queries),
        num_successes=num_successes,
        success_rate=num_successes / queries,
        mean_hops_to_hit=mean_hops,
        total_messages=total_messages,
        mean_messages_per_query=total_messages / queries,
        ttl=ttl,
        walkers_per_query=walkers_per_query,
        num_hosts=int(mask.sum()),
    )
