"""Acceptance benchmark for the out-of-core index build (DESIGN.md §15).

The standing claims on the R=100 memory workload (the same 2k-node
power-law graph at L=10 as ``bench_index_memory.py``):

* ``build_index_archive`` under a small ``memory_budget`` writes
  **byte-identical** archives to the in-memory build-then-save path for
  both v3 formats (``oocore.archive_parity``, hard gate — the container
  is deterministic, so this cannot depend on the runner), while
  actually exercising the external sort (≥2 spilled runs asserted: a
  budget that never spills would gate nothing), and
* the streamed build's peak traced allocation stays **≥ 2x** below the
  dense path's (``oocore.build_mem_ratio_x``, hard gate).  tracemalloc
  rather than RSS: numpy registers its data allocations with it, so the
  peak is deterministic where RSS is paging-policy noise.  The process
  RSS delta of each path is still recorded report-only, mirroring the
  residency keys of ``bench_index_memory.py``.

Build wall times and the spill volume are recorded report-only —
out-of-core trades wall clock for memory by design; this bench gates
the memory, not the speed.
"""

import gc
import os
import sys
import time
import tracemalloc

import pytest

from repro.graphs.generators import power_law_graph
from repro.walks.build import build_index_archive
from repro.walks.index import FlatWalkIndex
from repro.walks.persistence import save_index

LENGTH = 10
REPLICATES = 100
CHUNK_ROWS = 1 << 15  # shared by both paths: chunking is RNG contract
MEMORY_BUDGET = 4 << 20
ENGINE = "csr"
SEED = 5
MEM_RATIO_FLOOR = 2.0


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(2_000, 20_000, seed=79)


def _rss_bytes() -> "int | None":
    if not sys.platform.startswith("linux"):
        return None
    with open("/proc/self/statm") as handle:
        return int(handle.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")


def _dense_path(graph, out):
    """The historical spelling: materialize, then save."""
    index = FlatWalkIndex.build(
        graph, LENGTH, REPLICATES, seed=SEED, engine=ENGINE,
        chunk_rows=CHUNK_ROWS,
    )
    save_index(
        index, out, graph=graph, engine=ENGINE, seed=SEED, format="mmap"
    )


def _streamed_path(graph, out):
    return build_index_archive(
        graph, LENGTH, REPLICATES, out, format="mmap", seed=SEED,
        engine=ENGINE, chunk_rows=CHUNK_ROWS, memory_budget=MEMORY_BUDGET,
    )


def _traced(fn):
    """``(peak_traced_bytes, rss_delta_or_None, elapsed_s)`` of ``fn()``."""
    gc.collect()
    rss_before = _rss_bytes()
    tracemalloc.start()
    started = time.perf_counter()
    try:
        fn()
    finally:
        elapsed = time.perf_counter() - started
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    rss_after = _rss_bytes()
    rss_delta = None if rss_before is None else rss_after - rss_before
    return peak, rss_delta, elapsed


def test_streamed_archive_byte_parity(graph, bench_record, tmp_path):
    """Out-of-core v3 archives byte-identical to the in-memory build's."""
    index = FlatWalkIndex.build(
        graph, LENGTH, REPLICATES, seed=SEED, engine=ENGINE,
        chunk_rows=CHUNK_ROWS,
    )
    parity = True
    for fmt in ("mmap", "compressed"):
        ref = save_index(
            index, tmp_path / f"ref-{fmt}", graph=graph, engine=ENGINE,
            seed=SEED, format=fmt,
        )
        report = build_index_archive(
            graph, LENGTH, REPLICATES, tmp_path / f"oo-{fmt}.idx3",
            format=fmt, seed=SEED, engine=ENGINE, chunk_rows=CHUNK_ROWS,
            memory_budget=MEMORY_BUDGET,
        )
        assert report.num_runs >= 2, (
            f"budget {MEMORY_BUDGET} never spilled — the parity gate "
            "would not cover the merge path"
        )
        same = ref.read_bytes() == report.path.read_bytes()
        parity = parity and same
        print(
            f"\n{fmt}: {report.total_entries:,} entries, "
            f"{report.num_runs} runs, {report.spilled_bytes:,} B spilled, "
            f"byte-identical={same}"
        )
        if fmt == "mmap":
            bench_record("oocore.num_runs", report.num_runs)
            bench_record("oocore.spilled_bytes", report.spilled_bytes)
    bench_record("oocore.archive_parity", bool(parity))
    assert parity, "streamed archive differs from the in-memory build's"


def test_streamed_build_peak_memory(graph, bench_record, tmp_path):
    """Streamed build peak >= 2x below dense build-then-save peak (hard)."""
    # Warm shared caches (graph CSR, engine scratch) so neither
    # measurement pays one-time allocations the other skipped.
    _streamed_path(graph, tmp_path / "warm.idx3")

    dense_peak, dense_rss, dense_s = _traced(
        lambda: _dense_path(graph, tmp_path / "dense.idx3")
    )
    stream_peak, stream_rss, stream_s = _traced(
        lambda: _streamed_path(graph, tmp_path / "stream.idx3")
    )
    ratio = dense_peak / stream_peak
    print(
        f"\npeak traced bytes: dense {dense_peak:,}, "
        f"streamed {stream_peak:,} -> {ratio:.2f}x "
        f"(budget {MEMORY_BUDGET:,})"
    )
    print(
        f"wall: dense {dense_s:.3f} s, streamed {stream_s:.3f} s; "
        f"RSS delta: dense {dense_rss}, streamed {stream_rss}"
    )
    bench_record("oocore.dense_peak_bytes", dense_peak)
    bench_record("oocore.stream_peak_bytes", stream_peak)
    bench_record("oocore.build_mem_ratio_x", ratio)
    bench_record("oocore.build_dense_s", dense_s)
    bench_record("oocore.build_stream_s", stream_s)
    if dense_rss is not None:
        bench_record("oocore.build_dense_rss_delta_bytes", dense_rss)
        bench_record("oocore.build_stream_rss_delta_bytes", stream_rss)
    assert ratio >= MEM_RATIO_FLOOR, (
        f"streamed build peak only {ratio:.2f}x below dense "
        f"(floor {MEM_RATIO_FLOOR}x)"
    )
