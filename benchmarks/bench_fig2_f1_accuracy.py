"""Fig. 2: effectiveness of DPF1 vs ApproxF1 as a function of R.

Paper shape: ApproxF1's AHT and EHN sit within a hair of DPF1's for
R >= 50 and match it around R ~ 100.
"""

from repro.experiments.figures import fig2


def test_fig2(benchmark, config, report):
    table = benchmark.pedantic(lambda: fig2(config), rounds=1, iterations=1)
    report(table, "fig2.txt")
    for length in (5, 10):
        dp_rows = table.filtered(L=length, algorithm="DPF1")
        assert len(dp_rows) == 1
        dp_aht = dp_rows[0][table.columns.index("AHT")]
        approx_rows = table.filtered(L=length, algorithm="ApproxF1")
        assert len(approx_rows) == 5  # R grid
        for row in approx_rows:
            approx_aht = row[table.columns.index("AHT")]
            # Within 5% of the DP reference at every R (paper: ~0.2%).
            assert abs(approx_aht - dp_aht) <= 0.05 * dp_aht
