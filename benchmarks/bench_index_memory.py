"""Acceptance benchmark for the index storage backends (DESIGN.md §13).

The standing claims on the R=100 index-memory workload (a 2k-node
power-law graph at L=10 — big enough that entry bytes dominate, small
enough for the shared-runner bench job):

* the **compressed** representation holds the entry arrays in **>= 3x**
  fewer bytes than dense (hard gate — the codec is deterministic, so
  this ratio does not depend on the runner), while staying
  **bit-identical** (hard parity gate), and
* greedy selection on compressed storage stays within **2x** of dense
  (soft timing gate, honors ``--no-timing-gate``).  ``best_of`` makes
  this a steady-state number: repeat queries hit the storage's bounded
  decoded-block cache, so only the first solve on a cold index pays the
  full per-candidate decode.

Also recorded, report-only: the archive sizes of all three ``repro
index --index-format`` variants and the resident-set growth of loading
each archive family — the mmap container's RSS delta is the "serve a
bigger-than-RAM index" story, but residency is OS paging policy, so it
is never asserted.
"""

import os
import sys

import numpy as np
import pytest

from repro.core.approx_fast import approx_greedy_fast
from repro.graphs.generators import power_law_graph
from repro.walks.index import FlatWalkIndex
from repro.walks.persistence import load_index, save_index

from benchmarks.conftest import best_of

COMPRESSION_FLOOR = 3.0
QUERY_SLOWDOWN_CEILING = 2.0


@pytest.fixture(scope="module")
def workload():
    graph = power_law_graph(2_000, 20_000, seed=79)
    index = FlatWalkIndex.build(graph, 10, 100, seed=5)
    return graph, index


def _rss_bytes() -> "int | None":
    """Resident set size via /proc (Linux only; None elsewhere)."""
    if not sys.platform.startswith("linux"):
        return None
    with open("/proc/self/statm") as handle:
        return int(handle.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")


def test_compression_ratio_and_parity(workload, bench_record):
    """Entry bytes: compressed >= 3x smaller, bit-identical (both hard)."""
    _, index = workload
    compressed = index.compress()
    parity = (
        np.array_equal(index.indptr, compressed.indptr)
        and np.array_equal(index.state, compressed.state)
        and np.array_equal(index.hop, compressed.hop)
    )
    bench_record("index_memory.variant_parity", bool(parity))
    assert parity, "compressed storage decoded different entries"

    dense_bytes = index.storage_nbytes()
    compressed_bytes = compressed.storage_nbytes()
    ratio = dense_bytes / compressed_bytes
    print(
        f"\nentry bytes (n=2k power-law, L=10, R=100): "
        f"dense {dense_bytes:,}, compressed {compressed_bytes:,} "
        f"-> {ratio:.2f}x"
    )
    bench_record("index_memory.dense_entry_bytes", dense_bytes)
    bench_record("index_memory.compressed_entry_bytes", compressed_bytes)
    bench_record("index_memory.compression_ratio_x", ratio)
    assert ratio >= COMPRESSION_FLOOR, (
        f"compressed entries only {ratio:.2f}x smaller than dense "
        f"(floor {COMPRESSION_FLOOR}x)"
    )


def test_compressed_query_slowdown(workload, bench_record, timing_gate):
    """Greedy select on compressed storage within 2x of dense (soft)."""
    graph, index = workload
    compressed = index.compress()
    k = 32
    dense_s, want = best_of(
        3, lambda: approx_greedy_fast(
            graph, k, index.length, index=index, objective="f2"
        )
    )
    compressed_s, got = best_of(
        3, lambda: approx_greedy_fast(
            graph, k, index.length, index=compressed, objective="f2"
        )
    )
    bench_record(
        "index_memory.query_parity",
        bool(got.selected == want.selected and got.gains == want.gains),
    )
    assert got.selected == want.selected

    speedup = dense_s / compressed_s
    print(
        f"\ngreedy select k={k}: dense {dense_s:.3f} s, "
        f"compressed {compressed_s:.3f} s -> {speedup:.2f}x"
    )
    bench_record("index_memory.select_dense_s", dense_s)
    bench_record("index_memory.select_compressed_s", compressed_s)
    bench_record("index_memory.compressed_query_speedup_x", speedup)
    floor = 1.0 / QUERY_SLOWDOWN_CEILING
    if timing_gate:
        assert speedup >= floor, (
            f"compressed queries {1 / speedup:.2f}x slower than dense "
            f"(ceiling {QUERY_SLOWDOWN_CEILING}x)"
        )
    elif speedup < floor:
        print(
            f"TIMING (report-only, --no-timing-gate): compressed queries "
            f"{1 / speedup:.2f}x slower than dense "
            f"(ceiling {QUERY_SLOWDOWN_CEILING}x)"
        )


def test_archive_sizes_and_load_rss(workload, bench_record, tmp_path):
    """Archive bytes per format + load-time RSS growth (report-only)."""
    graph, index = workload
    sizes = {}
    for fmt in ("dense", "compressed", "mmap"):
        path = save_index(
            index, tmp_path / f"walks-{fmt}", graph=graph, format=fmt
        )
        sizes[fmt] = path.stat().st_size
        bench_record(f"index_memory.archive_{fmt}_bytes", sizes[fmt])

        before = _rss_bytes()
        loaded = load_index(path, graph=graph)
        after = _rss_bytes()
        if before is not None:
            delta = after - before
            bench_record(f"index_memory.load_{fmt}_rss_delta_bytes", delta)
            print(
                f"\n{fmt}: archive {sizes[fmt]:,} B, "
                f"load RSS delta {delta:,} B"
            )
        assert loaded.total_entries == index.total_entries
    # The memmap container defers entry bytes to page-in; its metadata
    # load must not cost archive-sized RSS even though the file itself
    # (raw arrays + packed rows) is the largest of the three.
    assert sizes["compressed"] < sizes["mmap"]
