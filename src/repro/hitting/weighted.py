"""Exact hitting quantities on directed, weighted graphs.

The recursions of Theorems 2.2/2.3 only use the one-step transition
operator, so the directed/weighted extension is the same DP over
``P[u, v] = w(u, v) / strength(u)``.  This module builds that operator and
reuses the shared iteration kernels from :mod:`repro.hitting.exact`.
"""

from __future__ import annotations

from typing import Collection

import numpy as np
import scipy.sparse as sp

from repro.graphs.weighted import WeightedDiGraph
from repro.hitting.exact import hitting_iteration, probability_iteration
from repro.hitting.transition import target_mask

__all__ = [
    "weighted_transition_matrix",
    "weighted_hitting_time_vector",
    "weighted_hit_probability_vector",
]


def weighted_transition_matrix(graph: WeightedDiGraph) -> sp.csr_matrix:
    """Row-stochastic operator of the weighted walk (dangling = self-loop)."""
    n = graph.num_nodes
    strengths = np.zeros(n, dtype=np.float64)
    np.add.at(
        strengths,
        np.repeat(np.arange(n), graph.out_degrees),
        graph.weights,
    )
    dangling = np.flatnonzero(graph.out_degrees == 0)
    inv = np.ones(n)
    has_out = strengths > 0
    inv[has_out] = 1.0 / strengths[has_out]
    data = graph.weights * np.repeat(inv, graph.out_degrees)
    matrix = sp.csr_matrix(
        (data, graph.indices.astype(np.int64), graph.indptr), shape=(n, n)
    )
    if dangling.size:
        loops = sp.csr_matrix(
            (np.ones(dangling.size), (dangling, dangling)), shape=(n, n)
        )
        matrix = (matrix + loops).tocsr()
    return matrix


def weighted_hitting_time_vector(
    graph: WeightedDiGraph, targets: Collection[int], length: int
) -> np.ndarray:
    """``h^L_uS`` on the weighted walk, for every source ``u``."""
    if length < 0:
        raise ValueError("walk length L must be >= 0")
    mask = target_mask(graph.num_nodes, targets)
    return hitting_iteration(weighted_transition_matrix(graph), mask, [length])[0]


def weighted_hit_probability_vector(
    graph: WeightedDiGraph, targets: Collection[int], length: int
) -> np.ndarray:
    """``p^L_uS`` on the weighted walk, for every source ``u``."""
    if length < 0:
        raise ValueError("walk length L must be >= 0")
    mask = target_mask(graph.num_nodes, targets)
    return probability_iteration(
        weighted_transition_matrix(graph), mask, [length]
    )[0]
