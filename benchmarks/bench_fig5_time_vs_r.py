"""Fig. 5: approximate-greedy running time as a function of R.

Paper shape: runtime grows linearly in R.
"""

from repro.experiments.figures import fig5


def test_fig5(benchmark, config, report):
    table = benchmark.pedantic(lambda: fig5(config), rounds=1, iterations=1)
    report(table, "fig5.txt")
    seconds = table.columns.index("seconds")
    r_col = table.columns.index("R")
    for length in (5, 10):
        for algorithm in ("ApproxF1", "ApproxF2"):
            rows = sorted(
                table.filtered(L=length, algorithm=algorithm),
                key=lambda row: row[r_col],
            )
            times = [row[seconds] for row in rows]
            # Growing trend: the largest R must cost more than the smallest.
            assert times[-1] > times[0]
