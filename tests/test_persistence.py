"""Walk-index persistence: save/load round trips and corruption handling."""

import numpy as np
import pytest

from repro.core.approx_fast import approx_greedy_fast
from repro.errors import GraphFormatError
from repro.graphs.generators import power_law_graph, ring_graph
from repro.walks.index import FlatWalkIndex
from repro.walks.persistence import load_index, save_index


class TestRoundTrip:
    def test_arrays_identical(self, tmp_path):
        graph = power_law_graph(60, 180, seed=1)
        index = FlatWalkIndex.build(graph, 5, 8, seed=2)
        path = tmp_path / "walks.npz"
        save_index(index, path)
        back = load_index(path)
        np.testing.assert_array_equal(back.indptr, index.indptr)
        np.testing.assert_array_equal(back.state, index.state)
        np.testing.assert_array_equal(back.hop, index.hop)
        assert back.num_nodes == index.num_nodes
        assert back.length == index.length
        assert back.num_replicates == index.num_replicates

    def test_selection_identical_after_reload(self, tmp_path):
        """The point of persistence: same index -> same greedy answer."""
        graph = power_law_graph(80, 240, seed=3)
        index = FlatWalkIndex.build(graph, 4, 10, seed=4)
        path = tmp_path / "walks.npz"
        save_index(index, path)
        original = approx_greedy_fast(graph, 6, 4, index=index)
        reloaded = approx_greedy_fast(graph, 6, 4, index=load_index(path))
        assert original.selected == reloaded.selected

    def test_empty_index(self, tmp_path):
        """A graph of isolated nodes yields an index with zero entries."""
        from repro.graphs.builder import GraphBuilder

        builder = GraphBuilder()
        builder.touch_node(4)
        index = FlatWalkIndex.build(builder.build(), 3, 2, seed=5)
        path = tmp_path / "empty.npz"
        save_index(index, path)
        back = load_index(path)
        assert back.total_entries == 0
        assert back.num_nodes == 5


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises((GraphFormatError, FileNotFoundError)):
            load_index(tmp_path / "nope.npz")

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip file")
        with pytest.raises(GraphFormatError):
            load_index(path)

    def test_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.arange(5))
        with pytest.raises(GraphFormatError):
            load_index(path)

    def test_wrong_version(self, tmp_path):
        graph = ring_graph(6)
        index = FlatWalkIndex.build(graph, 2, 2, seed=1)
        path = tmp_path / "v99.npz"
        np.savez(
            path,
            version=np.int64(99),
            header=np.asarray([6, 2, 2], dtype=np.int64),
            indptr=index.indptr,
            state=index.state,
            hop=index.hop,
        )
        with pytest.raises(GraphFormatError):
            load_index(path)

    def test_inconsistent_arrays(self, tmp_path):
        graph = ring_graph(6)
        index = FlatWalkIndex.build(graph, 2, 2, seed=1)
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            version=np.int64(1),
            header=np.asarray([6, 2, 2], dtype=np.int64),
            indptr=index.indptr,
            state=index.state[:-1],  # truncated
            hop=index.hop,
        )
        with pytest.raises(GraphFormatError):
            load_index(path)
