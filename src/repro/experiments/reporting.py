"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module owns the formatting so every bench looks the
same and the outputs diff cleanly between runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["ExperimentTable", "format_table", "format_value"]


def format_value(value: Any) -> str:
    """Render one cell: floats to 4 significant-ish decimals, rest via str."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class ExperimentTable:
    """One paper exhibit as a titled column/row table."""

    title: str
    columns: tuple[str, ...]
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> list[Any]:
        """All values of one column, by name."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def filtered(self, **criteria: Any) -> "list[tuple[Any, ...]]":
        """Rows whose named columns equal the given values."""
        idxs = {self.columns.index(name): value for name, value in criteria.items()}
        return [
            row
            for row in self.rows
            if all(row[i] == v for i, v in idxs.items())
        ]

    def to_csv(self) -> str:
        """Comma-separated form (header row + data rows, RFC-4180 quoting)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def to_dict(self) -> dict:
        """Plain-dict form for JSON archiving."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def __str__(self) -> str:
        return format_table(self.title, self.columns, self.rows, self.notes)


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    notes: Sequence[str] = (),
) -> str:
    """ASCII table with a title rule, aligned columns, and footnotes."""
    rendered = [[format_value(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    rule = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} ==", header, rule]
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    for note in notes:
        lines.append(f"  * {note}")
    return "\n".join(lines)
