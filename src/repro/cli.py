"""Command-line interface.

Ten subcommands cover the library's everyday workflows::

    repro select    # run a solver on a graph and print/serialize targets
    repro metrics   # evaluate AHT/EHN for a given target set
    repro generate  # write a synthetic graph as a SNAP edge list
    repro exhibit   # regenerate one of the paper's tables/figures
    repro simulate  # run an application simulation against a placement
    repro index     # materialize Algorithm 3's walk index to a .npz file
    repro analyze   # horizon (L) recommendation for a target set
    repro dynamic   # edge-churn workloads: trace replay with incremental
                    # index maintenance, robust selection, bondage attack
    repro serve     # drive a query workload through the concurrent
                    # serving layer (repro.serve) and report latency
    repro stats     # fetch /metrics or /stats from a running HTTP server

The heavier subcommands (``select``, ``index``, ``dynamic``, ``serve``)
accept ``--telemetry`` to enable the :mod:`repro.obs` metrics registry
and span tracer (DESIGN.md §14); ``--telemetry`` prints a Prometheus
text dump on exit and ``--trace-out FILE`` writes the recorded spans as
Chrome ``trace_event`` JSON (load it at ``chrome://tracing`` or
https://ui.perfetto.dev).  Telemetry never changes results — only
observability — and is off (zero-cost) by default.

The graph for ``select``/``metrics``/``simulate``/``index``/``analyze``/
``dynamic``/``serve`` comes from exactly one of ``--edge-list FILE``,
``--dataset NAME`` (Table 2 replica), or ``--synthetic N,M`` (power-law).
Exit status is 0 on success, 2 on usage errors (argparse convention), and
1 when the library rejects a parameter.

Sampling-based subcommands (``select`` with a walk-based method,
``metrics --sampled``, ``simulate``, ``index``, ``dynamic``, ``serve``)
accept ``--engine`` to pick the walk backend (see
:mod:`repro.walks.backends`):
``numpy`` (default), ``csr`` (fastest single-threaded), ``sharded``
(stream-sliced shards on a thread pool), or ``multiproc`` (the same
shards on a shared-memory process pool — the multi-core path).  All
four are bit-identical under one seed, so the flag changes wall-clock
only.  ``select`` with the ``approx-fast`` or ``sampling``
method — and ``dynamic``, for its replay (re-)solves — additionally
accepts ``--gain-backend`` (``entries`` or ``bitset``, see
:mod:`repro.core.coverage_kernel`) to pick the marginal-gain machinery;
both backends produce identical selections.

A typical index-reuse workflow — pay the walk materialization once, sweep
budgets afterwards::

    repro index --dataset Epinions --dataset-scale 0.25 -L 6 -R 100 \
        --out epinions.idx.npz
    repro select --dataset Epinions --dataset-scale 0.25 -k 20 \
        --index epinions.idx.npz
    repro select --dataset Epinions --dataset-scale 0.25 -k 100 \
        --index epinions.idx.npz
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import asdict
from typing import Sequence

from repro.errors import ParameterError, RwdomError
from repro.graphs.adjacency import Graph
from repro.core.coverage_kernel import (
    DEFAULT_GAIN_BACKEND,
    GAIN_BACKENDS,
    ROWS_FORMATS,
)
from repro.walks.backends import DEFAULT_ENGINE, available_engines
from repro.walks.build import DEFAULT_CHUNK_ROWS
from repro.walks.storage import INDEX_FORMATS
from repro.graphs.datasets import dataset_names, load_dataset
from repro.graphs.generators import (
    erdos_renyi_graph,
    power_law_graph,
)
from repro.graphs.io import read_edge_list, write_edge_list
from repro.core.problems import SOLVER_NAMES, Problem1, Problem2, solve
from repro.metrics.evaluation import evaluate_selection
from repro.experiments import extensions, figures
from repro.experiments.config import default_config
from repro.experiments.plotting import plot_table
from repro.simulate import (
    simulate_ad_campaign,
    simulate_p2p_search,
    simulate_social_browsing,
)

__all__ = ["main", "build_parser"]

_EXHIBITS = {
    "table2": figures.table2,
    "fig2": figures.fig2,
    "fig3": figures.fig3,
    "fig4": figures.fig4,
    "fig5": figures.fig5,
    "fig6": figures.fig6,
    "fig7": figures.fig7,
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "ext-edge-domination": extensions.ext_edge_domination,
    "ext-stochastic": extensions.ext_stochastic,
    "ext-applications": extensions.ext_applications,
}


def build_parser() -> argparse.ArgumentParser:
    """The full argparse tree (exposed for testing and docs generation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Random-walk domination in large graphs (ICDE 2014).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    select = sub.add_parser("select", help="select target nodes")
    _add_graph_source(select)
    select.add_argument("-k", type=int, required=True, help="budget |S|")
    select.add_argument("-L", "--length", type=int, default=6, help="walk length")
    select.add_argument(
        "--problem", choices=("1", "2"), default="2",
        help="1: min hitting time, 2: max dominated nodes",
    )
    select.add_argument(
        "--method", choices=SOLVER_NAMES, default="approx-fast",
        help="solver to run",
    )
    select.add_argument(
        "-R", "--replicates", type=int, default=100,
        help="walks per node for sampling-based solvers",
    )
    select.add_argument("--seed", type=int, default=None)
    _add_engine_flag(select)
    select.add_argument(
        "--gain-backend", choices=GAIN_BACKENDS, default=DEFAULT_GAIN_BACKEND,
        help="marginal-gain machinery for approx-fast/sampling (default: "
        f"{DEFAULT_GAIN_BACKEND}; 'bitset' uses the packed coverage "
        "kernel — identical selections, different speed/memory profile)",
    )
    select.add_argument(
        "--evaluate", action="store_true",
        help="also print exact AHT/EHN of the selection",
    )
    select.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the SelectionResult as JSON ('-' for stdout)",
    )
    select.add_argument(
        "--index", metavar="FILE", default=None,
        help="reuse a walk index built by 'repro index' (approx-fast only; "
        "overrides -L and -R with the index's own parameters)",
    )
    _add_telemetry_flags(select)

    metrics = sub.add_parser("metrics", help="evaluate a target set")
    _add_graph_source(metrics)
    metrics.add_argument(
        "--targets", required=True,
        help="comma-separated node ids, e.g. 3,17,42",
    )
    metrics.add_argument("-L", "--length", type=int, default=6)
    metrics.add_argument(
        "--sampled", action="store_true",
        help="use the paper's R=500 sampler instead of the exact DP",
    )
    metrics.add_argument("--seed", type=int, default=None)
    _add_engine_flag(metrics)

    generate = sub.add_parser("generate", help="write a synthetic graph")
    generate.add_argument(
        "--model", choices=("power-law", "erdos-renyi"), default="power-law"
    )
    generate.add_argument("-n", "--nodes", type=int, required=True)
    generate.add_argument(
        "-m", "--edges", type=int, default=None,
        help="edge count (power-law) — defaults to 10n",
    )
    generate.add_argument(
        "-p", "--probability", type=float, default=None,
        help="edge probability (erdos-renyi)",
    )
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--out", required=True, help="output edge-list path")

    exhibit = sub.add_parser(
        "exhibit", help="regenerate a table/figure of the paper"
    )
    exhibit.add_argument("name", choices=sorted(_EXHIBITS))
    exhibit.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale override (default: REPRO_SCALE or 0.25)",
    )
    exhibit.add_argument(
        "--csv", metavar="FILE", default=None,
        help="also write the rows as CSV ('-' for stdout)",
    )
    exhibit.add_argument(
        "--plot", metavar="X:Y[:GROUP]", default=None,
        help="also render an ASCII plot of column Y against column X, one "
        "curve per GROUP value (default group column: 'algorithm')",
    )

    simulate = sub.add_parser(
        "simulate", help="run an application simulation against a placement"
    )
    _add_graph_source(simulate)
    simulate.add_argument(
        "--app", choices=("social", "p2p", "ads"), required=True,
        help="which Section 1.1 scenario to simulate",
    )
    simulate.add_argument(
        "--targets", default=None,
        help="explicit placement as comma-separated node ids; when omitted "
        "the placement is computed with --method/-k",
    )
    simulate.add_argument("-k", type=int, default=10, help="placement size")
    simulate.add_argument(
        "--method", choices=SOLVER_NAMES, default="approx-fast",
        help="solver for the placement when --targets is omitted",
    )
    simulate.add_argument("-L", "--length", type=int, default=6,
                          help="hop budget per session/query")
    simulate.add_argument(
        "--sessions", type=int, default=10_000,
        help="browsing sessions (social) / queries (p2p)",
    )
    simulate.add_argument(
        "--walkers", type=int, default=1, help="walkers per query (p2p)"
    )
    simulate.add_argument(
        "--sessions-per-user", type=int, default=5,
        help="sessions per user (ads)",
    )
    simulate.add_argument("--seed", type=int, default=None)
    _add_engine_flag(simulate)
    simulate.add_argument(
        "--churn-trace", metavar="FILE", default=None,
        help="p2p only: churn trace (leave/rejoin/add/del/step lines, see "
        "repro.dynamic.churn.parse_trace); peers leave and rejoin "
        "mid-simulation, one query phase per 'step'",
    )

    index = sub.add_parser(
        "index", help="materialize the walk index (Algorithm 3) to a file"
    )
    _add_graph_source(index)
    index.add_argument("-L", "--length", type=int, default=6)
    index.add_argument("-R", "--replicates", type=int, default=100)
    index.add_argument("--seed", type=int, default=None)
    _add_engine_flag(index)
    index.add_argument(
        "--out", required=True, help="output archive path (.npz or .idx3)"
    )
    index.add_argument(
        "--index-format", choices=INDEX_FORMATS, default="dense",
        help="archive format: dense (v2 .npz), compressed (v3 delta "
        "codec), or mmap (v3 raw arrays + packed rows, loads as "
        "memory maps)",
    )
    index.add_argument(
        "--chunk-rows", type=int, default=DEFAULT_CHUNK_ROWS,
        metavar="ROWS",
        help="walk rows generated per chunk (default %(default)s); part "
        "of the RNG contract, so archives compare byte-for-byte only "
        "under the same value",
    )
    index.add_argument(
        "--rows-format", choices=ROWS_FORMATS, default=None,
        help="mmap archives only: coverage-row representation stored in "
        "the archive — dense packed bitsets, stream (no stored rows), or "
        "compressed roaring-style containers; default picks dense while "
        "the rows fit the size cap and compressed beyond it",
    )
    index.add_argument(
        "--build-memory-budget", type=int, default=None, metavar="BYTES",
        help="cap the build's sort memory: walk records stream through "
        "an external sort (sorted runs spill next to --out at 10 bytes "
        "per record) straight into the archive, byte-identical to the "
        "in-memory build; default is the all-in-memory fast path",
    )
    _add_telemetry_flags(index)

    analyze = sub.add_parser(
        "analyze", help="recommend a walk horizon L for a target set"
    )
    _add_graph_source(analyze)
    analyze.add_argument(
        "--targets", required=True,
        help="comma-separated node ids the horizon should serve",
    )
    analyze.add_argument(
        "--tolerance", type=float, default=0.05,
        help="relative mean truncation gap to tolerate (default 0.05)",
    )

    dynamic = sub.add_parser(
        "dynamic",
        help="edge-churn workloads on the incremental walk index",
    )
    _add_graph_source(dynamic)
    mode = dynamic.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--churn-trace", metavar="FILE",
        help="replay an edit trace (add/del/leave/rejoin/step lines): "
        "incremental index maintenance, coverage/AHT decay, re-solve "
        "points",
    )
    mode.add_argument(
        "--robust", type=int, metavar="Q",
        help="select k targets whose coverage survives a greedy "
        "Q-edge-deletion adversary (robust_greedy; Q=0 equals ApproxF2)",
    )
    mode.add_argument(
        "--attack", type=float, metavar="FRAC",
        help="bondage-style adversary: delete few edges until certified "
        "coverage of the placement drops below FRAC",
    )
    dynamic.add_argument("-k", type=int, default=10, help="placement size")
    dynamic.add_argument(
        "-L", "--length", type=int, default=6, help="walk length"
    )
    dynamic.add_argument(
        "-R", "--replicates", type=int, default=100,
        help="walks per node for the maintained index",
    )
    dynamic.add_argument("--seed", type=int, default=None)
    _add_engine_flag(dynamic)
    dynamic.add_argument(
        "--gain-backend", choices=GAIN_BACKENDS, default=DEFAULT_GAIN_BACKEND,
        help="marginal-gain machinery for the replay's (re-)solves",
    )
    dynamic.add_argument(
        "--index-format", choices=INDEX_FORMATS, default="dense",
        help="storage backend the replay/attack (re-)solves run on "
        "(maintenance itself stays dense; selections are identical "
        "across formats)",
    )
    dynamic.add_argument(
        "--rows-format", choices=ROWS_FORMATS, default=None,
        help="coverage-row representation for the bitset kernel's "
        "(re-)solves (selections identical across formats; ignored by "
        "the entries backend)",
    )
    dynamic.add_argument(
        "--resolve-threshold", type=float, default=0.9,
        help="replay re-solves when coverage falls below this fraction of "
        "the last solve's coverage (default 0.9)",
    )
    dynamic.add_argument(
        "--targets", default=None,
        help="--attack only: explicit placement to attack as "
        "comma-separated ids (default: solve with -k first)",
    )
    dynamic.add_argument(
        "--max-edges", type=int, default=None,
        help="--attack only: deletion budget cap",
    )
    dynamic.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the report as JSON ('-' for stdout)",
    )
    _add_telemetry_flags(dynamic)

    serve = sub.add_parser(
        "serve",
        help="drive a query workload through the concurrent serving layer",
    )
    _add_graph_source(serve)
    serve.add_argument(
        "--workload", metavar="FILE", required=True,
        help="query workload (select/metrics/coverage/min-targets lines, "
        "see repro.serve.parse_workload)",
    )
    serve.add_argument(
        "--index", metavar="FILE", default=None,
        help="serve a prebuilt walk index ('repro index' output, "
        "provenance-checked against the graph); omit to build one "
        "in-process with -L/-R/--seed/--engine",
    )
    serve.add_argument(
        "--http", action="store_true",
        help="serve over HTTP: start the asyncio front end "
        "(repro.serve.http) on --host/--port and drive the workload "
        "through per-client keep-alive connections instead of in-process "
        "calls",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="HTTP listen address (default 127.0.0.1; with --http)",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="HTTP listen port (default 0 = ephemeral, printed at "
        "startup; with --http)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=32,
        help="HTTP admission bound: queries executing concurrently "
        "before new ones get a fast 503 + Retry-After (default 32; "
        "with --http)",
    )
    serve.add_argument(
        "--max-connections", type=int, default=128,
        help="HTTP connection cap: further connections are answered 503 "
        "and closed (default 128; with --http)",
    )
    serve.add_argument(
        "--stats-window", type=int, default=2048,
        help="per-endpoint latency window for /stats percentiles, in "
        "samples (default 2048; must be >= 1; with --http)",
    )
    serve.add_argument(
        "--clients", type=int, default=4,
        help="closed-loop client threads (default 4)",
    )
    serve.add_argument(
        "--repeat", type=int, default=1,
        help="times each client stream replays the workload (default 1)",
    )
    serve.add_argument(
        "--batch-window", type=float, default=2.0,
        help="select micro-batch window in milliseconds (default 2.0; "
        "0 batches only simultaneous arrivals)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=256,
        help="LRU result-cache capacity in entries (default 256; 0 "
        "disables caching)",
    )
    serve.add_argument(
        "-L", "--length", type=int, default=6,
        help="walk length for the in-process index build",
    )
    serve.add_argument(
        "-R", "--replicates", type=int, default=100,
        help="walks per node for the in-process index build",
    )
    serve.add_argument("--seed", type=int, default=None)
    _add_engine_flag(serve)
    serve.add_argument(
        "--gain-backend", choices=GAIN_BACKENDS, default=DEFAULT_GAIN_BACKEND,
        help="marginal-gain machinery for select/min-targets kernel passes",
    )
    serve.add_argument(
        "--index-format", choices=INDEX_FORMATS, default=None,
        help="in-memory index representation to serve from (default: "
        "whatever the archive holds, or dense for an in-process build)",
    )
    serve.add_argument(
        "--rows-format", choices=ROWS_FORMATS, default=None,
        help="coverage-row representation for the bitset kernel's query "
        "passes (answers identical across formats; ignored by the "
        "entries backend)",
    )
    serve.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the load report as JSON ('-' for stdout)",
    )
    _add_telemetry_flags(serve)

    stats = sub.add_parser(
        "stats",
        help="fetch live telemetry from a running 'repro serve --http' "
        "server",
    )
    stats.add_argument(
        "--url", required=True, metavar="URL",
        help="server base URL, e.g. http://127.0.0.1:8080",
    )
    stats.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
        help="prometheus: GET /metrics text exposition (default); "
        "json: GET /stats JSON document",
    )
    return parser


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", action="store_true",
        help="enable the repro.obs metrics registry and span tracer for "
        "this run and print a Prometheus text dump on exit (results are "
        "bit-identical either way; see DESIGN.md §14)",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write recorded spans as Chrome trace_event JSON "
        "(chrome://tracing / Perfetto); implies --telemetry",
    )


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=available_engines(), default=DEFAULT_ENGINE,
        help="walk-engine backend for sampling-based work (default: "
        f"{DEFAULT_ENGINE}; 'csr' is fastest single-threaded, 'sharded' "
        "spreads stream-sliced shards over a thread pool, 'multiproc' "
        "over a shared-memory process pool; all backends produce "
        "bit-identical results under one seed)",
    )


def _add_graph_source(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--edge-list", metavar="FILE", help="SNAP edge list")
    source.add_argument(
        "--dataset", choices=dataset_names(), help="Table 2 replica"
    )
    source.add_argument(
        "--synthetic", metavar="N,M", help="power-law graph with N nodes, M edges"
    )
    parser.add_argument(
        "--dataset-scale", type=float, default=1.0,
        help="scale for --dataset replicas (default 1.0)",
    )


def _load_graph(args: argparse.Namespace) -> Graph:
    if args.edge_list:
        return read_edge_list(args.edge_list)
    if args.dataset:
        return load_dataset(args.dataset, scale=args.dataset_scale)
    n_text, _, m_text = args.synthetic.partition(",")
    try:
        n, m = int(n_text), int(m_text)
    except ValueError:
        raise SystemExit(f"--synthetic expects N,M integers, got {args.synthetic!r}")
    return power_law_graph(n, m, seed=0)


def _parse_targets(text: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"--targets expects comma-separated ints, got {text!r}")


# ----------------------------------------------------------------------
# Subcommand bodies
# ----------------------------------------------------------------------
def _cmd_select(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    if args.index is not None:
        if args.method != "approx-fast":
            raise SystemExit("--index requires --method approx-fast")
        from repro.core.approx_fast import approx_greedy_fast
        from repro.walks.persistence import load_index

        index = load_index(args.index, graph=graph)
        objective = "f1" if args.problem == "1" else "f2"
        result = approx_greedy_fast(
            graph, args.k, index.length, index=index, objective=objective,
            gain_backend=args.gain_backend,
        )
        args = argparse.Namespace(**{**vars(args), "length": index.length})
    else:
        problem_cls = Problem1 if args.problem == "1" else Problem2
        problem = problem_cls(graph, args.k, args.length)
        options: dict = {}
        if args.method in ("sampling", "approx", "approx-fast"):
            options["num_replicates"] = args.replicates
            options["seed"] = args.seed
        elif args.method == "random":
            options["seed"] = args.seed
        if args.method in ("sampling", "approx-fast"):
            options["engine"] = args.engine
            options["gain_backend"] = args.gain_backend
        result = solve(problem, method=args.method, **options)
    print(result.summary())
    print("selected:", ",".join(str(v) for v in result.selected))
    if args.evaluate:
        metrics = evaluate_selection(graph, result.selected, args.length)
        print(f"AHT: {metrics['aht']:.4f}")
        print(f"EHN: {metrics['ehn']:.1f}")
    if args.json:
        payload = result.to_json()
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    targets = _parse_targets(args.targets)
    method = "sampled" if args.sampled else "exact"
    metrics = evaluate_selection(
        graph, targets, args.length, method=method, seed=args.seed,
        engine=args.engine,
    )
    print(f"AHT: {metrics['aht']:.4f}")
    print(f"EHN: {metrics['ehn']:.1f}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.model == "power-law":
        edges = args.edges if args.edges is not None else 10 * args.nodes
        graph = power_law_graph(args.nodes, edges, seed=args.seed)
        header = f"power-law n={args.nodes} m={edges} seed={args.seed}"
    else:
        if args.probability is None:
            raise SystemExit("erdos-renyi requires --probability")
        graph = erdos_renyi_graph(args.nodes, args.probability, seed=args.seed)
        header = (
            f"erdos-renyi n={args.nodes} p={args.probability} seed={args.seed}"
        )
    write_edge_list(graph, args.out, header=header)
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}")
    return 0


def _cmd_exhibit(args: argparse.Namespace) -> int:
    config = default_config()
    if args.scale is not None:
        config = config.with_overrides(scale=args.scale)
    table = _EXHIBITS[args.name](config)
    print(table)
    if args.csv:
        csv_text = table.to_csv()
        if args.csv == "-":
            print(csv_text, end="")
        else:
            with open(args.csv, "w") as handle:
                handle.write(csv_text)
    if args.plot:
        parts = args.plot.split(":")
        if len(parts) not in (2, 3):
            raise SystemExit("--plot expects X:Y or X:Y:GROUP")
        group = parts[2] if len(parts) == 3 else "algorithm"
        print()
        print(plot_table(table, x=parts[0], y=parts[1], group_by=group))
    return 0


def _placement(args: argparse.Namespace, graph: Graph) -> tuple[int, ...]:
    if args.targets is not None:
        return tuple(_parse_targets(args.targets))
    problem = Problem2(graph, args.k, args.length)
    options: dict = {}
    if args.method in ("sampling", "approx", "approx-fast"):
        options["seed"] = args.seed
    elif args.method == "random":
        options["seed"] = args.seed
    result = solve(problem, method=args.method, **options)
    print(f"placement ({result.algorithm}):",
          ",".join(str(v) for v in result.selected))
    return result.selected


def _cmd_simulate(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    if args.churn_trace is not None and args.app != "p2p":
        raise ParameterError("--churn-trace is only supported for --app p2p")
    hosts = _placement(args, graph)
    if args.churn_trace is not None:
        from repro.simulate import simulate_p2p_churn

        with open(args.churn_trace) as handle:
            trace_text = handle.read()
        churn = simulate_p2p_churn(
            graph, hosts, trace_text, num_queries=args.sessions,
            ttl=args.length, walkers_per_query=args.walkers,
            seed=args.seed, engine=args.engine,
        )
        print(
            f"p2p churn: {len(churn.phases)} phases, "
            f"{churn.num_hosts} hosts, ttl={churn.ttl}"
        )
        print("phase  present  hosts  success  mean_hops  msgs/query")
        for row in churn.phases:
            print(
                f"{row.phase:>5}  {row.num_present:>7}  "
                f"{row.num_active_hosts:>5}  {row.success_rate:>7.3f}  "
                f"{row.mean_hops_to_hit:>9.3f}  "
                f"{row.mean_messages_per_query:>10.3f}"
            )
        print(f"overall_success_rate: {churn.overall_success_rate:.4f}")
        return 0
    if args.app == "social":
        report = simulate_social_browsing(
            graph, hosts, num_sessions=args.sessions, length=args.length,
            seed=args.seed, engine=args.engine,
        )
    elif args.app == "p2p":
        report = simulate_p2p_search(
            graph, hosts, num_queries=args.sessions, ttl=args.length,
            walkers_per_query=args.walkers, seed=args.seed,
            engine=args.engine,
        )
    else:
        report = simulate_ad_campaign(
            graph, hosts, sessions_per_user=args.sessions_per_user,
            length=args.length, seed=args.seed, engine=args.engine,
        )
    for key, value in asdict(report).items():
        print(f"{key}: {value}")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.walks.build import build_index_archive
    from repro.walks.index import FlatWalkIndex
    from repro.walks.persistence import save_index

    graph = _load_graph(args)
    if args.build_memory_budget is not None:
        report = build_index_archive(
            graph, args.length, args.replicates, args.out,
            format=args.index_format, seed=args.seed, engine=args.engine,
            chunk_rows=args.chunk_rows,
            memory_budget=args.build_memory_budget,
            rows_format=args.rows_format,
        )
        print(
            f"indexed {graph.num_nodes} nodes x {args.replicates} walks "
            f"(L={args.length}, {report.total_entries} entries, "
            f"{report.format}, {report.num_runs} sort runs, "
            f"{report.spilled_bytes} bytes spilled) -> {report.path}"
        )
        return 0
    index = FlatWalkIndex.build(
        graph, args.length, args.replicates, seed=args.seed,
        engine=args.engine, chunk_rows=args.chunk_rows,
    )
    written = save_index(
        index, args.out, graph=graph, engine=args.engine, seed=args.seed,
        format=args.index_format, rows_format=args.rows_format,
    )
    print(
        f"indexed {graph.num_nodes} nodes x {args.replicates} walks "
        f"(L={args.length}, {index.total_entries} entries, "
        f"{args.index_format}) -> {written}"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import recommend_length, truncation_gap

    graph = _load_graph(args)
    targets = _parse_targets(args.targets)
    length = recommend_length(graph, targets, tolerance=args.tolerance)
    gap = truncation_gap(graph, targets, length)
    finite = gap[~(gap == float("inf"))]
    print(f"recommended L: {length}")
    print(f"mean truncation gap at that L: {float(finite.mean()):.4f} hops")
    unreachable = int((gap == float("inf")).sum())
    if unreachable:
        print(f"note: {unreachable} nodes can never reach the targets")
    return 0


def _write_json(payload: str, destination: str) -> None:
    if destination == "-":
        print(payload)
    else:
        with open(destination, "w") as handle:
            handle.write(payload + "\n")


def _cmd_dynamic(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    graph = _load_graph(args)
    if args.robust is not None:
        from repro.dynamic import robust_greedy

        result = robust_greedy(
            graph, args.k, args.length, q=args.robust,
            num_replicates=args.replicates, seed=args.seed,
            engine=args.engine,
        )
        print(result.summary())
        print("selected:", ",".join(str(v) for v in result.selected))
        if args.json:
            _write_json(result.to_json(), args.json)
        return 0

    if args.attack is not None:
        from repro.dynamic import DynamicWalkIndex, min_breaking_edges

        dyn = DynamicWalkIndex.build(
            graph, args.length, args.replicates, seed=args.seed,
            engine=args.engine,
        )
        if args.targets is not None:
            targets = tuple(_parse_targets(args.targets))
        else:
            from repro.core.approx_fast import approx_greedy_fast
            from repro.walks.persistence import as_format

            solved = approx_greedy_fast(
                graph, args.k, args.length,
                index=as_format(dyn.flat, args.index_format, graph=graph),
                objective="f2",
                gain_backend=args.gain_backend,
                rows_format=args.rows_format,
            )
            targets = solved.selected
            print(f"placement ({solved.algorithm}):",
                  ",".join(str(v) for v in targets))
        report = min_breaking_edges(
            graph, targets, args.length, threshold=args.attack,
            max_edges=args.max_edges, index=dyn,
        )
        print(
            f"baseline coverage {report.baseline_fraction:.4f}, "
            f"threshold {report.threshold:.4f}"
        )
        for edge, fraction in zip(report.edges, report.coverage_fractions):
            print(f"delete {edge[0]} {edge[1]} -> coverage {fraction:.4f}")
        verdict = "broken" if report.succeeded else "NOT broken"
        print(
            f"placement {verdict} with {report.num_edges} edge deletions"
        )
        if args.json:
            _write_json(
                json.dumps(dataclasses.asdict(report), indent=2), args.json
            )
        return 0

    from repro.dynamic import churn_replay

    with open(args.churn_trace) as handle:
        trace_text = handle.read()
    report = churn_replay(
        graph, trace_text, k=args.k, length=args.length,
        num_replicates=args.replicates, seed=args.seed, engine=args.engine,
        gain_backend=args.gain_backend,
        resolve_threshold=args.resolve_threshold,
        index_format=args.index_format,
        rows_format=args.rows_format,
    )
    print(
        f"churn replay: {len(report.steps)} batches, k={report.k}, "
        f"L={report.length}, R={report.num_replicates}, "
        f"baseline coverage {report.baseline_coverage_fraction:.4f}"
    )
    print("epoch  +ins  -del  resampled  coverage     aht  resolved")
    for step in report.steps:
        print(
            f"{step.epoch:>5}  {step.num_inserts:>4}  {step.num_deletes:>4}  "
            f"{step.resampled_fraction:>9.3f}  {step.coverage_fraction:>8.4f}  "
            f"{step.aht:>6.3f}  {'yes' if step.resolved else 'no':>8}"
        )
    print(f"re-solves: {report.num_resolves}")
    final = report.selections[-1][1]
    print("final selection:", ",".join(str(v) for v in final))
    if args.json:
        _write_json(
            json.dumps(dataclasses.asdict(report), indent=2), args.json
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.serve import (
        DominationService,
        IndexSnapshot,
        parse_workload,
        run_load,
    )

    if args.stats_window < 1:
        raise ParameterError("stats_window must be >= 1")
    graph = _load_graph(args)
    with open(args.workload) as handle:
        queries = parse_workload(handle.read())
    options = {
        "batch_window": args.batch_window / 1e3,
        "cache_size": args.cache_size,
        "gain_backend": args.gain_backend,
        "rows_format": args.rows_format,
    }
    if args.index is not None:
        service = DominationService.from_index_file(
            args.index, graph, index_format=args.index_format, **options
        )
    else:
        from repro.walks.index import FlatWalkIndex
        from repro.walks.persistence import as_format

        index = FlatWalkIndex.build(
            graph, args.length, args.replicates, seed=args.seed,
            engine=args.engine,
        )
        if args.index_format is not None:
            index = as_format(index, args.index_format, graph=graph)
        service = DominationService(
            IndexSnapshot.capture(graph, index), **options
        )
    with service:
        snap = service.snapshot
        print(
            f"serving {snap.num_nodes} nodes (L={snap.length}, "
            f"R={snap.index.num_replicates}, epoch {snap.epoch}): "
            f"{len(queries)} workload queries x {args.repeat}, "
            f"{args.clients} closed-loop clients, "
            f"batch window {args.batch_window:g} ms"
        )
        if args.http:
            from repro.serve import start_http_server

            handle = start_http_server(
                service, host=args.host, port=args.port,
                max_inflight=args.max_inflight,
                max_connections=args.max_connections,
                stats_window=args.stats_window,
            )
            try:
                print(
                    f"http front end on {handle.base_url} "
                    f"(max in-flight {args.max_inflight}, "
                    f"max connections {args.max_connections})"
                )
                report = run_load(
                    service, queries, num_clients=args.clients,
                    repeat=args.repeat, transport="http",
                    base_url=handle.base_url,
                )
            finally:
                handle.stop()
        else:
            report = run_load(
                service, queries, num_clients=args.clients,
                repeat=args.repeat,
            )
    stats = report.stats
    print(
        f"throughput: {report.throughput_qps:.1f} q/s "
        f"({report.num_queries} queries in {report.elapsed_seconds:.3f} s)"
    )
    print(
        f"latency: mean {report.latency_mean_ms:.2f} ms  "
        f"p50 {report.latency_p50_ms:.2f} ms  "
        f"p99 {report.latency_p99_ms:.2f} ms"
    )
    print(
        f"kernel passes: {stats.kernel_passes} "
        f"({stats.batched_queries} select queries in "
        f"{stats.select_batches} batches), "
        f"cache hits: {stats.cache_hits}, errors: {report.errors}, "
        f"rejections: {report.rejections}"
    )
    if args.json:
        # Percentiles are always observed latencies now — an all-rejected
        # run raises inside run_load instead of reporting NaN.
        _write_json(
            json.dumps(dataclasses.asdict(report), indent=2), args.json
        )
    if report.errors:
        print(
            f"error: {report.errors} workload queries were rejected by "
            "the library (see the errors count above)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import urllib.error
    import urllib.request

    path = "/metrics" if args.format == "prometheus" else "/stats"
    url = args.url.rstrip("/") + path
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            body = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as exc:
        print(f"error: GET {url} failed: {exc}", file=sys.stderr)
        return 1
    print(body, end="" if body.endswith("\n") else "\n")
    return 0


_COMMANDS = {
    "select": _cmd_select,
    "metrics": _cmd_metrics,
    "generate": _cmd_generate,
    "exhibit": _cmd_exhibit,
    "simulate": _cmd_simulate,
    "index": _cmd_index,
    "analyze": _cmd_analyze,
    "dynamic": _cmd_dynamic,
    "serve": _cmd_serve,
    "stats": _cmd_stats,
}


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point (also installed as the ``repro`` console script)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    telemetry = bool(
        getattr(args, "telemetry", False)
        or getattr(args, "trace_out", None)
    )
    if telemetry:
        from repro import obs

        obs.configure()
    try:
        status = _COMMANDS[args.command](args)
    except RwdomError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if telemetry:
            trace_out = getattr(args, "trace_out", None)
            if trace_out:
                from repro import obs

                obs.write_chrome_trace(trace_out)
                print(f"trace written -> {trace_out}", file=sys.stderr)
    if telemetry:
        from repro import obs

        text = obs.render_prometheus()
        if text:
            print("--- telemetry (prometheus text) ---", file=sys.stderr)
            sys.stderr.write(text)
    return status


if __name__ == "__main__":
    sys.exit(main())
