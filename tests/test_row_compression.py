"""Compressed coverage rows (DESIGN.md §16) — codec, kernel, regressions.

The binding contract: the bitset kernel is *bit-identical* across every
``rows_format`` (``dense``/``stream``/``compressed``) — same gains, same
selections — and the roaring-style container codec round-trips any row
set exactly.  This file also pins the two mmap row-patch regressions
this change shipped with:

* ``DynamicWalkIndex.packed_hit_rows`` over an mmap archive with stored
  rows must copy the read-only map before caching it — the next edit
  batch patches the cache *in place*.
* ``CoverageKernel`` in ``stream`` mode over an mmap archive with
  stored rows must slice ``storage.rows`` instead of range-decoding the
  entry arrays.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.approx_fast import approx_greedy_fast
from repro.core.coverage_kernel import (
    DEFAULT_MAX_PACKED_BYTES,
    CoverageKernel,
    popcount_rows,
)
from repro.dynamic import DynamicGraph, DynamicWalkIndex
from repro.errors import ParameterError
from repro.graphs.generators import power_law_graph
from repro.walks.index import FlatWalkIndex
from repro.walks.persistence import load_index, save_index
from repro.walks.rows import (
    DEFAULT_ROW_CAP_BYTES,
    ROWS_FORMATS,
    CompressedRows,
    encode_row_span,
    validate_rows_format,
)
from tests.test_dynamic import random_edits


def dense_from_positions(
    rows_positions: "list[list[int]]", num_states: int
) -> np.ndarray:
    """Reference packed matrix built bit by bit."""
    words = max(1, -(-num_states // 64))
    out = np.zeros((len(rows_positions), words), dtype=np.uint64)
    for r, positions in enumerate(rows_positions):
        for s in positions:
            out[r, s >> 6] |= np.uint64(1) << np.uint64(s & 63)
    return out


def crows_from_positions(
    rows_positions: "list[list[int]]", num_states: int
) -> CompressedRows:
    owners = np.repeat(
        np.arange(len(rows_positions), dtype=np.int64),
        [len(p) for p in rows_positions],
    )
    positions = np.concatenate(
        [np.asarray(sorted(p), dtype=np.int64) for p in rows_positions]
        or [np.empty(0, dtype=np.int64)]
    )
    return CompressedRows.from_sorted_positions(
        owners, positions, len(rows_positions), num_states
    )


# ----------------------------------------------------------------------
# Codec unit tests
# ----------------------------------------------------------------------
class TestCodec:
    #: Edge-case row sets: chunk boundaries, all-ones, all-zeros, runs,
    #: dense bitmaps, and a short tail chunk.
    CASES = [
        ([[0], [65535], [65536], [65537]], 70000),
        ([[]], 100),
        ([list(range(200))], 200),  # all ones, one short chunk
        ([list(range(0, 70000, 2))], 70000),  # bitmap in chunk 0 and 1
        ([list(range(10, 5000))], 70000),  # one long run
        ([[], list(range(65530, 65542)), []], 131072),  # boundary run
        ([[0, 65535], []], 65536),  # exactly one full chunk
    ]

    @pytest.mark.parametrize("positions,num_states", CASES)
    def test_round_trip(self, positions, num_states):
        crows = crows_from_positions(positions, num_states)
        dense = dense_from_positions(positions, num_states)
        np.testing.assert_array_equal(
            crows.decode_rows(0, len(positions)), dense
        )
        # from_packed must agree with the position-stream constructor.
        assert crows.equals(CompressedRows.from_packed(dense, num_states))

    @pytest.mark.parametrize("positions,num_states", CASES)
    def test_popcount_and_or_parity(self, positions, num_states):
        crows = crows_from_positions(positions, num_states)
        dense = dense_from_positions(positions, num_states)
        rng = np.random.default_rng(5)
        for trial in range(3):
            covered = rng.integers(
                0, 1 << 63, size=dense.shape[1], dtype=np.uint64
            )
            if trial == 0:
                covered[:] = 0
            pad = 64 * dense.shape[1] - num_states
            if pad:
                covered[-1] &= np.uint64(2**64 - 1) >> np.uint64(pad)
            expected = popcount_rows(dense & ~covered)
            got = crows.popcount_rows_masked(covered)
            np.testing.assert_array_equal(got, expected)
            for row in range(len(positions)):
                mine = covered.copy()
                crows.or_row_into(row, mine)
                np.testing.assert_array_equal(mine, covered | dense[row])

    def test_arrays_round_trip(self):
        positions = [[1, 2, 3], list(range(0, 70000, 3))]
        crows = crows_from_positions(positions, 70000)
        back = CompressedRows.from_arrays(crows.arrays(), 2, 70000)
        assert crows.equals(back)

    def test_encode_rejects_unsorted(self):
        owners = np.asarray([0, 0], dtype=np.int64)
        positions = np.asarray([5, 3], dtype=np.int64)
        with pytest.raises(ParameterError):
            encode_row_span(owners, positions, 1, 10)

    def test_encode_rejects_out_of_range(self):
        owners = np.asarray([0], dtype=np.int64)
        positions = np.asarray([10], dtype=np.int64)
        with pytest.raises(ParameterError):
            encode_row_span(owners, positions, 1, 10)

    def test_validate_rows_format(self):
        assert validate_rows_format(None) is None
        for name in ROWS_FORMATS:
            assert validate_rows_format(name) == name
        with pytest.raises(ParameterError):
            validate_rows_format("roaring")

    def test_unified_row_cap_constant(self):
        # One constant, exported from rows.py, shared by the kernel cap
        # and the persistence sizing rule.
        assert DEFAULT_MAX_PACKED_BYTES is DEFAULT_ROW_CAP_BYTES

    def test_compresses_sparse_rows(self, medium_power_law):
        index = FlatWalkIndex.build(medium_power_law, 5, 40, seed=3)
        crows = index.compressed_hit_rows()
        dense_bytes = index.packed_hit_rows().nbytes
        assert crows.nbytes < dense_bytes


# ----------------------------------------------------------------------
# Index / kernel integration
# ----------------------------------------------------------------------
class TestKernelFormats:
    @pytest.fixture()
    def built(self, small_power_law):
        index = FlatWalkIndex.build(small_power_law, 4, 6, seed=9)
        return small_power_law, index

    def test_compressed_matches_packed(self, built):
        _, index = built
        crows = index.compressed_hit_rows(include_self=True)
        np.testing.assert_array_equal(
            crows.decode_rows(0, index.num_nodes),
            index.packed_hit_rows(include_self=True),
        )

    @pytest.mark.parametrize("rows_format", ROWS_FORMATS)
    def test_gain_parity_across_formats(self, built, rows_format):
        _, index = built
        ref = CoverageKernel(index, objective="f2", rows_format="dense")
        kernel = CoverageKernel(
            index, objective="f2", rows_format=rows_format
        )
        assert kernel.rows_format == rows_format
        for node in (0, 3, 7):
            kernel.select(node)
            ref.select(node)
        np.testing.assert_array_equal(kernel.gains, ref.gains)
        np.testing.assert_array_equal(
            kernel.refresh_gains(), ref.refresh_gains()
        )
        for node in range(index.num_nodes):
            if node in (0, 3, 7):
                continue
            assert kernel.popcount_gain(node) == ref.popcount_gain(node)

    def test_legacy_materialize_rows_maps(self, built):
        _, index = built
        assert CoverageKernel(
            index, "f2", materialize_rows=True
        ).rows_format == "dense"
        assert CoverageKernel(
            index, "f2", materialize_rows=False
        ).rows_format == "stream"
        with pytest.raises(ParameterError, match="legacy"):
            CoverageKernel(
                index, "f2", materialize_rows=True, rows_format="dense"
            )

    @pytest.mark.parametrize("objective", ("f1", "f2"))
    @pytest.mark.parametrize("engine", ("numpy", "csr"))
    def test_selections_identical_across_formats(
        self, small_power_law, objective, engine
    ):
        index = FlatWalkIndex.build(
            small_power_law, 4, 6, seed=13, engine=engine
        )
        base = approx_greedy_fast(
            small_power_law, 8, 4, index=index, objective=objective,
            gain_backend="bitset",
        )
        for rows_format in ROWS_FORMATS:
            result = approx_greedy_fast(
                small_power_law, 8, 4, index=index, objective=objective,
                gain_backend="bitset", rows_format=rows_format,
            )
            assert result.selected == base.selected
            assert result.gains == base.gains


# ----------------------------------------------------------------------
# Persistence: compressed rows in v3 archives
# ----------------------------------------------------------------------
class TestPersistence:
    @pytest.fixture()
    def built(self):
        graph = power_law_graph(70, 210, seed=22)
        return graph, FlatWalkIndex.build(graph, 4, 6, seed=22)

    def test_compressed_rows_round_trip(self, built, tmp_path):
        _, index = built
        path = save_index(
            index, tmp_path / "walks", format="mmap",
            rows_format="compressed",
        )
        back = load_index(path)
        assert back.storage.rows is None
        crows = back.storage.compressed_rows
        assert crows is not None
        assert crows.equals(index.compressed_hit_rows(include_self=True))
        # compressed_hit_rows serves the archive-backed instance.
        assert back.compressed_hit_rows(include_self=True) is crows

    def test_kernel_auto_resolves_compressed(self, built, tmp_path):
        graph, index = built
        path = save_index(
            index, tmp_path / "walks", format="mmap",
            rows_format="compressed",
        )
        back = load_index(path)
        kernel = CoverageKernel(back, objective="f2")
        assert kernel.rows_format == "compressed"
        result = approx_greedy_fast(
            graph, 6, 4, index=back, objective="f2", gain_backend="bitset"
        )
        base = approx_greedy_fast(
            graph, 6, 4, index=index, objective="f2", gain_backend="bitset"
        )
        assert result.selected == base.selected

    def test_rows_format_rejected_for_non_mmap(self, built, tmp_path):
        _, index = built
        with pytest.raises(ParameterError, match="mmap"):
            save_index(
                index, tmp_path / "walks", format="dense",
                rows_format="compressed",
            )

    def test_rows_format_and_include_rows_conflict(self, built, tmp_path):
        _, index = built
        with pytest.raises(ParameterError, match="not both"):
            save_index(
                index, tmp_path / "walks", format="mmap",
                include_rows=True, rows_format="dense",
            )

    def test_sizing_error_names_compressed_escape_hatch(
        self, small_power_law
    ):
        index = FlatWalkIndex.build(small_power_law, 4, 3, seed=2)
        with pytest.raises(ParameterError, match="compressed"):
            index.packed_hit_rows(max_bytes=8)


# ----------------------------------------------------------------------
# Regression: stream-mode kernel over an archive with stored rows
# ----------------------------------------------------------------------
class TestStreamModeUsesStoredRows:
    def test_slices_archive_rows_without_decoding(
        self, tmp_path, monkeypatch
    ):
        graph = power_law_graph(60, 180, seed=31)
        index = FlatWalkIndex.build(graph, 4, 5, seed=31)
        back = load_index(
            save_index(index, tmp_path / "walks", format="mmap",
                       rows_format="dense")
        )
        assert back.storage.rows is not None
        kernel = CoverageKernel(back, objective="f2", rows_format="stream")
        expected = CoverageKernel(
            index, objective="f2", rows_format="dense"
        )
        # The archive already stores the rows: the stream path must
        # slice them, never fall back to the range decode.
        def forbid(*args, **kwargs):  # pragma: no cover - fails the test
            raise AssertionError(
                "packed_rows_for called despite stored archive rows"
            )

        monkeypatch.setattr(FlatWalkIndex, "packed_rows_for", forbid)
        np.testing.assert_array_equal(
            kernel.refresh_gains(), expected.refresh_gains()
        )
        kernel.select(4)
        expected.select(4)
        np.testing.assert_array_equal(kernel.gains, expected.gains)
        assert kernel.popcount_gain(9) == expected.popcount_gain(9)


# ----------------------------------------------------------------------
# Regression: dynamic row cache over a read-only archive map
# ----------------------------------------------------------------------
class TestDynamicArchiveRows:
    def _dynamic_over_archive(self, tmp_path, rows_format):
        # Big enough that a 1-insert/1-delete batch stays on the splice
        # path (the rebuild fallback would mask the in-place patch).
        graph = power_law_graph(200, 600, seed=41)
        dyn = DynamicWalkIndex.build(graph, 4, 5, seed=41)
        path = save_index(
            dyn.flat, tmp_path / "walks", format="mmap",
            rows_format=rows_format,
        )
        return graph, DynamicWalkIndex(
            graph=graph,
            flat=load_index(path),
            walks=dyn.walks,
            seed_entropy=dyn.seed_entropy,
            engine_name=dyn.engine_name,
        )

    def test_packed_rows_copied_from_read_only_map(self, tmp_path):
        """Regression: the first materialize used to cache the archive's
        read-only memmap; the next edit batch's in-place patch then blew
        up with ``ValueError: assignment destination is read-only`` (or,
        had the map been writable, silently corrupted the archive)."""
        graph, dyn = self._dynamic_over_archive(tmp_path, "dense")
        assert not dyn.flat.packed_hit_rows(include_self=True).flags.writeable
        rows = dyn.packed_hit_rows()
        assert rows.flags.writeable
        dgraph = DynamicGraph(graph)
        rng = np.random.default_rng(42)
        ins, dels = random_edits(graph, rng, 1, 1)
        dgraph.apply_batch(ins, dels)
        stats = dyn.sync(dgraph)  # patches the cached rows in place
        assert stats.resampled_rows * 4 <= dyn.walks.shape[0], (
            "edit batch unexpectedly crossed into the fallback path"
        )
        assert dyn.packed_hit_rows() is rows
        np.testing.assert_array_equal(
            rows, dyn.flat.packed_hit_rows(include_self=True)
        )

    def test_compressed_rows_patched_from_archive(self, tmp_path):
        graph, dyn = self._dynamic_over_archive(tmp_path, "compressed")
        archive_crows = dyn.flat.compressed_hit_rows(include_self=True)
        assert dyn.compressed_hit_rows() is archive_crows
        dgraph = DynamicGraph(graph)
        rng = np.random.default_rng(43)
        ins, dels = random_edits(graph, rng, 1, 1)
        dgraph.apply_batch(ins, dels)
        stats = dyn.sync(dgraph)
        assert stats.resampled_rows * 4 <= dyn.walks.shape[0], (
            "edit batch unexpectedly crossed into the fallback path"
        )
        patched = dyn.compressed_hit_rows()
        # patched() builds a fresh instance; the archive copy survives.
        assert patched is not archive_crows
        assert patched.equals(
            dyn.flat.compressed_hit_rows(include_self=True)
        )


# ----------------------------------------------------------------------
# Slow lane: exhaustive properties
# ----------------------------------------------------------------------
class TestRowCompressionProperties:
    pytestmark = pytest.mark.slow

    @given(
        num_states=st.integers(min_value=1, max_value=70000),
        data=st.data(),
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_round_trip_and_popcount_parity(self, num_states, data):
        num_rows = data.draw(st.integers(min_value=1, max_value=4))
        rows_positions = [
            sorted(
                data.draw(
                    st.sets(
                        st.integers(min_value=0, max_value=num_states - 1),
                        max_size=400,
                    )
                )
            )
            for _ in range(num_rows)
        ]
        crows = crows_from_positions(rows_positions, num_states)
        dense = dense_from_positions(rows_positions, num_states)
        np.testing.assert_array_equal(
            crows.decode_rows(0, num_rows), dense
        )
        assert crows.equals(CompressedRows.from_packed(dense, num_states))
        seed = data.draw(st.integers(min_value=0, max_value=2**16))
        covered = np.random.default_rng(seed).integers(
            0, 1 << 63, size=dense.shape[1], dtype=np.uint64
        )
        pad = 64 * dense.shape[1] - num_states
        if pad:
            covered[-1] &= np.uint64(2**64 - 1) >> np.uint64(pad)
        np.testing.assert_array_equal(
            crows.popcount_rows_masked(covered),
            popcount_rows(dense & ~covered),
        )

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_dynamic_churn_patch_equals_rebuild(self, seed):
        rng = np.random.default_rng(seed)
        graph = power_law_graph(50, 150, seed=int(rng.integers(2**16)))
        dyn = DynamicWalkIndex.build(graph, 4, 5, seed=seed)
        dyn.packed_hit_rows()
        dyn.compressed_hit_rows()
        dgraph = DynamicGraph(graph)
        for _ in range(2):
            ins, dels = random_edits(dgraph.graph, rng, 2, 2)
            dgraph.apply_batch(ins, dels)
            dyn.sync(dgraph)
        fresh_dense = dyn.flat.packed_hit_rows(include_self=True)
        np.testing.assert_array_equal(dyn.packed_hit_rows(), fresh_dense)
        crows = dyn.compressed_hit_rows()
        assert crows.equals(
            dyn.flat.compressed_hit_rows(include_self=True)
        )
        np.testing.assert_array_equal(
            crows.decode_rows(0, dyn.num_nodes), fresh_dense
        )
