"""End-to-end integration tests across the whole stack.

These exercise the workflows a user of the library actually runs: load or
generate a graph, select targets with several algorithms, evaluate with the
paper's metrics, and compare — asserting the *relationships* the paper's
evaluation establishes (greedy beats baselines; the approximate greedy
tracks the DP greedy; metrics move the right way).
"""

import pytest

from repro import (
    FlatWalkIndex,
    Problem1,
    Problem2,
    approx_greedy_fast,
    average_hitting_time,
    degree_baseline,
    dominate_baseline,
    dpf1,
    dpf2,
    expected_hit_nodes,
    load_dataset,
    min_targets_for_coverage,
    power_law_graph,
    random_baseline,
    read_edge_list,
    solve,
    write_edge_list,
)


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(300, 1500, seed=99)


class TestQualityOrdering:
    """The who-wins structure of Figs. 6-7 on a small instance."""

    K, L, R = 12, 5, 150

    @pytest.fixture(scope="class")
    def selections(self, graph):
        index = FlatWalkIndex.build(graph, self.L, self.R, seed=7)
        return {
            "ApproxF1": approx_greedy_fast(
                graph, self.K, self.L, index=index, objective="f1"
            ),
            "ApproxF2": approx_greedy_fast(
                graph, self.K, self.L, index=index, objective="f2"
            ),
            "Degree": degree_baseline(graph, self.K),
            "Dominate": dominate_baseline(graph, self.K),
            "Random": random_baseline(graph, self.K, seed=5),
        }

    def test_greedy_beats_random_on_aht(self, graph, selections):
        aht = {
            name: average_hitting_time(graph, res.selected, self.L)
            for name, res in selections.items()
        }
        assert aht["ApproxF1"] < aht["Random"]

    def test_greedy_beats_or_ties_baselines_on_ehn(self, graph, selections):
        ehn = {
            name: expected_hit_nodes(graph, res.selected, self.L)
            for name, res in selections.items()
        }
        assert ehn["ApproxF2"] >= ehn["Degree"] - 1e-6
        assert ehn["ApproxF2"] >= ehn["Random"]

    def test_specialists_win_their_metric(self, graph, selections):
        """ApproxF1 optimizes AHT, ApproxF2 optimizes EHN (paper §4.2)."""
        aht_f1 = average_hitting_time(
            graph, selections["ApproxF1"].selected, self.L
        )
        aht_f2 = average_hitting_time(
            graph, selections["ApproxF2"].selected, self.L
        )
        ehn_f1 = expected_hit_nodes(graph, selections["ApproxF1"].selected, self.L)
        ehn_f2 = expected_hit_nodes(graph, selections["ApproxF2"].selected, self.L)
        # Allow tiny slack: both optimize estimates of related quantities.
        assert aht_f1 <= aht_f2 + 0.1
        assert ehn_f2 >= ehn_f1 - 1.0


class TestApproxTracksDp:
    def test_f1_objective_close(self):
        graph = power_law_graph(120, 500, seed=3)
        k, length = 6, 4
        dp = dpf1(graph, k, length)
        approx = approx_greedy_fast(
            graph, k, length, num_replicates=200, seed=11, objective="f1"
        )
        dp_aht = average_hitting_time(graph, dp.selected, length)
        ap_aht = average_hitting_time(graph, approx.selected, length)
        assert ap_aht <= dp_aht * 1.05

    def test_f2_objective_close(self):
        graph = power_law_graph(120, 500, seed=4)
        k, length = 6, 4
        dp = dpf2(graph, k, length)
        approx = approx_greedy_fast(
            graph, k, length, num_replicates=200, seed=12, objective="f2"
        )
        dp_ehn = expected_hit_nodes(graph, dp.selected, length)
        ap_ehn = expected_hit_nodes(graph, approx.selected, length)
        assert ap_ehn >= dp_ehn * 0.95


class TestSolveApi:
    def test_problem1_pipeline(self, graph):
        result = solve(
            Problem1(graph, 8, 5), method="approx-fast",
            num_replicates=50, seed=2,
        )
        aht = average_hitting_time(graph, result.selected, 5)
        assert 0 < aht < 5

    def test_problem2_pipeline(self, graph):
        result = solve(
            Problem2(graph, 8, 5), method="approx-fast",
            num_replicates=50, seed=2,
        )
        ehn = expected_hit_nodes(graph, result.selected, 5)
        assert ehn > 8  # dominates more than just itself


class TestDatasetRoundTrip:
    def test_replica_to_disk_and_back(self, tmp_path):
        graph = load_dataset("CAGrQc", scale=0.02)
        path = tmp_path / "replica.txt"
        write_edge_list(graph, path, header="CAGrQc replica")
        loaded = read_edge_list(path, relabel=False)
        assert loaded == graph

    def test_selection_on_dataset(self):
        graph = load_dataset("CAGrQc", scale=0.05)
        result = approx_greedy_fast(
            graph, 10, 6, num_replicates=30, seed=1, objective="f2"
        )
        assert len(result.selected) == 10
        assert expected_hit_nodes(graph, result.selected, 6) > 10


class TestCoveragePipeline:
    def test_coverage_threshold_pipeline(self, graph):
        result = min_targets_for_coverage(
            graph, 0.5, 5, num_replicates=100, seed=8
        )
        achieved = expected_hit_nodes(graph, result.selected, 5)
        assert achieved >= 0.4 * graph.num_nodes
        assert len(result.selected) < graph.num_nodes


class TestWalkLengthEffect:
    def test_metrics_grow_with_length(self, graph):
        """Fig. 10's direction: both AHT and EHN increase with L."""
        selection = degree_baseline(graph, 10).selected
        aht = [average_hitting_time(graph, selection, length) for length in (2, 5, 8)]
        ehn = [expected_hit_nodes(graph, selection, length) for length in (2, 5, 8)]
        assert aht[0] <= aht[1] <= aht[2]
        assert ehn[0] <= ehn[1] <= ehn[2]


class TestEndToEndWorkflows:
    """Full user journeys across subsystems, including the new extensions."""

    def test_file_based_pipeline(self, tmp_path):
        """generate -> serialize -> reload -> index -> persist -> select ->
        evaluate -> simulate, all through public APIs."""
        from repro.graphs.generators import power_law_graph
        from repro.graphs.io import read_edge_list, write_edge_list
        from repro.core.approx_fast import approx_greedy_fast
        from repro.metrics.evaluation import evaluate_selection
        from repro.simulate import simulate_social_browsing
        from repro.walks.index import FlatWalkIndex
        from repro.walks.persistence import load_index, save_index

        graph = power_law_graph(120, 360, seed=3)
        edge_path = tmp_path / "net.txt"
        write_edge_list(graph, edge_path, header="workflow test")
        reloaded = read_edge_list(edge_path, relabel=False)
        assert reloaded == graph

        index = FlatWalkIndex.build(reloaded, 5, 20, seed=4)
        index_path = tmp_path / "walks.npz"
        save_index(index, index_path)
        result = approx_greedy_fast(
            reloaded, 8, 5, index=load_index(index_path), objective="f2"
        )
        metrics = evaluate_selection(reloaded, result.selected, 5)
        assert metrics["ehn"] >= 8  # at least the selected nodes themselves
        report = simulate_social_browsing(
            reloaded, result.selected, 2000, 5, seed=5
        )
        assert report.discovery_rate > 0

    def test_objective_consistency_across_all_solvers(self):
        """Every solver's answer, scored by the exact objectives, falls
        between the random floor and the DP-greedy reference."""
        from repro.core.objectives import F2Objective
        from repro.core.problems import Problem2, solve
        from repro.core.dp_greedy import dpf2
        from repro.core.baselines import random_baseline
        from repro.graphs.generators import power_law_graph

        graph = power_law_graph(60, 180, seed=9)
        k, length = 5, 4
        objective = F2Objective(graph, length)
        reference = objective.value(dpf2(graph, k, length).selected)
        floor = objective.value(
            random_baseline(graph, k, seed=1).selected
        )
        for method in ("sampling", "approx", "approx-fast", "degree",
                       "dominate"):
            options = {}
            if method in ("sampling", "approx", "approx-fast"):
                options = {"num_replicates": 60, "seed": 2}
            result = solve(Problem2(graph, k, length), method=method,
                           **options)
            score = objective.value(result.selected)
            assert score <= reference + 1e-9
            assert score >= 0.5 * floor

    def test_extension_objectives_agree_on_structure(self):
        """F1/F2/F3 greedy all prefer the hub of a star."""
        from repro.core.approx_fast import approx_greedy_fast
        from repro.core.edge_domination import edge_domination_greedy
        from repro.graphs.generators import star_graph

        graph = star_graph(25)
        f1 = approx_greedy_fast(graph, 1, 4, num_replicates=30,
                                objective="f1", seed=3)
        f2 = approx_greedy_fast(graph, 1, 4, num_replicates=30,
                                objective="f2", seed=3)
        f3 = edge_domination_greedy(graph, 1, 4, num_replicates=30, seed=3)
        assert f1.selected == f2.selected == f3.selected == (0,)

    def test_weighted_and_unweighted_agree_on_lifted_graph(self):
        """Unit-weight lifting preserves the greedy selection."""
        from repro.core.weighted import weighted_dpf2
        from repro.core.dp_greedy import dpf2
        from repro.graphs.generators import power_law_graph
        from repro.graphs.weighted import WeightedDiGraph

        graph = power_law_graph(30, 90, seed=11)
        lifted = WeightedDiGraph.from_undirected(graph)
        plain = dpf2(graph, 3, 4)
        weighted = weighted_dpf2(lifted, 3, 4)
        assert plain.selected == weighted.selected
