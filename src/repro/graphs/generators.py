"""Graph generators.

Two roles:

* The *power-law random graph model* the paper uses for all of its synthetic
  experiments ([1] Barabási–Albert) — :func:`power_law_graph` grows a graph
  by preferential attachment and then tops it up with random extra edges so
  the caller can hit an exact target edge count (the paper's synthetic graph
  has n=1000, m=9956, i.e. a non-integer average attachment).
* Small deterministic families (path, ring, star, complete, grid, ...) used
  throughout the test suite because their hitting times have closed forms or
  obvious symmetries.

All stochastic generators take a ``seed`` in the package-wide convention of
:func:`repro.walks.rng.resolve_rng`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.builder import GraphBuilder
from repro.walks.rng import resolve_rng

__all__ = [
    "power_law_graph",
    "barabasi_albert_graph",
    "erdos_renyi_graph",
    "chung_lu_graph",
    "path_graph",
    "ring_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "two_cluster_graph",
    "planted_partition_graph",
    "paper_example_graph",
]


def barabasi_albert_graph(
    num_nodes: int, attach: int, seed: "int | np.random.Generator | None" = None
) -> Graph:
    """Barabási–Albert preferential attachment with ``attach`` edges/node.

    Starts from a clique on ``attach + 1`` nodes; each subsequent node
    attaches to ``attach`` distinct existing nodes chosen proportionally to
    their current degree (implemented with the standard repeated-nodes trick:
    sampling uniformly from the flat endpoint list is degree-proportional).
    """
    if attach < 1:
        raise ParameterError("attach must be >= 1")
    if num_nodes <= attach:
        raise ParameterError("num_nodes must exceed attach")
    rng = resolve_rng(seed)

    # Seed clique on attach+1 nodes.
    core = np.arange(attach + 1)
    src0, dst0 = np.triu_indices(attach + 1, k=1)
    edges_src = [core[src0]]
    edges_dst = [core[dst0]]
    # Flat endpoint list: each edge contributes both endpoints, so sampling a
    # uniform element is sampling a node with probability deg/2m.  The final
    # size is known upfront, so the pool is preallocated and filled in place
    # (growing it with np.concatenate per node is quadratic in num_nodes).
    clique_endpoints = attach * (attach + 1)
    pool_total = clique_endpoints + 2 * attach * (num_nodes - attach - 1)
    pool = np.empty(pool_total, dtype=np.int64)
    pool[: clique_endpoints // 2] = core[src0]
    pool[clique_endpoints // 2 : clique_endpoints] = core[dst0]
    pool_len = clique_endpoints
    for new in range(attach + 1, num_nodes):
        targets: set[int] = set()
        # Draw until `attach` distinct targets; duplicates are rare for
        # attach << current size, so the loop converges fast.
        while len(targets) < attach:
            need = attach - len(targets)
            draw = pool[rng.integers(0, pool_len, size=need * 2 + 1)]
            for t in draw:
                targets.add(int(t))
                if len(targets) == attach:
                    break
        tgt = np.fromiter(targets, dtype=np.int64, count=attach)
        new_col = np.full(attach, new, dtype=np.int64)
        pool[pool_len : pool_len + attach] = tgt
        pool[pool_len + attach : pool_len + 2 * attach] = new_col
        pool_len += 2 * attach
        edges_src.append(new_col)
        edges_dst.append(tgt)

    builder = GraphBuilder()
    builder.add_edges(
        np.column_stack((np.concatenate(edges_src), np.concatenate(edges_dst)))
    )
    builder.touch_node(num_nodes - 1)
    return builder.build()


def power_law_graph(
    num_nodes: int,
    num_edges: int,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """Power-law graph with (approximately) an exact edge count.

    Grows a Barabási–Albert graph with ``attach = max(1, num_edges //
    num_nodes)`` and then adds uniformly random extra edges between distinct
    non-adjacent pairs until ``num_edges`` is reached (or removes surplus by
    stopping the growth early never happens: BA yields slightly fewer than
    ``attach * num_nodes`` edges, so top-up is the common path).  The result
    matches the heavy-tailed degree profile of the paper's synthetic model
    while letting dataset replicas hit Table 2's exact ``(n, m)``.
    """
    if num_nodes < 2:
        raise ParameterError("num_nodes must be >= 2")
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges > max_edges:
        raise ParameterError("num_edges exceeds the simple-graph maximum")
    rng = resolve_rng(seed)
    attach = max(1, num_edges // num_nodes)
    if num_nodes <= attach:
        attach = num_nodes - 1
    graph = barabasi_albert_graph(num_nodes, attach, seed=rng)
    if graph.num_edges > num_edges:
        # Drop random surplus edges (keeping the degree tail intact).
        edges = graph.edge_array()
        keep = rng.choice(edges.shape[0], size=num_edges, replace=False)
        builder = GraphBuilder()
        builder.add_edges(edges[keep])
        builder.touch_node(num_nodes - 1)
        return builder.build()

    existing = set(map(tuple, graph.edge_array().tolist()))
    builder = GraphBuilder()
    builder.add_edges(graph.edge_array())
    builder.touch_node(num_nodes - 1)
    missing = num_edges - graph.num_edges
    while missing > 0:
        cand_u = rng.integers(0, num_nodes, size=missing * 2 + 8)
        cand_v = rng.integers(0, num_nodes, size=missing * 2 + 8)
        for u, v in zip(cand_u, cand_v):
            if u == v:
                continue
            key = (int(min(u, v)), int(max(u, v)))
            if key in existing:
                continue
            existing.add(key)
            builder.add_edge(*key)
            missing -= 1
            if missing == 0:
                break
    return builder.build()


def erdos_renyi_graph(
    num_nodes: int,
    edge_probability: float,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """G(n, p) random graph."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ParameterError("edge_probability must lie in [0, 1]")
    if num_nodes < 1:
        raise ParameterError("num_nodes must be >= 1")
    rng = resolve_rng(seed)
    src, dst = np.triu_indices(num_nodes, k=1)
    mask = rng.random(src.size) < edge_probability
    builder = GraphBuilder()
    builder.add_edges(np.column_stack((src[mask], dst[mask])))
    builder.touch_node(num_nodes - 1)
    return builder.build()


def chung_lu_graph(
    expected_degrees: "list[float] | np.ndarray",
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """Chung–Lu graph: edge ``{u,v}`` appears w.p. ``min(1, w_u w_v / W)``.

    Useful to replicate an arbitrary degree sequence in expectation, e.g.
    when mimicking a real dataset whose degree profile is known.
    """
    weights = np.asarray(expected_degrees, dtype=np.float64)
    if weights.ndim != 1 or weights.size < 1:
        raise ParameterError("expected_degrees must be a non-empty 1-D sequence")
    if (weights < 0).any():
        raise ParameterError("expected_degrees must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ParameterError("expected_degrees must not be all zero")
    rng = resolve_rng(seed)
    n = weights.size
    src, dst = np.triu_indices(n, k=1)
    probs = np.minimum(1.0, weights[src] * weights[dst] / total)
    mask = rng.random(src.size) < probs
    builder = GraphBuilder()
    builder.add_edges(np.column_stack((src[mask], dst[mask])))
    builder.touch_node(n - 1)
    return builder.build()


def path_graph(num_nodes: int) -> Graph:
    """Path ``0 - 1 - ... - (n-1)``."""
    if num_nodes < 1:
        raise ParameterError("num_nodes must be >= 1")
    idx = np.arange(num_nodes - 1)
    return Graph.from_edges(np.column_stack((idx, idx + 1)), num_nodes=num_nodes)


def ring_graph(num_nodes: int) -> Graph:
    """Cycle on ``num_nodes >= 3`` nodes."""
    if num_nodes < 3:
        raise ParameterError("a ring needs at least 3 nodes")
    idx = np.arange(num_nodes)
    return Graph.from_edges(
        np.column_stack((idx, (idx + 1) % num_nodes)), num_nodes=num_nodes
    )


def star_graph(num_leaves: int) -> Graph:
    """Star with center ``0`` and leaves ``1..num_leaves``."""
    if num_leaves < 1:
        raise ParameterError("a star needs at least 1 leaf")
    leaves = np.arange(1, num_leaves + 1)
    return Graph.from_edges(
        np.column_stack((np.zeros_like(leaves), leaves)), num_nodes=num_leaves + 1
    )


def complete_graph(num_nodes: int) -> Graph:
    """Complete graph ``K_n``."""
    if num_nodes < 1:
        raise ParameterError("num_nodes must be >= 1")
    src, dst = np.triu_indices(num_nodes, k=1)
    return Graph.from_edges(np.column_stack((src, dst)), num_nodes=num_nodes)


def grid_graph(rows: int, cols: int) -> Graph:
    """4-neighbor lattice with ``rows * cols`` nodes (row-major labels)."""
    if rows < 1 or cols < 1:
        raise ParameterError("rows and cols must be >= 1")
    builder = GraphBuilder()
    ids = np.arange(rows * cols).reshape(rows, cols)
    horiz = np.column_stack((ids[:, :-1].ravel(), ids[:, 1:].ravel()))
    vert = np.column_stack((ids[:-1, :].ravel(), ids[1:, :].ravel()))
    if horiz.size:
        builder.add_edges(horiz)
    if vert.size:
        builder.add_edges(vert)
    builder.touch_node(rows * cols - 1)
    return builder.build()


def two_cluster_graph(
    cluster_size: int, bridge_edges: int = 1,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """Two dense clusters joined by a few bridges.

    A stress shape for domination algorithms: one representative per cluster
    dominates far better than two nodes in the same cluster, which is what
    greedy should discover and degree-only baselines often miss.
    """
    if cluster_size < 2:
        raise ParameterError("cluster_size must be >= 2")
    if bridge_edges < 1:
        raise ParameterError("bridge_edges must be >= 1")
    rng = resolve_rng(seed)
    builder = GraphBuilder()
    src, dst = np.triu_indices(cluster_size, k=1)
    builder.add_edges(np.column_stack((src, dst)))
    builder.add_edges(np.column_stack((src + cluster_size, dst + cluster_size)))
    left = rng.integers(0, cluster_size, size=bridge_edges)
    right = rng.integers(cluster_size, 2 * cluster_size, size=bridge_edges)
    builder.add_edges(np.column_stack((left, right)))
    return builder.build()


def planted_partition_graph(
    num_clusters: int,
    cluster_size: int,
    intra_probability: float,
    inter_probability: float,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """Planted-partition (stochastic block) graph.

    ``num_clusters`` communities of ``cluster_size`` nodes; node pairs are
    joined w.p. ``intra_probability`` inside a community and
    ``inter_probability`` across.  Community structure is exactly the regime
    where degree-only heuristics fail at domination (all hubs may sit in one
    community), which the examples use to contrast greedy with ``Degree``.
    """
    if num_clusters < 1 or cluster_size < 1:
        raise ParameterError("num_clusters and cluster_size must be >= 1")
    for prob in (intra_probability, inter_probability):
        if not 0.0 <= prob <= 1.0:
            raise ParameterError("probabilities must lie in [0, 1]")
    rng = resolve_rng(seed)
    n = num_clusters * cluster_size
    src, dst = np.triu_indices(n, k=1)
    same = (src // cluster_size) == (dst // cluster_size)
    probs = np.where(same, intra_probability, inter_probability)
    mask = rng.random(src.size) < probs
    builder = GraphBuilder()
    builder.add_edges(np.column_stack((src[mask], dst[mask])))
    builder.touch_node(n - 1)
    return builder.build()


def paper_example_graph() -> Graph:
    """The 8-node running example of the paper (Fig. 1).

    Nodes are 0-based: paper node ``v_i`` is our node ``i - 1``.  The edge
    set is reconstructed to be consistent with every random walk printed in
    the paper (Section 2 and Example 3.1): those walks force
    v1-v2, v1-v6, v2-v3, v2-v5, v2-v6, v3-v5, v4-v7, v5-v7, v6-v7, v7-v8;
    v3-v4, v4-v8 and v5-v6 complete the drawn figure.
    """
    paper_edges = [
        (1, 2), (1, 6), (2, 3), (2, 5), (2, 6), (3, 4), (3, 5),
        (4, 7), (4, 8), (5, 6), (5, 7), (6, 7), (7, 8),
    ]
    return Graph.from_edges([(u - 1, v - 1) for u, v in paper_edges])
