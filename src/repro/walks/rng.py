"""Randomness discipline for the whole package.

Every stochastic public API in :mod:`repro` accepts a ``seed`` argument that
may be ``None`` (fresh OS entropy), an ``int`` (reproducible), or an existing
:class:`numpy.random.Generator` (caller-managed stream).  This module is the
single place that interprets that convention.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = ["resolve_rng", "spawn_children", "SeedLike"]

SeedLike = "int | numpy.random.Generator | None"


def resolve_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Turn a seed-like value into a :class:`numpy.random.Generator`.

    ``None`` draws fresh entropy, an ``int`` seeds a PCG64 stream, and a
    ``Generator`` is returned unchanged (shared, not copied) so a caller can
    thread one stream through several calls.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ParameterError("integer seeds must be non-negative")
        return np.random.default_rng(int(seed))
    raise ParameterError(f"cannot interpret {type(seed).__name__} as a seed")


def spawn_children(
    seed: "int | np.random.Generator | None", count: int
) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used where work is split into phases (e.g. one stream per replicate of
    the walk index) so that changing one phase's consumption pattern does not
    perturb the others.
    """
    if count < 0:
        raise ParameterError("count must be non-negative")
    return resolve_rng(seed).spawn(count)
