"""Side-by-side comparison of every solver in the library.

Runs all seven algorithms on one graph — the exact DP greedy, the
sampling-based greedy, both Algorithm 6 engines, and the three baselines —
and prints quality, runtime, and work done.  A compact, runnable version of
the paper's whole evaluation story.

Run:  python examples/compare_algorithms.py
"""

from __future__ import annotations

import repro


def main() -> None:
    graph = repro.power_law_graph(1_000, 9_956, seed=4546)  # paper's synthetic
    k, length = 30, 6
    print(f"graph: {graph} (the paper's synthetic setup), k={k}, L={length}\n")

    problem = repro.Problem2(graph, k, length)
    runs = []
    for method, options in (
        ("dp", {}),
        ("sampling", {"num_replicates": 100, "seed": 1}),
        ("approx", {"num_replicates": 100, "seed": 1}),
        ("approx-fast", {"num_replicates": 100, "seed": 1}),
        ("degree", {}),
        ("dominate", {}),
        ("random", {"seed": 1}),
    ):
        runs.append(repro.solve(problem, method=method, **options))

    header = (
        f"{'algorithm':<12} {'EHN':>9} {'AHT':>8} {'seconds':>9} {'gain evals':>11}"
    )
    print(header)
    print("-" * len(header))
    for result in runs:
        ehn = repro.expected_hit_nodes(graph, result.selected, length)
        aht = repro.average_hitting_time(graph, result.selected, length)
        print(
            f"{result.algorithm:<12} {ehn:>9.1f} {aht:>8.4f} "
            f"{result.elapsed_seconds:>9.3f} {result.num_gain_evaluations:>11}"
        )

    print("\nreading: the greedy family lands within a whisker of the DP "
          "reference; the\nvectorized Algorithm 6 gets there orders of "
          "magnitude faster; the heuristics trail.")


if __name__ == "__main__":
    main()
