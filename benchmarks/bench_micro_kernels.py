"""Micro-benchmarks of the hot kernels (proper repeated-round timings).

These are the building blocks whose costs the paper's complexity analysis
predicts: walk generation O(n R L), index construction O(n R L), a full
gain sweep O(n R L), the D-update O(R deg), and one DP level O(m).

The walk-backend section compares the registered engines
(:mod:`repro.walks.backends`) head-to-head on the same 10k-node power-law
batched-walk workload and asserts the repo's standing performance claim:
the ``"csr"`` backend is at least 2x faster than the ``"numpy"`` reference
while producing bit-identical walks (see EXPERIMENTS.md).
"""

import time

import numpy as np
import pytest

from repro.graphs.generators import power_law_graph
from repro.hitting.exact import hitting_time_vector
from repro.walks.backends import available_engines, get_engine
from repro.walks.engine import batch_walks
from repro.walks.index import FlatWalkIndex, walker_major_starts
from repro.core.approx_fast import FastApproxEngine
from repro.core.coverage_kernel import CoverageKernel


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(5_000, 40_000, seed=77)


@pytest.fixture(scope="module")
def backend_graph():
    """10k-node power-law graph for the engine head-to-head."""
    return power_law_graph(10_000, 50_000, seed=79)


@pytest.fixture(scope="module")
def index(graph):
    return FlatWalkIndex.build(graph, 6, 20, seed=78)


def test_batch_walk_generation(benchmark, graph):
    starts = walker_major_starts(graph.num_nodes, 10)
    benchmark(lambda: batch_walks(graph, starts, 6, seed=1))


def test_index_build(benchmark, graph):
    benchmark(lambda: FlatWalkIndex.build(graph, 6, 10, seed=2))


def test_full_gain_sweep(benchmark, index):
    engine = FastApproxEngine(index, "f1")
    benchmark(engine.gains_all)


def test_single_gain_query(benchmark, index):
    engine = FastApproxEngine(index, "f1")
    benchmark(lambda: engine.gain_of(17))


def test_select_update(benchmark, index):
    # Fresh engine per round so repeated selection stays legal; cycle the
    # node ids so the benchmark can run more rounds than there are nodes.
    import itertools

    nodes = itertools.cycle(range(index.num_nodes))

    def run():
        engine = FastApproxEngine(index, "f1")
        engine.select(next(nodes))

    benchmark(run)


def test_dp_level_cost(benchmark, graph):
    benchmark(lambda: hitting_time_vector(graph, {0, 1, 2}, 6))


# ----------------------------------------------------------------------
# Coverage-kernel micro-kernels (DESIGN.md §8)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def kernel(index):
    return CoverageKernel.from_index(index, "f2")


def test_kernel_build(benchmark, index):
    benchmark(lambda: CoverageKernel.from_index(index, "f2"))


def test_kernel_gains_all(benchmark, kernel):
    benchmark(kernel.gains_all)


def test_kernel_popcount_refresh(benchmark, kernel):
    kernel.rows  # materialize the packed rows outside the timed region
    benchmark(kernel.refresh_gains)


def test_kernel_select_update(benchmark, index):
    import itertools

    nodes = itertools.cycle(range(index.num_nodes))

    def run():
        fresh = CoverageKernel.from_index(index, "f2")
        fresh.select(next(nodes))

    benchmark(run)


# ----------------------------------------------------------------------
# Walk-backend head-to-head
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_name", sorted(available_engines()))
def test_batch_walks_backend(benchmark, backend_graph, engine_name):
    """Same batched-walk workload on every registered backend."""
    starts = walker_major_starts(backend_graph.num_nodes, 10)
    engine = get_engine(engine_name)
    engine.batch_walks(backend_graph, starts[:64], 6, seed=0)  # warm plans
    benchmark(lambda: engine.batch_walks(backend_graph, starts, 6, seed=1))


@pytest.mark.parametrize("engine_name", ["numpy", "csr"])
def test_index_build_backend(benchmark, backend_graph, engine_name):
    engine = get_engine(engine_name)
    benchmark(
        lambda: FlatWalkIndex.build(backend_graph, 6, 5, seed=2, engine=engine)
    )


def test_parallel_backends_parity(backend_graph, bench_record):
    """sharded and multiproc reproduce the numpy stream bit for bit.

    The four-backend bit-identity contract on the canonical workload —
    a hard gate in the walk-backend CI job (timing never enters it).
    """
    starts = walker_major_starts(backend_graph.num_nodes, 10)[:100_000]
    reference = get_engine("numpy").batch_walks(backend_graph, starts, 6, seed=3)
    for name in ("sharded", "multiproc"):
        walks = get_engine(name).batch_walks(backend_graph, starts, 6, seed=3)
        parity = np.array_equal(reference, walks)
        bench_record(f"walk_backends.{name}_parity", bool(parity))
        assert parity, f"{name} walks differ from numpy"


def test_csr_backend_speedup(backend_graph, bench_record, timing_gate):
    """The standing claim: csr >= 2x numpy on batched walks, bit-identical.

    The workload is the canonical one — the paper's default R=100 walks
    per node (exactly what ``FlatWalkIndex.build`` generates), i.e. a
    one-million-row batch.  Interleaved best-of-N timing so background
    load hits both engines alike; the parity check rules out the speedup
    coming from doing different (cheaper) work.  Parity is a hard
    assertion; the speedup floor honors ``--no-timing-gate``.
    """
    starts = walker_major_starts(backend_graph.num_nodes, 100)
    numpy_engine = get_engine("numpy")
    csr_engine = get_engine("csr")
    parity = np.array_equal(
        numpy_engine.batch_walks(backend_graph, starts[:10_000], 6, seed=3),
        csr_engine.batch_walks(backend_graph, starts[:10_000], 6, seed=3),
    )
    bench_record("walk_backends.csr_parity", bool(parity))
    assert parity

    def measure() -> tuple[float, float, float]:
        best = {"numpy": float("inf"), "csr": float("inf")}
        for _ in range(4):
            for name, engine in (("numpy", numpy_engine), ("csr", csr_engine)):
                started = time.perf_counter()
                engine.batch_walks(backend_graph, starts, 6, seed=1)
                best[name] = min(best[name], time.perf_counter() - started)
        return best["numpy"], best["csr"], best["numpy"] / best["csr"]

    # Timer noise on a loaded box can depress any single reading; the claim
    # is about the engine, so accept the best of a few short attempts.
    speedup = 0.0
    for _ in range(3):
        numpy_ms, csr_ms, ratio = measure()
        speedup = max(speedup, ratio)
        if speedup >= 2.0:
            break
    print(
        f"\nbatched walks (n=10k power-law, B=1M, L=6): "
        f"numpy {numpy_ms * 1e3:.1f} ms, csr {csr_ms * 1e3:.1f} ms "
        f"-> {ratio:.2f}x (best attempt {speedup:.2f}x)"
    )
    bench_record("walk_backends.batch_walks_numpy_s", numpy_ms)
    bench_record("walk_backends.batch_walks_csr_s", csr_ms)
    bench_record("walk_backends.csr_speedup_x", speedup)
    if timing_gate:
        assert speedup >= 2.0, f"csr only {speedup:.2f}x faster than numpy"
    elif speedup < 2.0:
        print(f"TIMING (report-only): csr speedup {speedup:.2f}x < 2.0x floor")
