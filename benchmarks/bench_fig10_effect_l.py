"""Fig. 10: effect of the walk-length parameter L (k = 60).

Paper shape: both AHT and EHN increase with L for every algorithm, and the
greedy algorithms' margin over the baselines widens as L grows.
"""

from repro.experiments.figures import fig10


def test_fig10(benchmark, config, report):
    table = benchmark.pedantic(lambda: fig10(config), rounds=1, iterations=1)
    report(table, "fig10.txt")
    aht = table.columns.index("AHT")
    ehn = table.columns.index("EHN")
    lengths = sorted({row[2] for row in table.rows})
    lo, hi = lengths[0], lengths[-1]
    for dataset in {row[0] for row in table.rows}:
        for algorithm in ("Degree", "Dominate", "ApproxF1", "ApproxF2"):
            row_lo = table.filtered(dataset=dataset, algorithm=algorithm, L=lo)[0]
            row_hi = table.filtered(dataset=dataset, algorithm=algorithm, L=hi)[0]
            assert row_hi[aht] >= row_lo[aht] - 1e-9
            assert row_hi[ehn] >= row_lo[ehn] - 1e-9
        # Greedy beats the baselines on EHN at the largest L.
        at_hi = {
            row[1]: row[ehn] for row in table.filtered(dataset=dataset, L=hi)
        }
        assert max(at_hi["ApproxF1"], at_hi["ApproxF2"]) >= max(
            at_hi["Degree"], at_hi["Dominate"]
        ) - 1e-9
