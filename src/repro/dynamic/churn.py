"""Edit-trace replay: coverage decay and re-solve points (DESIGN.md §9.4).

The operational question behind the dynamic subsystem: a placement was
selected on one snapshot — how fast does its quality decay as the graph
churns, and when is it worth re-solving?  :func:`churn_replay` streams an
edit trace batch by batch, keeps the walk index fresh with incremental
updates, tracks the sampled coverage / AHT of the standing selection, and
re-solves (from the maintained index — no rebuild) whenever coverage
falls below a configurable fraction of what the last solve achieved.

Trace files are plain text, one directive per line (``#`` comments and
blank lines ignored)::

    add U V      # insert undirected edge {U, V}
    del U V      # delete undirected edge {U, V}
    leave U      # peer U departs: delete all its current edges
    rejoin U     # peer U returns: restore its original edges to
                 # neighbors that are themselves present
    step         # end of batch: apply everything since the last step

``leave``/``rejoin`` are membership sugar expanded against the *original*
adjacency (captured when replay starts), so the same format drives both
the generic ``repro dynamic`` replay and the P2P churn simulation
(``repro simulate --app p2p --churn-trace``).  A trailing batch without a
final ``step`` is applied too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro import obs
from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.core.approx_fast import approx_greedy_fast
from repro.walks.backends import WalkEngine
from repro.walks.persistence import as_format
from repro.dynamic.graph import DynamicGraph
from repro.dynamic.index import DynamicWalkIndex

__all__ = [
    "TraceOp",
    "parse_trace",
    "expand_membership",
    "ChurnStep",
    "ChurnReport",
    "churn_replay",
]


@dataclass(frozen=True)
class TraceOp:
    """One parsed trace directive (``kind`` in add/del/leave/rejoin).

    ``line`` is the 1-based trace line the op came from (0 for ops built
    programmatically) — validation errors quote it so a bad id in a
    million-line trace is findable.
    """

    kind: str
    u: int
    v: int = -1
    line: int = 0


def _op_context(op: TraceOp) -> str:
    return f"churn trace line {op.line}: " if op.line else ""


def parse_trace(text: str) -> list[list[TraceOp]]:
    """Parse a churn trace into batches of :class:`TraceOp`.

    Each ``step`` line closes a batch; empty batches (consecutive
    ``step`` lines) are preserved so a trace can express "time passes,
    nothing changed" phases for the simulators.  Node ids must be
    non-negative here (negative ids would silently wrap around numpy
    membership arrays); the upper bound depends on the graph and is
    enforced by :func:`expand_membership`.
    """
    batches: list[list[TraceOp]] = []
    current: list[TraceOp] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        kind = parts[0].lower()
        try:
            if kind in ("add", "del") and len(parts) == 3:
                current.append(
                    TraceOp(
                        kind=kind, u=int(parts[1]), v=int(parts[2]),
                        line=lineno,
                    )
                )
            elif kind in ("leave", "rejoin") and len(parts) == 2:
                current.append(
                    TraceOp(kind=kind, u=int(parts[1]), line=lineno)
                )
            elif kind == "step" and len(parts) == 1:
                batches.append(current)
                current = []
            else:
                raise ValueError
        except ValueError:
            raise ParameterError(
                f"churn trace line {lineno}: cannot parse {raw!r} "
                "(expected 'add U V', 'del U V', 'leave U', 'rejoin U', "
                "or 'step')"
            )
        op = current[-1] if kind != "step" else None
        if op is not None:
            ids = (op.u,) if op.kind in ("leave", "rejoin") else (op.u, op.v)
            for node in ids:
                if node < 0:
                    raise ParameterError(
                        f"churn trace line {lineno}: negative node id "
                        f"{node} in {raw.strip()!r}"
                    )
    if current:
        batches.append(current)
    return batches


def _check_op_ids(op: TraceOp, num_nodes: int) -> None:
    """Reject ids outside ``[0, num_nodes)`` with the op's line context.

    Negative ids are re-checked here (not just in :func:`parse_trace`)
    because ops can be constructed programmatically, and numpy would
    silently wrap ``present[-1]`` instead of failing.
    """
    if op.kind in ("leave", "rejoin"):
        ids, text = (op.u,), f"{op.kind} {op.u}"
    else:
        ids, text = (op.u, op.v), f"{op.kind} {op.u} {op.v}"
    for node in ids:
        if not 0 <= node < num_nodes:
            raise ParameterError(
                f"{_op_context(op)}node id {node} out of range for a "
                f"{num_nodes}-node graph in op {text!r}"
            )


def expand_membership(
    ops: Iterable[TraceOp],
    dynamic_graph: DynamicGraph,
    original: Graph,
    present: np.ndarray,
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Expand one batch of trace ops into concrete edge edits.

    ``leave U`` deletes *all* of U's current edges (original overlay
    links and edges added during the replay alike); ``rejoin U`` re-adds
    U's *original* edges to neighbors that are present (including peers
    that rejoined earlier in the same batch — ops apply in order).
    ``present`` is updated in place.  Every node id is validated against
    the graph before any membership state is touched — an out-of-range
    (or negative) id raises :class:`~repro.errors.ParameterError` with
    the offending trace line instead of crashing on the membership
    array.  Explicit ``add``/``del`` ops must be consistent with
    membership (editing edges of a departed peer is rejected — it would
    silently desynchronize a later rejoin).

    Ops within one batch compose as set edits against the pre-batch
    snapshot: deleting an edge and re-adding it in the same batch (e.g.
    ``leave U`` directly followed by ``rejoin U``) cancels out instead of
    emitting a conflicting insert/delete pair.
    """
    pending_del: set[tuple[int, int]] = set()
    pending_ins: set[tuple[int, int]] = set()

    def _edge(u: int, v: int) -> tuple[int, int]:
        return (min(u, v), max(u, v))

    def _exists(u: int, v: int) -> bool:
        edge = _edge(u, v)
        if edge in pending_del:
            return False
        if edge in pending_ins:
            return True
        return dynamic_graph.has_edge(u, v)

    def _insert(u: int, v: int) -> None:
        edge = _edge(u, v)
        if edge in pending_del:  # delete + re-add cancels out
            pending_del.discard(edge)
        else:
            pending_ins.add(edge)

    def _delete(u: int, v: int) -> None:
        edge = _edge(u, v)
        if edge in pending_ins:  # add + re-delete cancels out
            pending_ins.discard(edge)
        else:
            pending_del.add(edge)

    ops = list(ops)
    num_nodes = dynamic_graph.num_nodes
    # Validate every id up front so a bad op later in the batch cannot
    # leave `present` (mutated in place below) half-updated.
    for op in ops:
        _check_op_ids(op, num_nodes)
    for op in ops:
        if op.kind == "leave":
            if not present[op.u]:
                raise ParameterError(
                    f"{_op_context(op)}peer {op.u} left twice in the trace"
                )
            current = {int(v) for v in dynamic_graph.graph.neighbors(op.u)}
            current.update(
                u if v == op.u else v
                for u, v in pending_ins
                if op.u in (u, v)
            )
            for v in sorted(current):
                if _exists(op.u, v):
                    _delete(op.u, v)
            present[op.u] = False
        elif op.kind == "rejoin":
            if present[op.u]:
                raise ParameterError(
                    f"{_op_context(op)}peer {op.u} rejoined while still "
                    "present"
                )
            present[op.u] = True
            for v in original.neighbors(op.u):
                if present[v] and not _exists(op.u, int(v)):
                    _insert(op.u, int(v))
        elif op.kind in ("add", "del"):
            if not (present[op.u] and present[op.v]):
                raise ParameterError(
                    f"{_op_context(op)}edge op on departed peer: "
                    f"{op.kind} {op.u} {op.v}"
                )
            if op.kind == "add":
                _insert(op.u, op.v)
            else:
                _delete(op.u, op.v)
        else:  # pragma: no cover - parse_trace only emits known kinds
            raise ParameterError(f"unknown trace op {op.kind!r}")
    return sorted(pending_ins), sorted(pending_del)


@dataclass(frozen=True)
class ChurnStep:
    """Index and selection health after one replayed batch."""

    epoch: int
    num_inserts: int
    num_deletes: int
    resampled_rows: int
    resampled_fraction: float
    coverage_fraction: float
    aht: float
    resolved: bool
    update_seconds: float


@dataclass(frozen=True)
class ChurnReport:
    """Full replay outcome (one row per batch, plus solve history).

    ``selections`` holds ``(epoch, selected_tuple)`` for the initial solve
    (epoch 0) and every re-solve; the selection standing at any step is
    the last entry at or before that epoch.
    """

    steps: tuple[ChurnStep, ...]
    selections: tuple[tuple[int, tuple[int, ...]], ...]
    baseline_coverage_fraction: float
    resolve_threshold: float
    k: int
    length: int
    num_replicates: int

    @property
    def num_resolves(self) -> int:
        """Re-solves triggered during the replay (initial solve excluded)."""
        return len(self.selections) - 1


def churn_replay(
    graph: Graph,
    batches: "Sequence[Sequence[TraceOp]] | str",
    k: int,
    length: int,
    num_replicates: int = 100,
    seed: "int | None" = None,
    engine: "str | WalkEngine | None" = None,
    gain_backend: "str | None" = None,
    resolve_threshold: float = 0.9,
    index_format: "str | None" = None,
    rows_format: "str | None" = None,
) -> ChurnReport:
    """Stream an edit trace, maintain the index, report decay/re-solves.

    ``batches`` is either parsed trace batches or raw trace text.  The
    placement is solved with the sampled ``ApproxF2`` greedy on the
    maintained index; after each batch the index is synced incrementally
    and the standing selection's coverage fraction is compared against
    ``resolve_threshold`` times the fraction achieved at its solve time —
    dropping below triggers a re-solve on the *current* index (cost: one
    greedy run, no walk regeneration).

    ``index_format`` converts the maintained flat index to that storage
    backend (:data:`~repro.walks.storage.INDEX_FORMATS`) for each
    (re-)solve — incremental maintenance itself always runs on the dense
    arrays (entry splicing needs them), so this trades solve-time memory
    for a per-resolve conversion.  Selections are bit-identical across
    formats.  ``rows_format`` picks the bitset kernel's coverage-row
    representation for each re-solve (also bit-identical; ignored by the
    entries backend).
    """
    if isinstance(batches, str):
        batches = parse_trace(batches)
    if not 0.0 < resolve_threshold <= 1.0:
        raise ParameterError("resolve_threshold must lie in (0, 1]")
    dyn = DynamicWalkIndex.build(
        graph, length, num_replicates, seed=seed, engine=engine
    )
    dgraph = DynamicGraph(graph)
    present = np.ones(graph.num_nodes, dtype=bool)

    def _solve() -> tuple[int, ...]:
        flat = dyn.flat
        if index_format is not None:
            flat = as_format(flat, index_format, graph=dyn.graph)
        result = approx_greedy_fast(
            dyn.graph, k, dyn.length, index=flat, objective="f2",
            gain_backend=gain_backend, rows_format=rows_format,
        )
        return result.selected

    selection = _solve()
    selections = [(0, selection)]
    baseline = dyn.selection_metrics(selection)["coverage_fraction"]
    solve_baseline = baseline
    steps: list[ChurnStep] = []
    for ops in batches:
        inserts, deletes = expand_membership(ops, dgraph, graph, present)
        started = time.perf_counter()
        with obs.span(
            "churn.batch", inserts=len(inserts), deletes=len(deletes)
        ):
            dgraph.apply_batch(inserts, deletes)
            stats = dyn.sync(dgraph)
        update_seconds = time.perf_counter() - started
        metrics = dyn.selection_metrics(selection)
        resolved = False
        if metrics["coverage_fraction"] < resolve_threshold * solve_baseline:
            selection = _solve()
            selections.append((dyn.epoch, selection))
            metrics = dyn.selection_metrics(selection)
            solve_baseline = metrics["coverage_fraction"]
            resolved = True
        if obs.enabled():
            obs.inc("churn_batches_total", help="Churn batches replayed.")
            if resolved:
                obs.inc(
                    "churn_resolves_total",
                    help="Re-solves triggered by coverage decay.",
                )
            obs.observe(
                "churn_resampled_rows",
                stats.resampled_rows,
                buckets=obs.COUNT_BUCKETS,
                help="Walk rows resampled per churn batch.",
            )
            obs.observe(
                "churn_update_seconds",
                update_seconds,
                help="Per-batch incremental maintenance wall time.",
            )
        steps.append(
            ChurnStep(
                epoch=dyn.epoch,
                num_inserts=len(inserts),
                num_deletes=len(deletes),
                resampled_rows=stats.resampled_rows,
                resampled_fraction=stats.resampled_fraction,
                coverage_fraction=metrics["coverage_fraction"],
                aht=metrics["aht"],
                resolved=resolved,
                update_seconds=update_seconds,
            )
        )
    return ChurnReport(
        steps=tuple(steps),
        selections=tuple(selections),
        baseline_coverage_fraction=baseline,
        resolve_threshold=resolve_threshold,
        k=k,
        length=length,
        num_replicates=num_replicates,
    )
