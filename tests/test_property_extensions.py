"""Property-based tests (hypothesis) for the extension modules.

Covers the invariants of the edge-domination machinery, the new random
graph models, the plotting helpers, and the stochastic-greedy sizing rule.
Walk-dependent properties inject hypothesis-generated walks so checks are
exact (no Monte-Carlo tolerance).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

#: Exhaustive hypothesis suite: slow lane (see pytest.ini).
pytestmark = pytest.mark.slow

from repro.core.edge_domination import (
    EdgeDominationEngine,
    EdgeWalkIndex,
    prefix_edge_counts,
)
from repro.core.stochastic import sample_size_per_round
from repro.experiments.plotting import ascii_bars, ascii_plot
from repro.graphs.random_models import (
    configuration_model_graph,
    random_regular_graph,
    watts_strogatz_graph,
)

NODE_COUNT = 6

# Walk matrices over a tiny node universe: every row is one walk.
walk_matrices = st.integers(min_value=1, max_value=8).flatmap(
    lambda width: st.lists(
        st.lists(
            st.integers(min_value=0, max_value=NODE_COUNT - 1),
            min_size=width,
            max_size=width,
        ),
        min_size=1,
        max_size=12,
    )
)


@st.composite
def walker_major_walks(draw):
    """Walks in the walker-major layout EdgeWalkIndex.from_walks expects."""
    reps = draw(st.integers(min_value=1, max_value=3))
    length = draw(st.integers(min_value=0, max_value=5))
    walks = []
    for walker in range(NODE_COUNT):
        for _ in range(reps):
            walk = [walker]
            for _ in range(length):
                walk.append(
                    draw(st.integers(min_value=0, max_value=NODE_COUNT - 1))
                )
            walks.append(walk)
    return walks, reps, length


class TestPrefixEdgeCountProperties:
    @given(walk_matrices)
    @settings(max_examples=60, deadline=None)
    def test_nondecreasing_and_bounded(self, walks):
        counts = prefix_edge_counts(np.asarray(walks))
        diffs = np.diff(counts, axis=1)
        assert (diffs >= 0).all()
        assert (diffs <= 1).all()  # one hop adds at most one edge
        # C[b, t] <= t always.
        width = counts.shape[1]
        assert (counts <= np.arange(width)).all()

    @given(walk_matrices)
    @settings(max_examples=60, deadline=None)
    def test_matches_set_oracle(self, walks):
        walks = np.asarray(walks)
        counts = prefix_edge_counts(walks)
        for b, walk in enumerate(walks):
            seen: set[tuple[int, int]] = set()
            for t in range(1, walks.shape[1]):
                u, v = int(walk[t - 1]), int(walk[t])
                if u != v:
                    seen.add((min(u, v), max(u, v)))
                assert counts[b, t] == len(seen)


class TestEdgeEngineProperties:
    @given(walker_major_walks())
    @settings(max_examples=30, deadline=None)
    def test_gain_sweep_equals_singles(self, data):
        walks, reps, _length = data
        index = EdgeWalkIndex.from_walks(walks, NODE_COUNT, reps)
        engine = EdgeDominationEngine(index)
        sweep = engine.gains_all()
        singles = np.array([engine.gain_of(u) for u in range(NODE_COUNT)])
        np.testing.assert_array_equal(sweep, singles)

    @given(walker_major_walks())
    @settings(max_examples=30, deadline=None)
    def test_objective_nondecreasing_under_selection(self, data):
        walks, reps, _length = data
        index = EdgeWalkIndex.from_walks(walks, NODE_COUNT, reps)
        engine = EdgeDominationEngine(index)
        previous = engine.objective_value()
        for node in range(NODE_COUNT):
            engine.select(node)
            current = engine.objective_value()
            assert current >= previous - 1e-12
            previous = current

    @given(walker_major_walks())
    @settings(max_examples=30, deadline=None)
    def test_full_selection_saves_everything(self, data):
        """Selecting all nodes stops every walk at hop 0."""
        walks, reps, length = data
        index = EdgeWalkIndex.from_walks(walks, NODE_COUNT, reps)
        engine = EdgeDominationEngine(index)
        for node in range(NODE_COUNT):
            engine.select(node)
        full = index.prefix[:, length].astype(np.int64).sum() / reps
        assert engine.objective_value() == full

    @given(walker_major_walks())
    @settings(max_examples=20, deadline=None)
    def test_lazy_equals_full_selection(self, data):
        walks, reps, _length = data
        index = EdgeWalkIndex.from_walks(walks, NODE_COUNT, reps)
        lazy = EdgeDominationEngine(index)
        lazy.run(4, lazy=True)
        full = EdgeDominationEngine(index)
        full.run(4, lazy=False)
        assert lazy.selected == full.selected


class TestRandomModelProperties:
    @given(
        st.integers(min_value=6, max_value=24),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_regular_always_regular(self, n, half_degree, seed):
        degree = 2 * half_degree  # even degree avoids parity rejections
        if degree >= n:
            return
        graph = random_regular_graph(n, degree, seed=seed)
        assert (graph.degrees == degree).all()

    @given(
        st.lists(st.integers(min_value=0, max_value=4), min_size=4, max_size=16),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_configuration_model_never_exceeds(self, degrees, seed):
        degrees = np.asarray(degrees)
        if degrees.sum() % 2:
            degrees[0] += 1
        if degrees.max(initial=0) >= degrees.size:
            return
        graph = configuration_model_graph(degrees, seed=seed)
        assert (graph.degrees <= degrees).all()

    @given(
        st.integers(min_value=8, max_value=30),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_watts_strogatz_preserves_edge_count(self, n, p, seed):
        graph = watts_strogatz_graph(n, 4, p, seed=seed)
        assert graph.num_edges == n * 2


class TestPlottingProperties:
    @given(
        st.dictionaries(
            st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1,
                max_size=6,
            ),
            st.lists(
                st.tuples(
                    st.floats(-1e6, 1e6, allow_nan=False),
                    st.floats(-1e6, 1e6, allow_nan=False),
                ),
                min_size=1,
                max_size=10,
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_plot_never_crashes_and_has_fixed_frame(self, series):
        text = ascii_plot(series, width=32, height=8)
        lines = text.splitlines()
        plot_rows = [line for line in lines if line.rstrip().endswith("|")]
        assert len(plot_rows) == 8
        # Every plot row has the same visible width.
        assert len({len(line) for line in plot_rows}) == 1

    @given(
        st.dictionaries(
            st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1,
                max_size=8,
            ),
            st.floats(0.0, 1e9, allow_nan=False),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bars_bounded_by_width(self, values):
        text = ascii_bars(values, width=20)
        for line in text.splitlines():
            assert line.count("#") <= 20


class TestStochasticSizing:
    @given(
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=1e-6, max_value=0.999),
    )
    @settings(max_examples=100, deadline=None)
    def test_sample_size_in_range(self, n, k, epsilon):
        size = sample_size_per_round(n, k, epsilon)
        assert 1 <= size <= n

    @given(
        st.integers(min_value=10, max_value=10_000),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=50, deadline=None)
    def test_smaller_epsilon_larger_sample(self, n, k):
        loose = sample_size_per_round(n, k, 0.5)
        tight = sample_size_per_round(n, k, 0.01)
        assert tight >= loose
