"""Fig. 9: scalability of the approximate greedy on G1..G10.

Paper shape: runtime grows linearly with both the number of nodes and the
number of edges (the family scales both together).
"""

import numpy as np

from repro.experiments.figures import fig9


def test_fig9(benchmark, config, report):
    table = benchmark.pedantic(lambda: fig9(config), rounds=1, iterations=1)
    report(table, "fig9.txt")
    seconds = table.columns.index("seconds")
    nodes = table.columns.index("nodes")
    for algorithm in ("ApproxF1", "ApproxF2"):
        rows = sorted(
            table.filtered(algorithm=algorithm), key=lambda row: row[nodes]
        )
        sizes = np.array([row[nodes] for row in rows], dtype=float)
        times = np.array([row[seconds] for row in rows], dtype=float)
        # Strong positive correlation between size and time = linear-ish
        # scaling (the paper's take-away).
        corr = np.corrcoef(sizes, times)[0, 1]
        assert corr > 0.9, f"{algorithm}: size/time correlation {corr:.3f}"
        # And an order of magnitude more graph should not cost two orders
        # of magnitude more time (rules out super-linear blowups).
        assert times[-1] <= 30 * max(times[0], 1e-3)
