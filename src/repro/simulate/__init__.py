"""Application-level simulators for the paper's motivating scenarios.

Section 1.1 of the paper motivates random-walk domination with three
applications; this subpackage simulates each one end-to-end so that a
placement computed by the solvers in :mod:`repro.core` can be judged by the
*application's* own success measure rather than by the abstract objectives:

* :mod:`repro.simulate.social` — item placement under social browsing
  (Flickr/Facebook reading): sessions are L-length walks, the item is
  discovered when a session reaches a hosting user.
* :mod:`repro.simulate.p2p` — resource placement in unstructured P2P
  overlays: TTL-bounded random-walk search, optionally with several
  parallel walkers per query (the standard k-walker strategy [5]).
* :mod:`repro.simulate.ads` — advertisement placement: repeat browsing
  sessions per user, measuring reach, impressions and average frequency.

All simulators share the walk engine of :mod:`repro.walks.engine`, accept
any node set as the placement, and return small frozen report dataclasses.
"""

from repro.simulate.ads import AdCampaignReport, simulate_ad_campaign
from repro.simulate.p2p import (
    P2PChurnPhase,
    P2PChurnReport,
    P2PSearchReport,
    simulate_p2p_churn,
    simulate_p2p_search,
)
from repro.simulate.social import (
    SocialBrowsingReport,
    simulate_social_browsing,
)

__all__ = [
    "AdCampaignReport",
    "simulate_ad_campaign",
    "P2PChurnPhase",
    "P2PChurnReport",
    "P2PSearchReport",
    "simulate_p2p_churn",
    "simulate_p2p_search",
    "SocialBrowsingReport",
    "simulate_social_browsing",
]
