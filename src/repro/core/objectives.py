"""The two submodular objectives of the paper, as evaluable set functions.

* ``F1(S) = n L - sum_{u in V\\S} h^L_uS``  (Problem 1, Eq. 6) — maximizing
  it minimizes the total generalized hitting time into ``S``.
* ``F2(S) = E[sum_u X^L_uS] = sum_u p^L_uS`` (Problem 2, Eq. 7) — the
  expected number of nodes dominated by ``S``.

Both are nondecreasing submodular with ``F(emptyset) = 0`` (Theorems
3.1/3.2), which is what entitles greedy to its ``1 - 1/e`` guarantee.

Two backends per objective:

* *exact* (:class:`F1Objective`, :class:`F2Objective`) — each evaluation is
  one ``O(m L)`` DP from :mod:`repro.hitting.exact`;
* *sampled* (:class:`SampledF1`, :class:`SampledF2`) — each evaluation runs
  Algorithm 2 with ``R`` fresh walks, the estimator the paper's
  sampling-based greedy uses.

All objectives implement the small :class:`SetObjective` interface consumed
by the generic greedy kernel (:mod:`repro.core.greedy`).
"""

from __future__ import annotations

from typing import Collection, Protocol

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.hitting.exact import hit_probability_vector, hitting_time_vector
from repro.walks.backends import WalkEngine, get_engine
from repro.walks.estimators import estimate_f1, estimate_f2
from repro.walks.rng import resolve_rng

__all__ = [
    "SetObjective",
    "F1Objective",
    "F2Objective",
    "SampledF1",
    "SampledF2",
]


class SetObjective(Protocol):
    """What the greedy kernel needs from an objective."""

    @property
    def num_nodes(self) -> int:
        """Size of the ground set ``V``."""
        ...

    def value(self, targets: Collection[int]) -> float:
        """Objective value ``F(S)``."""
        ...

    def marginal_gain(self, targets: Collection[int], candidate: int) -> float:
        """``F(S + u) - F(S)``; may assume ``candidate not in targets``."""
        ...


class _GraphObjective:
    """Shared plumbing for graph-based objectives.

    ``cache_base`` controls whether :meth:`marginal_gain` may reuse a cached
    ``F(S)`` across candidates of the same round.  Exact objectives are
    deterministic, so caching is a pure speedup (one DP per candidate
    instead of two).  Sampled objectives keep it off: the paper's
    sampling-based greedy evaluates Algorithm 2 twice per marginal gain.
    """

    cache_base = True

    def __init__(self, graph: Graph, length: int):
        if length < 0:
            raise ParameterError("walk length L must be >= 0")
        self._graph = graph
        self._length = length
        self._base_key: frozenset[int] | None = None
        self._base_value = 0.0

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def length(self) -> int:
        return self._length

    @property
    def num_nodes(self) -> int:
        return self._graph.num_nodes

    def marginal_gain(self, targets: Collection[int], candidate: int) -> float:
        key = frozenset(targets)
        if self.cache_base and key == self._base_key:
            base = self._base_value
        else:
            base = self.value(key)
            if self.cache_base:
                self._base_key = key
                self._base_value = base
        return self.value(key | {candidate}) - base

    def value(self, targets: Collection[int]) -> float:  # pragma: no cover
        raise NotImplementedError


class F1Objective(_GraphObjective):
    """Exact Problem 1 objective ``F1(S) = n L - sum_{u notin S} h^L_uS``.

    Values are computed by the Theorem 2.2 DP; one call costs ``O(m L)``.
    """

    name = "F1"

    def value(self, targets: Collection[int]) -> float:
        target_set = set(targets)
        h = hitting_time_vector(self._graph, target_set, self._length)
        outside_sum = float(h.sum())  # h is 0 on S, so summing all is summing V\S
        return self.num_nodes * self._length - outside_sum


class F2Objective(_GraphObjective):
    """Exact Problem 2 objective ``F2(S) = sum_u p^L_uS``.

    Values come from the Theorem 2.3 DP (``p = 1`` on ``S`` itself).
    """

    name = "F2"

    def value(self, targets: Collection[int]) -> float:
        p = hit_probability_vector(self._graph, set(targets), self._length)
        return float(p.sum())


class _SampledObjective(_GraphObjective):
    """Algorithm 2-backed objective: every evaluation draws fresh walks.

    A child RNG stream is derived per evaluation so values are reproducible
    given the constructor seed yet independent across calls, which is how
    the paper's sampling-based greedy treats repeated invocations.
    """

    cache_base = False

    def __init__(
        self,
        graph: Graph,
        length: int,
        num_samples: int,
        seed: "int | np.random.Generator | None" = None,
        engine: "str | WalkEngine | None" = None,
        gain_backend: "str | None" = None,
    ):
        super().__init__(graph, length)
        if num_samples < 1:
            raise ParameterError("num_samples R must be >= 1")
        self._num_samples = num_samples
        self._rng = resolve_rng(seed)
        self._engine = get_engine(engine)
        self._gain_backend = gain_backend
        self.num_estimates = 0

    @property
    def num_samples(self) -> int:
        return self._num_samples


class SampledF1(_SampledObjective):
    """Monte-Carlo ``F1`` (Eq. 9 estimator summed per Algorithm 2)."""

    name = "F1~"

    def value(self, targets: Collection[int]) -> float:
        self.num_estimates += 1
        return estimate_f1(
            self._graph, set(targets), self._length, self._num_samples,
            seed=self._rng, engine=self._engine,
            gain_backend=self._gain_backend,
        )


class SampledF2(_SampledObjective):
    """Monte-Carlo ``F2`` (Eq. 10 estimator summed per Algorithm 2)."""

    name = "F2~"

    def value(self, targets: Collection[int]) -> float:
        self.num_estimates += 1
        return estimate_f2(
            self._graph, set(targets), self._length, self._num_samples,
            seed=self._rng, engine=self._engine,
            gain_backend=self._gain_backend,
        )
