"""Additional graph interchange formats: METIS, JSON, weighted edge lists.

Complements the SNAP edge-list support of :mod:`repro.graphs.io` with the
two formats graph tooling most often asks for, plus a weighted-arc format
for the directed/weighted extension:

* **METIS** — the 1-based adjacency format of the METIS partitioner family:
  a header ``n m`` line followed by one line per node listing its
  neighbors.  Common in the graph-algorithms world and handy for feeding
  our graphs into external partitioning/ordering tools.
* **JSON** — a small self-describing document (``{"num_nodes": ...,
  "edges": [[u, v], ...]}``); convenient for fixtures and web tooling.
* **weighted arc list** — ``u v w`` lines for
  :class:`~repro.graphs.weighted.WeightedDiGraph`, with ``#`` comments,
  mirroring the SNAP convention.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.adjacency import Graph
from repro.graphs.builder import GraphBuilder
from repro.graphs.weighted import WeightedDiGraph

__all__ = [
    "read_metis",
    "write_metis",
    "read_json_graph",
    "write_json_graph",
    "read_weighted_arcs",
    "write_weighted_arcs",
]


def _open_text(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")  # type: ignore[return-value]
    return open(path, mode)


# ----------------------------------------------------------------------
# METIS
# ----------------------------------------------------------------------
def write_metis(graph: Graph, path: "str | Path") -> None:
    """Write ``graph`` in METIS adjacency format (1-based, ``n m`` header)."""
    path = Path(path)
    with _open_text(path, "w") as handle:
        handle.write(f"{graph.num_nodes} {graph.num_edges}\n")
        for u in range(graph.num_nodes):
            row = " ".join(str(int(v) + 1) for v in graph.neighbors(u))
            handle.write(row + "\n")


def read_metis(path: "str | Path") -> Graph:
    """Read a METIS adjacency file into a :class:`Graph`.

    Validates the header against the body: node count must match the number
    of adjacency lines and edge count the number of (deduplicated)
    undirected edges.  Comment lines start with ``%``.
    """
    path = Path(path)
    with _open_text(path, "r") as handle:
        # Keep blank lines: an isolated node's adjacency line is empty.
        # Only comment lines ('%') are dropped.
        lines = [
            line.rstrip("\n").strip()
            for line in handle
            if not line.lstrip().startswith("%")
        ]
    while lines and not lines[0]:
        lines.pop(0)  # leading blank lines are not adjacency rows
    if not lines:
        raise GraphFormatError(f"{path}: empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphFormatError(f"{path}: METIS header needs 'n m'")
    try:
        num_nodes, num_edges = int(header[0]), int(header[1])
    except ValueError as exc:
        raise GraphFormatError(f"{path}: non-integer METIS header") from exc
    body = lines[1:]
    if len(body) != num_nodes:
        raise GraphFormatError(
            f"{path}: header says {num_nodes} nodes, file has {len(body)} "
            "adjacency lines"
        )
    builder = GraphBuilder()
    if num_nodes:
        builder.touch_node(num_nodes - 1)
    for u, line in enumerate(body):
        if not line:
            continue
        for token in line.split():
            try:
                v = int(token) - 1
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}: non-integer neighbor {token!r} on node {u + 1}"
                ) from exc
            if not 0 <= v < num_nodes:
                raise GraphFormatError(
                    f"{path}: neighbor {v + 1} of node {u + 1} out of range"
                )
            if u == v:
                raise GraphFormatError(f"{path}: self-loop on node {u + 1}")
            if u < v:  # each undirected edge appears in both rows
                builder.add_edge(u, v)
    graph = builder.build(num_nodes=num_nodes)
    if graph.num_edges != num_edges:
        raise GraphFormatError(
            f"{path}: header says {num_edges} edges, file has "
            f"{graph.num_edges}"
        )
    return graph


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def write_json_graph(graph: Graph, path: "str | Path") -> None:
    """Write ``{"num_nodes": n, "edges": [[u, v], ...]}`` (sorted edges)."""
    path = Path(path)
    document = {
        "num_nodes": graph.num_nodes,
        "edges": [[int(u), int(v)] for u, v in graph.edges()],
    }
    with _open_text(path, "w") as handle:
        json.dump(document, handle)


def read_json_graph(path: "str | Path") -> Graph:
    """Read a graph written by :func:`write_json_graph`."""
    path = Path(path)
    with _open_text(path, "r") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise GraphFormatError(f"{path}: invalid JSON") from exc
    if not isinstance(document, dict) or "num_nodes" not in document:
        raise GraphFormatError(f"{path}: missing 'num_nodes'")
    try:
        num_nodes = int(document["num_nodes"])
        edges = [(int(u), int(v)) for u, v in document.get("edges", [])]
    except (TypeError, ValueError) as exc:
        raise GraphFormatError(f"{path}: malformed JSON graph") from exc
    builder = GraphBuilder()
    if edges:
        builder.add_edges(np.asarray(edges, dtype=np.int64))
    return builder.build(num_nodes=num_nodes)


# ----------------------------------------------------------------------
# Weighted arcs
# ----------------------------------------------------------------------
def write_weighted_arcs(
    graph: WeightedDiGraph, path: "str | Path", header: str | None = None
) -> None:
    """Write a weighted digraph as ``u v w`` lines with ``#`` comments."""
    path = Path(path)
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# Nodes: {graph.num_nodes} Arcs: {graph.num_arcs}\n")
        for u, v, w in graph.arcs():
            handle.write(f"{u}\t{v}\t{w!r}\n")


def read_weighted_arcs(
    path: "str | Path", num_nodes: int | None = None
) -> WeightedDiGraph:
    """Read ``u v w`` arc lines into a :class:`WeightedDiGraph`."""
    path = Path(path)
    triples: list[tuple[int, int, float]] = []
    with _open_text(path, "r") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 3:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'u v w', got {line!r}"
                )
            try:
                triples.append((int(parts[0]), int(parts[1]), float(parts[2])))
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: malformed arc {parts[:3]}"
                ) from exc
    return WeightedDiGraph.from_edges(triples, num_nodes=num_nodes)
