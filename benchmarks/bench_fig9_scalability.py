"""Fig. 9: scalability of the approximate greedy on G1..G10.

Paper shape: runtime grows linearly with both the number of nodes and the
number of edges (the family scales both together).

The multi-core head-to-head times the Fig. 9 dominant cost — the index
build — on a mid-family graph under the csr and multiproc engines with a
hard bit-identity gate (timings report-only here; the enforced >=2x
multi-core floor lives in ``bench_multiproc.py``).
"""

import os

import numpy as np

from repro.experiments.config import default_config
from repro.experiments.figures import fig9
from repro.graphs.datasets import scalability_graph
from repro.walks.backends import MultiprocWalkEngine
from repro.walks.index import FlatWalkIndex

from benchmarks.conftest import best_of


def test_fig9(benchmark, config, report):
    table = benchmark.pedantic(lambda: fig9(config), rounds=1, iterations=1)
    report(table, "fig9.txt")
    seconds = table.columns.index("seconds")
    nodes = table.columns.index("nodes")
    for algorithm in ("ApproxF1", "ApproxF2"):
        rows = sorted(
            table.filtered(algorithm=algorithm), key=lambda row: row[nodes]
        )
        sizes = np.array([row[nodes] for row in rows], dtype=float)
        times = np.array([row[seconds] for row in rows], dtype=float)
        # Strong positive correlation between size and time = linear-ish
        # scaling (the paper's take-away).
        corr = np.corrcoef(sizes, times)[0, 1]
        assert corr > 0.9, f"{algorithm}: size/time correlation {corr:.3f}"
        # And an order of magnitude more graph should not cost two orders
        # of magnitude more time (rules out super-linear blowups).
        assert times[-1] <= 30 * max(times[0], 1e-3)


def test_fig9_multicore_head_to_head(bench_record):
    """Fig. 9 index build, csr vs multiproc: bit-identical, timed."""
    config = default_config()
    graph = scalability_graph(3, scale=config.scale, seed=config.seed)
    engine = MultiprocWalkEngine(min_parallel_rows=0)
    try:
        engine.batch_walks(graph, np.arange(4096), 2, seed=0)  # warm pool
        csr_index = FlatWalkIndex.build(graph, 6, 20, seed=7, engine="csr")
        multiproc_index = FlatWalkIndex.build(graph, 6, 20, seed=7, engine=engine)
        parity = (
            np.array_equal(csr_index.indptr, multiproc_index.indptr)
            and np.array_equal(csr_index.state, multiproc_index.state)
            and np.array_equal(csr_index.hop, multiproc_index.hop)
        )
        bench_record("fig9.multicore_index_parity", bool(parity))
        assert parity
        csr_s, _ = best_of(
            2, lambda: FlatWalkIndex.build(graph, 6, 20, seed=7, engine="csr")
        )
        multiproc_s, _ = best_of(
            2, lambda: FlatWalkIndex.build(graph, 6, 20, seed=7, engine=engine)
        )
    finally:
        engine.close()
    print(
        f"\nfig9 G3 index build (n={graph.num_nodes}, m={graph.num_edges}, "
        f"R=20, L=6): csr {csr_s:.3f} s, multiproc {multiproc_s:.3f} s "
        f"-> {csr_s / multiproc_s:.2f}x on {os.cpu_count()} core(s)"
    )
    bench_record("fig9.multicore_csr_s", csr_s)
    bench_record("fig9.multicore_multiproc_s", multiproc_s)
