"""Coverage-target selection — the paper's third future-work problem.

Section 5 of the paper proposes the complementary problem: *given
``alpha in [0, 1]``, find the minimum number of targeted nodes that
dominates at least ``alpha * n`` nodes in expectation.*  This is a
submodular cover instance, so the greedy that adds the best Problem-2 node
until the coverage threshold is met carries the classic ``1 + ln(n /
epsilon)``-style guarantee.

Two backends:

* :func:`min_targets_for_coverage` — index-based (Algorithm 6 machinery):
  scalable, coverage measured by the Monte-Carlo estimator.
* :func:`min_targets_for_coverage_exact` — DP-based: exact ``F2`` after
  every addition, for small graphs and for validating the fast path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.core.approx_fast import FastApproxEngine
from repro.core.coverage_kernel import validate_gain_backend
from repro.core.objectives import F2Objective
from repro.core.result import SelectionResult
from repro.walks.index import FlatWalkIndex

__all__ = ["min_targets_for_coverage", "min_targets_for_coverage_exact"]


def _check_alpha(alpha: float) -> None:
    if not 0.0 <= alpha <= 1.0:
        raise ParameterError("alpha must lie in [0, 1]")


def _unreachable(threshold: float, achieved: float, budget: int) -> ParameterError:
    return ParameterError(
        f"coverage target alpha*n = {threshold:.6g} is unreachable: the "
        f"greedy achieved {achieved:.6g} with its full budget of {budget} "
        "selections; lower alpha or raise max_size"
    )


def min_targets_for_coverage(
    graph: Graph,
    alpha: float,
    length: int,
    num_replicates: int = 100,
    seed: "int | np.random.Generator | None" = None,
    index: FlatWalkIndex | None = None,
    max_size: int | None = None,
    gain_backend: "str | None" = None,
    rows_format: "str | None" = None,
) -> SelectionResult:
    """Smallest greedy set whose estimated ``F2`` reaches ``alpha * n``.

    Stops as soon as the index-estimated expected number of dominated nodes
    reaches the threshold (or after ``max_size`` additions, default ``n``).
    The estimated coverage after each addition is ``(sum of raw gains) / R``
    because ``F2(emptyset) = 0`` and gains telescope.
    ``gain_backend="bitset"`` runs the rounds on the coverage kernel
    (:mod:`repro.core.coverage_kernel`) — identical selections;
    ``rows_format`` picks that kernel's coverage-row representation
    (``"dense"``/``"stream"``/``"compressed"``, also identical).

    Raises :class:`ParameterError` when the target is unreachable — the
    selection budget (``max_size``, or every node) is exhausted, or no
    remaining candidate adds coverage, while the estimate is still below
    ``alpha * n`` — instead of silently returning an under-covering set.
    """
    _check_alpha(alpha)
    gain_backend = validate_gain_backend(gain_backend)
    started = time.perf_counter()
    if index is None:
        index = FlatWalkIndex.build(graph, length, num_replicates, seed=seed)
    elif index.num_nodes != graph.num_nodes:
        raise ParameterError("index was built for a different graph size")
    engine = FastApproxEngine(
        index, objective="f2", gain_backend=gain_backend, rows_format=rows_format
    )
    threshold = alpha * graph.num_nodes
    limit = graph.num_nodes if max_size is None else min(max_size, graph.num_nodes)
    covered_raw = 0  # running F2 estimate, times R
    while covered_raw < threshold * index.num_replicates:
        if len(engine.selected) >= limit:
            raise _unreachable(
                threshold, covered_raw / index.num_replicates, limit
            )
        gains = engine.gains_all()
        gains[engine._chosen] = np.iinfo(np.int64).min
        best = int(gains.argmax())
        if gains[best] <= 0:
            raise _unreachable(
                threshold, covered_raw / index.num_replicates, limit
            )
        covered_raw += int(gains[best])
        engine.select(best, gain=float(gains[best]))
    elapsed = time.perf_counter() - started
    achieved = covered_raw / index.num_replicates
    return SelectionResult(
        algorithm="CoverageGreedy",
        selected=tuple(engine.selected),
        gains=tuple(engine.gains),
        elapsed_seconds=elapsed,
        num_gain_evaluations=engine.num_gain_evaluations,
        params={
            "alpha": alpha,
            "L": index.length,
            "R": index.num_replicates,
            "threshold": threshold,
            "achieved_estimate": achieved,
            "objective": "f2",
            "gain_backend": gain_backend,
        },
    )


def min_targets_for_coverage_exact(
    graph: Graph,
    alpha: float,
    length: int,
    max_size: int | None = None,
) -> SelectionResult:
    """DP-backed variant: exact ``F2`` checked after every greedy addition.

    Like :func:`min_targets_for_coverage`, raises :class:`ParameterError`
    when the threshold is unreachable within the selection budget (with a
    small absolute tolerance for float accumulation at ``alpha = 1``).
    """
    _check_alpha(alpha)
    started = time.perf_counter()
    objective = F2Objective(graph, length)
    threshold = alpha * graph.num_nodes
    limit = graph.num_nodes if max_size is None else min(max_size, graph.num_nodes)
    selected: list[int] = []
    gains: list[float] = []
    chosen: set[int] = set()
    value = 0.0
    evaluations = 0
    while value < threshold - 1e-9:
        if len(selected) >= limit:
            raise _unreachable(threshold, value, limit)
        best_node = -1
        best_gain = -float("inf")
        for u in range(graph.num_nodes):
            if u in chosen:
                continue
            gain = objective.marginal_gain(chosen, u)
            evaluations += 1
            if gain > best_gain:
                best_gain = gain
                best_node = u
        if best_gain <= 0:
            raise _unreachable(threshold, value, limit)
        selected.append(best_node)
        gains.append(best_gain)
        chosen.add(best_node)
        value += best_gain
    elapsed = time.perf_counter() - started
    return SelectionResult(
        algorithm="CoverageGreedyExact",
        selected=tuple(selected),
        gains=tuple(gains),
        elapsed_seconds=elapsed,
        num_gain_evaluations=evaluations,
        params={
            "alpha": alpha,
            "L": length,
            "threshold": threshold,
            "achieved_estimate": value,
            "objective": "f2",
        },
    )
