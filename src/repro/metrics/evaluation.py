"""Evaluation metrics of the paper's Section 4.1.

* **AHT** (average hitting time):
  ``M1(S) = sum_{u in V\\S} h^L_uS / |V \\ S|`` — lower is better.
* **EHN** (expected number of hitting nodes):
  ``M2(S) = sum_{u in V} E[X^L_uS]`` — higher is better; nodes of ``S``
  count themselves (they hit at hop 0).

The paper evaluates both metrics with the Algorithm 2 sampler at ``R=500``.
We default to the *exact* DP (``method="exact"``) — it measures the same
quantity with zero variance — and keep the paper's sampler available
(``method="sampled"``) for fidelity and for cross-validation tests.
"""

from __future__ import annotations

from typing import Collection, Mapping, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.hitting.exact import hit_probability_vector, hitting_time_vector
from repro.walks.backends import WalkEngine
from repro.walks.estimators import estimate_objectives

__all__ = [
    "average_hitting_time",
    "expected_hit_nodes",
    "evaluate_selection",
    "compare_placements",
]

#: Sample size the paper uses when estimating the metrics.
PAPER_METRIC_SAMPLES = 500


def _check_method(method: str) -> None:
    if method not in ("exact", "sampled"):
        raise ParameterError('method must be "exact" or "sampled"')


def average_hitting_time(
    graph: Graph,
    targets: Collection[int],
    length: int,
    method: str = "exact",
    num_samples: int = PAPER_METRIC_SAMPLES,
    seed: "int | np.random.Generator | None" = None,
    engine: "str | WalkEngine | None" = None,
) -> float:
    """AHT ``M1(S)``; for ``S`` covering all of ``V`` the metric is 0.

    With an empty ``S`` every hitting time is the truncation value ``L``,
    so ``M1(emptyset) = L`` — the worst possible score.  ``engine`` picks
    the walk backend for ``method="sampled"`` (ignored for the exact DP).
    """
    _check_method(method)
    target_set = set(int(v) for v in targets)
    outside = graph.num_nodes - len(target_set)
    if outside == 0:
        return 0.0
    if method == "exact":
        h = hitting_time_vector(graph, target_set, length)
        return float(h.sum() / outside)  # h vanishes on S
    est = estimate_objectives(
        graph, target_set, length, num_samples, seed=seed, engine=engine
    )
    # Invert the estimator's aggregation: F1 = n L - sum_{V\S} h.
    total_hit = graph.num_nodes * length - est.f1
    return float(total_hit / outside)


def expected_hit_nodes(
    graph: Graph,
    targets: Collection[int],
    length: int,
    method: str = "exact",
    num_samples: int = PAPER_METRIC_SAMPLES,
    seed: "int | np.random.Generator | None" = None,
    engine: "str | WalkEngine | None" = None,
) -> float:
    """EHN ``M2(S) = sum_u p^L_uS`` (members of ``S`` contribute 1 each)."""
    _check_method(method)
    target_set = set(int(v) for v in targets)
    if method == "exact":
        p = hit_probability_vector(graph, target_set, length)
        return float(p.sum())
    return estimate_objectives(
        graph, target_set, length, num_samples, seed=seed, engine=engine
    ).f2


def evaluate_selection(
    graph: Graph,
    targets: Collection[int],
    length: int,
    method: str = "exact",
    num_samples: int = PAPER_METRIC_SAMPLES,
    seed: "int | np.random.Generator | None" = None,
    engine: "str | WalkEngine | None" = None,
) -> dict[str, float]:
    """Both paper metrics for one selection, as ``{"aht": ..., "ehn": ...}``."""
    return {
        "aht": average_hitting_time(
            graph, targets, length, method=method, num_samples=num_samples,
            seed=seed, engine=engine,
        ),
        "ehn": expected_hit_nodes(
            graph, targets, length, method=method, num_samples=num_samples,
            seed=seed, engine=engine,
        ),
    }


def compare_placements(
    graph: Graph,
    placements: "Mapping[str, Sequence[int]]",
    length: int,
    budgets: "Sequence[int] | None" = None,
):
    """Score several placements side by side, the Figs. 6-7 protocol.

    ``placements`` maps a label to a selection *order* (e.g.
    ``result.selected``); each is scored at every budget in ``budgets``
    (default: just its full length) by taking the order's prefix — greedy
    selections are prefixes of each other, so one solver run covers a whole
    budget sweep.  Returns an
    :class:`~repro.experiments.reporting.ExperimentTable` with columns
    ``(placement, k, AHT, EHN)``.
    """
    from repro.experiments.reporting import ExperimentTable

    if not placements:
        raise ParameterError("no placements to compare")
    table = ExperimentTable(
        title=f"Placement comparison (L={length})",
        columns=("placement", "k", "AHT", "EHN"),
    )
    for name, order in placements.items():
        order = [int(v) for v in order]
        ks = list(budgets) if budgets is not None else [len(order)]
        for k in ks:
            if not 0 <= k <= len(order):
                raise ParameterError(
                    f"budget {k} exceeds placement {name!r} of size "
                    f"{len(order)}"
                )
            metrics = evaluate_selection(graph, order[:k], length)
            table.add_row(name, k, metrics["aht"], metrics["ehn"])
    return table
