"""Application-level exhibit: do the solvers help the *applications*?

The paper motivates random-walk domination with three scenarios but
evaluates only the abstract objectives; this bench closes the loop by
replaying each scenario through the simulators in :mod:`repro.simulate`
with placements from ApproxF2, Degree, and random choice.

Expected shape: ApproxF2 ≥ Degree ≫ random on every application KPI
(discovery rate / search success / ad reach), echoing Fig. 7's ordering in
application terms, and greedy placement also minimizes message traffic.
"""

from repro.experiments.extensions import ext_applications


def test_applications(benchmark, config, report):
    table = benchmark.pedantic(
        lambda: ext_applications(config), rounds=1, iterations=1
    )
    report(table, "applications.txt")
    placement = table.columns.index("placement")
    rows = {row[placement]: row for row in table.rows}
    greedy = rows["ApproxF2"]
    random_row = rows["Random"]
    for kpi in ("social discovery", "p2p success", "ad reach"):
        idx = table.columns.index(kpi)
        assert greedy[idx] > random_row[idx], (
            f"{kpi}: greedy {greedy[idx]} should beat random "
            f"{random_row[idx]}"
        )
    msgs = table.columns.index("p2p msgs/query")
    assert greedy[msgs] < random_row[msgs]
