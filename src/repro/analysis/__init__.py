"""Analysis tools around the paper's theory.

* :mod:`repro.analysis.submodularity` — empirical audits of the structural
  properties Theorems 3.1/3.2 prove (nondecreasing, submodular, zero at
  the empty set) for *any* set function, plus approximation-ratio helpers.
* :mod:`repro.analysis.stationary` — the classic (untruncated) random-walk
  quantities the L-length model generalizes: stationary distribution,
  absorbing-chain hitting times, and the truncation gap ``h_uS - h^L_uS``.
"""

from repro.analysis.stationary import (
    absorbing_hitting_time,
    recommend_length,
    stationary_distribution,
    truncation_gap,
)
from repro.analysis.submodularity import (
    SetFunctionAudit,
    approximation_ratio,
    audit_set_function,
)

__all__ = [
    "absorbing_hitting_time",
    "recommend_length",
    "stationary_distribution",
    "truncation_gap",
    "SetFunctionAudit",
    "approximation_ratio",
    "audit_set_function",
]
