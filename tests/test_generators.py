"""Tests for graph generators."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.generators import (
    barabasi_albert_graph,
    chung_lu_graph,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    paper_example_graph,
    path_graph,
    planted_partition_graph,
    power_law_graph,
    ring_graph,
    star_graph,
    two_cluster_graph,
)
from repro.graphs.properties import is_connected


class TestBarabasiAlbert:
    def test_size(self):
        g = barabasi_albert_graph(100, 3, seed=1)
        assert g.num_nodes == 100
        # clique of 4 contributes 6 edges, each of 96 new nodes 3 edges
        assert g.num_edges == 6 + 96 * 3

    def test_connected(self):
        assert is_connected(barabasi_albert_graph(80, 2, seed=2))

    def test_deterministic(self):
        a = barabasi_albert_graph(50, 2, seed=9)
        b = barabasi_albert_graph(50, 2, seed=9)
        assert a == b

    def test_seed_changes_graph(self):
        a = barabasi_albert_graph(50, 2, seed=9)
        b = barabasi_albert_graph(50, 2, seed=10)
        assert a != b

    def test_heavy_tail(self):
        g = barabasi_albert_graph(400, 3, seed=3)
        degrees = g.degrees
        assert degrees.max() > 4 * degrees.mean()

    def test_validation(self):
        with pytest.raises(ParameterError):
            barabasi_albert_graph(5, 0)
        with pytest.raises(ParameterError):
            barabasi_albert_graph(3, 3)


class TestPowerLaw:
    def test_exact_edge_count(self):
        g = power_law_graph(200, 1500, seed=5)
        assert g.num_nodes == 200
        assert g.num_edges == 1500

    def test_exact_edge_count_sparse(self):
        g = power_law_graph(300, 320, seed=6)
        assert g.num_edges == 320

    def test_paper_synthetic_size(self):
        g = power_law_graph(1000, 9956, seed=7)
        assert (g.num_nodes, g.num_edges) == (1000, 9956)

    def test_too_many_edges(self):
        with pytest.raises(ParameterError):
            power_law_graph(4, 10)

    def test_tiny(self):
        with pytest.raises(ParameterError):
            power_law_graph(1, 0)

    def test_deterministic(self):
        assert power_law_graph(100, 400, seed=1) == power_law_graph(
            100, 400, seed=1
        )


class TestErdosRenyi:
    def test_p_zero_and_one(self):
        assert erdos_renyi_graph(10, 0.0, seed=1).num_edges == 0
        assert erdos_renyi_graph(10, 1.0, seed=1).num_edges == 45

    def test_expected_density(self):
        g = erdos_renyi_graph(100, 0.2, seed=3)
        expected = 0.2 * 100 * 99 / 2
        assert abs(g.num_edges - expected) < 0.25 * expected

    def test_invalid_p(self):
        with pytest.raises(ParameterError):
            erdos_renyi_graph(10, 1.5)


class TestChungLu:
    def test_expected_degrees_roughly_respected(self):
        weights = np.full(200, 10.0)
        g = chung_lu_graph(weights, seed=8)
        assert abs(g.degrees.mean() - 10.0) < 2.0

    def test_zero_weights_ok(self):
        g = chung_lu_graph([0.0, 0.0, 5.0, 5.0], seed=1)
        assert g.degree(0) == 0

    def test_all_zero_rejected(self):
        with pytest.raises(ParameterError):
            chung_lu_graph([0.0, 0.0])

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            chung_lu_graph([1.0, -2.0])


class TestDeterministicFamilies:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2

    def test_path_single(self):
        assert path_graph(1).num_edges == 0

    def test_ring(self):
        g = ring_graph(6)
        assert g.num_edges == 6
        assert set(g.degrees.tolist()) == {2}

    def test_ring_minimum(self):
        with pytest.raises(ParameterError):
            ring_graph(2)

    def test_star(self):
        g = star_graph(4)
        assert g.degree(0) == 4
        assert all(g.degree(i) == 1 for i in range(1, 5))

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert set(g.degrees.tolist()) == {5}

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.degree(0) == 2  # corner

    def test_grid_single_row(self):
        g = grid_graph(1, 5)
        assert g.num_edges == 4

    def test_two_cluster(self):
        g = two_cluster_graph(5, bridge_edges=2, seed=1)
        assert g.num_nodes == 10
        # two K5s plus at most 2 bridges
        assert 20 <= g.num_edges <= 22
        assert is_connected(g)


class TestPlantedPartition:
    def test_size(self):
        g = planted_partition_graph(3, 10, 0.5, 0.01, seed=1)
        assert g.num_nodes == 30

    def test_intra_denser_than_inter(self):
        g = planted_partition_graph(4, 40, 0.3, 0.01, seed=2)
        intra = inter = 0
        for u, v in g.edges():
            if u // 40 == v // 40:
                intra += 1
            else:
                inter += 1
        assert intra > 3 * inter

    def test_extreme_probabilities(self):
        isolated = planted_partition_graph(2, 5, 0.0, 0.0, seed=1)
        assert isolated.num_edges == 0
        cliques = planted_partition_graph(2, 4, 1.0, 0.0, seed=1)
        assert cliques.num_edges == 2 * 6

    def test_deterministic(self):
        a = planted_partition_graph(3, 20, 0.2, 0.02, seed=9)
        b = planted_partition_graph(3, 20, 0.2, 0.02, seed=9)
        assert a == b

    def test_validation(self):
        with pytest.raises(ParameterError):
            planted_partition_graph(0, 5, 0.5, 0.1)
        with pytest.raises(ParameterError):
            planted_partition_graph(2, 5, 1.5, 0.1)


class TestPaperExample:
    def test_size(self):
        g = paper_example_graph()
        assert g.num_nodes == 8

    def test_section2_walks_are_valid(self):
        from repro.walks.engine import walk_is_valid

        g = paper_example_graph()
        # the two walks printed in Section 2 (0-based)
        assert walk_is_valid(g, [0, 1, 2, 1, 5])
        assert walk_is_valid(g, [0, 5, 1, 2, 4])

    def test_example31_walks_are_valid(self, example_walks):
        from repro.walks.engine import walk_is_valid

        g = paper_example_graph()
        for walk in example_walks:
            assert walk_is_valid(g, walk), walk
