"""Random-walk machinery: kernels, pluggable backends, RNG discipline,
inverted index, estimators (DESIGN.md §2-§3)."""

from repro.walks.engine import (
    batch_first_hits,
    batch_walks,
    first_hit_time,
    random_walk,
    walk_is_valid,
)
from repro.walks.estimators import (
    ObjectiveEstimates,
    estimate_f1,
    estimate_f2,
    estimate_hit_probability,
    estimate_hitting_time,
    estimate_objectives,
    estimate_pairwise_hitting_time,
)
from repro.walks.index import (
    FlatWalkIndex,
    IndexEntry,
    InvertedIndex,
    walker_major_starts,
)
from repro.walks.alias import (
    AliasSampler,
    weighted_batch_walks,
    weighted_random_walk,
)
from repro.walks.backends import (
    CSRWalkEngine,
    DEFAULT_ENGINE,
    MultiprocWalkEngine,
    NumpyWalkEngine,
    ShardedWalkEngine,
    WalkEngine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.walks.persistence import load_index, save_index
from repro.walks.rng import resolve_rng, spawn_children

__all__ = [
    "batch_first_hits",
    "batch_walks",
    "first_hit_time",
    "random_walk",
    "walk_is_valid",
    "ObjectiveEstimates",
    "estimate_f1",
    "estimate_f2",
    "estimate_hit_probability",
    "estimate_hitting_time",
    "estimate_objectives",
    "estimate_pairwise_hitting_time",
    "FlatWalkIndex",
    "IndexEntry",
    "InvertedIndex",
    "walker_major_starts",
    "load_index",
    "save_index",
    "resolve_rng",
    "spawn_children",
    "AliasSampler",
    "weighted_batch_walks",
    "weighted_random_walk",
    "WalkEngine",
    "NumpyWalkEngine",
    "CSRWalkEngine",
    "ShardedWalkEngine",
    "MultiprocWalkEngine",
    "DEFAULT_ENGINE",
    "available_engines",
    "get_engine",
    "register_engine",
]
