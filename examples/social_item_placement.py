"""Item placement in an online social network (paper Section 1.1).

Scenario: a Facebook-style app developer gives their application to k users
for free.  Friends discover the app by *social browsing* — hopping across
home pages, which the paper models as an L-length random walk.  Question 1
("easily find") is Problem 1; question 2 ("as many users as possible find")
is Problem 2.

This example seeds a Brightkite-like social graph, answers both questions,
and translates the metrics back into product language: average discovery
time and expected audience.

Run:  python examples/social_item_placement.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # A social network replica (Brightkite's shape at 10% size).
    graph = repro.load_dataset("Brightkite", scale=0.10)
    n = graph.num_nodes
    print(f"social network: {n} users, {graph.num_edges} friendships")

    budget = 50          # free installs we can give away
    browse_hops = 6      # how far a user typically browses

    # One walk index answers both product questions.
    index = repro.FlatWalkIndex.build(graph, browse_hops, 100, seed=2024)

    fast_discovery = repro.approx_greedy_fast(
        graph, budget, browse_hops, index=index, objective="f1"
    )
    wide_reach = repro.approx_greedy_fast(
        graph, budget, browse_hops, index=index, objective="f2"
    )
    popular = repro.degree_baseline(graph, budget)  # "just seed celebrities"

    print(f"\nplacement of {budget} free installs "
          f"(browsing horizon {browse_hops} hops):")
    header = f"{'strategy':<22} {'avg discovery hops':>20} {'expected audience':>18}"
    print(header)
    print("-" * len(header))
    for label, result in (
        ("fast-discovery (F1)", fast_discovery),
        ("wide-reach (F2)", wide_reach),
        ("celebrities (Degree)", popular),
    ):
        aht = repro.average_hitting_time(graph, result.selected, browse_hops)
        ehn = repro.expected_hit_nodes(graph, result.selected, browse_hops)
        audience_pct = 100.0 * ehn / n
        print(f"{label:<22} {aht:>20.3f} {ehn:>11.0f} ({audience_pct:4.1f}%)")

    overlap = set(fast_discovery.selected) & set(popular.selected)
    print(f"\noverlap between F1 targets and top-degree users: "
          f"{len(overlap)}/{budget}")
    print("greedy chooses connectors that cover the network, not just hubs.")


if __name__ == "__main__":
    main()
