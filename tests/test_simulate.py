"""Application simulators: social browsing, P2P search, ad campaigns."""

import math

import numpy as np
import pytest

from repro.core.approx_fast import approx_greedy_fast
from repro.errors import ParameterError
from repro.graphs.generators import (
    complete_graph,
    power_law_graph,
    ring_graph,
    star_graph,
)
from repro.graphs.builder import GraphBuilder
from repro.hitting.exact import hit_probability_vector, hitting_time_vector
from repro.simulate import (
    simulate_ad_campaign,
    simulate_p2p_search,
    simulate_social_browsing,
)


def dangling_graph():
    """Nodes 0-1 joined; node 2 isolated."""
    builder = GraphBuilder()
    builder.add_edge(0, 1)
    builder.touch_node(2)
    return builder.build()


class TestSocialBrowsing:
    def test_full_placement_discovers_instantly(self):
        graph = ring_graph(10)
        report = simulate_social_browsing(
            graph, range(10), num_sessions=50, length=4, seed=1
        )
        assert report.discovery_rate == 1.0
        assert report.mean_hops_to_discovery == 0.0
        assert report.mean_truncated_hops == 0.0

    def test_empty_placement_discovers_nothing(self):
        graph = ring_graph(10)
        report = simulate_social_browsing(
            graph, (), num_sessions=50, length=4, seed=1
        )
        assert report.discovery_rate == 0.0
        assert math.isnan(report.mean_hops_to_discovery)
        assert report.mean_truncated_hops == 4.0

    def test_deterministic_under_seed(self):
        graph = power_law_graph(50, 150, seed=2)
        a = simulate_social_browsing(graph, [0, 3], 500, 5, seed=9)
        b = simulate_social_browsing(graph, [0, 3], 500, 5, seed=9)
        assert a == b

    def test_all_mode_covers_every_user(self):
        graph = ring_graph(8)
        report = simulate_social_browsing(
            graph, [0], num_sessions=16, length=3, start="all", seed=4
        )
        assert report.num_sessions == 16  # two passes over 8 users

    def test_all_mode_minimum_one_pass(self):
        graph = ring_graph(8)
        report = simulate_social_browsing(
            graph, [0], num_sessions=3, length=3, start="all", seed=4
        )
        assert report.num_sessions == 8

    def test_degree_mode_runs(self):
        graph = star_graph(10)
        report = simulate_social_browsing(
            graph, [0], num_sessions=200, length=2, start="degree", seed=5
        )
        # Center hosts: every leaf session hits at hop <= 2 on a star and
        # center sessions hit at hop 0.
        assert report.discovery_rate == 1.0

    def test_degree_mode_on_edgeless_graph(self):
        builder = GraphBuilder()
        builder.touch_node(4)
        graph = builder.build()
        report = simulate_social_browsing(
            graph, [0], num_sessions=100, length=3, start="degree", seed=6
        )
        # Falls back to uniform starts; only starts at node 0 discover.
        assert 0.0 < report.discovery_rate < 1.0

    def test_rejects_bad_start_mode(self):
        with pytest.raises(ParameterError):
            simulate_social_browsing(ring_graph(5), [0], 10, 3, start="hubs")

    def test_rejects_bad_params(self):
        graph = ring_graph(5)
        with pytest.raises(ParameterError):
            simulate_social_browsing(graph, [0], 0, 3)
        with pytest.raises(ParameterError):
            simulate_social_browsing(graph, [0], 10, -1)
        with pytest.raises(ParameterError):
            simulate_social_browsing(graph, [9], 10, 3)

    def test_discovery_rate_matches_exact_probability(self):
        """With start='all' the discovery rate estimates mean p^L_uS."""
        graph = power_law_graph(40, 120, seed=7)
        hosts = [0, 5]
        length = 4
        report = simulate_social_browsing(
            graph, hosts, num_sessions=40 * 400, length=length,
            start="all", seed=11,
        )
        exact = float(hit_probability_vector(graph, hosts, length).mean())
        assert report.discovery_rate == pytest.approx(exact, abs=0.02)

    def test_truncated_hops_match_exact_hitting_time(self):
        """mean_truncated_hops estimates mean h^L_uS under start='all'."""
        graph = power_law_graph(40, 120, seed=7)
        hosts = [2, 9]
        length = 5
        report = simulate_social_browsing(
            graph, hosts, num_sessions=40 * 400, length=length,
            start="all", seed=13,
        )
        exact = float(hitting_time_vector(graph, hosts, length).mean())
        assert report.mean_truncated_hops == pytest.approx(exact, abs=0.05)

    def test_greedy_placement_beats_low_degree_placement(self):
        graph = power_law_graph(150, 450, seed=3)
        k, length = 4, 5
        greedy = approx_greedy_fast(
            graph, k, length, num_replicates=50, objective="f2", seed=5
        )
        losers = np.argsort(graph.degrees)[:k]
        good = simulate_social_browsing(
            graph, greedy.selected, 4000, length, seed=19
        )
        bad = simulate_social_browsing(graph, losers, 4000, length, seed=19)
        assert good.discovery_rate > bad.discovery_rate

    def test_dangling_nodes_never_discover_remote_items(self):
        graph = dangling_graph()
        report = simulate_social_browsing(
            graph, [0], num_sessions=3 * 200, length=4, start="all", seed=2
        )
        # Node 2 is isolated: its sessions never discover; nodes 0 and 1
        # always do (0 at hop 0; 1 at hop 1 since its only neighbor is 0).
        assert report.discovery_rate == pytest.approx(2 / 3)


class TestP2PSearch:
    def test_full_replication_always_succeeds(self):
        graph = ring_graph(12)
        report = simulate_p2p_search(
            graph, range(12), num_queries=100, ttl=3, seed=1
        )
        assert report.success_rate == 1.0
        assert report.mean_hops_to_hit == 0.0
        assert report.total_messages == 0

    def test_no_replicas_never_succeeds(self):
        graph = ring_graph(12)
        report = simulate_p2p_search(graph, (), num_queries=100, ttl=3, seed=1)
        assert report.success_rate == 0.0
        assert math.isnan(report.mean_hops_to_hit)
        # Every walker walks its full TTL.
        assert report.total_messages == 100 * 3

    def test_more_walkers_raise_success_rate(self):
        graph = power_law_graph(100, 300, seed=4)
        hosts = [0, 1]
        single = simulate_p2p_search(
            graph, hosts, num_queries=2000, ttl=4, walkers_per_query=1, seed=8
        )
        multi = simulate_p2p_search(
            graph, hosts, num_queries=2000, ttl=4, walkers_per_query=4, seed=8
        )
        assert multi.success_rate > single.success_rate
        assert multi.total_messages > single.total_messages

    def test_explicit_origins(self):
        graph = star_graph(6)
        report = simulate_p2p_search(
            graph, [0], origins=np.array([1, 2, 3]), ttl=2, seed=3
        )
        assert report.num_queries == 3
        # Leaves' first hop is always the center.
        assert report.success_rate == 1.0
        assert report.mean_hops_to_hit == 1.0

    def test_origin_validation(self):
        graph = ring_graph(5)
        with pytest.raises(ParameterError):
            simulate_p2p_search(graph, [0], origins=np.array([9]), ttl=2)
        with pytest.raises(ParameterError):
            simulate_p2p_search(graph, [0], origins=np.array([]), ttl=2)

    def test_rejects_bad_params(self):
        graph = ring_graph(5)
        with pytest.raises(ParameterError):
            simulate_p2p_search(graph, [0], num_queries=0, ttl=2)
        with pytest.raises(ParameterError):
            simulate_p2p_search(graph, [0], num_queries=5, ttl=-1)
        with pytest.raises(ParameterError):
            simulate_p2p_search(graph, [0], num_queries=5, ttl=2,
                                walkers_per_query=0)

    def test_deterministic_under_seed(self):
        graph = power_law_graph(60, 180, seed=5)
        a = simulate_p2p_search(graph, [1, 2], 300, 4, seed=21)
        b = simulate_p2p_search(graph, [1, 2], 300, 4, seed=21)
        assert a == b

    def test_good_placement_cuts_messages(self):
        """Domination-aware placement saves traffic vs a corner placement.

        Topology: two stars joined at their centers — every walk funnels
        through a center, so replicating at the centers (what greedy finds)
        succeeds almost immediately while replicating on two leaves of one
        star leaves the other star's queries walking out their TTL.
        """
        leaves = 25
        edges = [(0, 1)]
        edges += [(0, v) for v in range(2, 2 + leaves)]
        edges += [(1, v) for v in range(2 + leaves, 2 + 2 * leaves)]
        from repro.graphs.adjacency import Graph

        graph = Graph.from_edges(edges)
        k, ttl = 2, 5
        greedy = approx_greedy_fast(
            graph, k, ttl, num_replicates=100, objective="f1", seed=7
        )
        assert set(greedy.selected) == {0, 1}
        lopsided = [2, 3]  # two leaves of the first star
        good = simulate_p2p_search(graph, greedy.selected, 3000, ttl, seed=23)
        bad = simulate_p2p_search(graph, lopsided, 3000, ttl, seed=23)
        assert good.mean_messages_per_query < bad.mean_messages_per_query
        assert good.success_rate > bad.success_rate

    def test_success_rate_matches_exact_probability(self):
        graph = power_law_graph(40, 120, seed=9)
        hosts = [3, 14]
        ttl = 4
        origins = np.repeat(np.arange(40), 300)
        report = simulate_p2p_search(
            graph, hosts, origins=origins, ttl=ttl, seed=29
        )
        exact = float(hit_probability_vector(graph, hosts, ttl).mean())
        assert report.success_rate == pytest.approx(exact, abs=0.02)


class TestAdCampaign:
    def test_hosts_count_as_reached(self):
        graph = ring_graph(10)
        report = simulate_ad_campaign(graph, [0], sessions_per_user=2,
                                      length=0, seed=1)
        # With L=0 nobody moves: only the host sees the ad.
        assert report.reached_users == 1
        assert report.impressions == 2
        assert report.frequency == 2.0

    def test_count_hosts_false_excludes_hosts(self):
        graph = ring_graph(10)
        report = simulate_ad_campaign(
            graph, [0], sessions_per_user=2, length=0, count_hosts=False,
            seed=1,
        )
        assert report.reached_users == 0
        assert report.impressions == 0
        assert math.isnan(report.frequency)

    def test_complete_graph_high_reach(self):
        graph = complete_graph(20)
        report = simulate_ad_campaign(graph, [0], sessions_per_user=8,
                                      length=6, seed=2)
        assert report.reach > 0.9

    def test_reach_monotone_in_sessions(self):
        graph = power_law_graph(80, 240, seed=3)
        few = simulate_ad_campaign(graph, [0, 1], sessions_per_user=1,
                                   length=4, seed=5)
        many = simulate_ad_campaign(graph, [0, 1], sessions_per_user=10,
                                    length=4, seed=5)
        assert many.reach >= few.reach
        assert many.impressions > few.impressions

    def test_rejects_bad_params(self):
        graph = ring_graph(5)
        with pytest.raises(ParameterError):
            simulate_ad_campaign(graph, [0], sessions_per_user=0)
        with pytest.raises(ParameterError):
            simulate_ad_campaign(graph, [0], length=-1)

    def test_deterministic_under_seed(self):
        graph = power_law_graph(50, 150, seed=6)
        a = simulate_ad_campaign(graph, [2, 4], 3, 4, seed=31)
        b = simulate_ad_campaign(graph, [2, 4], 3, 4, seed=31)
        assert a == b

    def test_greedy_hosts_outreach_low_degree_hosts(self):
        graph = power_law_graph(120, 360, seed=8)
        k, length = 5, 5
        greedy = approx_greedy_fast(
            graph, k, length, num_replicates=50, objective="f2", seed=9
        )
        degrees = graph.degrees
        losers = np.argsort(degrees)[:k]  # lowest-degree hosts
        good = simulate_ad_campaign(graph, greedy.selected, 4, length, seed=33)
        bad = simulate_ad_campaign(graph, losers, 4, length, seed=33)
        assert good.reach > bad.reach

    def test_single_session_reach_tracks_f2(self):
        """One session per user, count hosts: reach * n estimates F2(S)."""
        graph = power_law_graph(40, 120, seed=10)
        hosts = [0, 7]
        length = 4
        totals = []
        for seed in range(20):
            report = simulate_ad_campaign(
                graph, hosts, sessions_per_user=1, length=length, seed=seed
            )
            totals.append(report.reached_users)
        exact = float(hit_probability_vector(graph, hosts, length).sum())
        assert np.mean(totals) == pytest.approx(exact, rel=0.1)


class TestWeightedGraphSimulation:
    """Simulators accept the directed/weighted extension's digraph."""

    def _lifted(self, seed=3):
        from repro.graphs.weighted import WeightedDiGraph

        base = power_law_graph(60, 180, seed=seed)
        return base, WeightedDiGraph.from_undirected(base)

    def test_social_on_digraph(self):
        _, weighted = self._lifted()
        report = simulate_social_browsing(weighted, [0, 5], 500, 4, seed=7)
        assert 0.0 <= report.discovery_rate <= 1.0
        assert report.num_hosts == 2

    def test_unit_weights_match_unweighted_statistically(self):
        """A unit-weight lift is the same walk law: rates must agree."""
        base, weighted = self._lifted()
        hosts = [0, 3, 9]
        a = simulate_social_browsing(base, hosts, 60 * 200, 4,
                                     start="all", seed=11)
        b = simulate_social_browsing(weighted, hosts, 60 * 200, 4,
                                     start="all", seed=12)
        assert a.discovery_rate == pytest.approx(b.discovery_rate, abs=0.02)

    def test_p2p_on_digraph(self):
        _, weighted = self._lifted()
        report = simulate_p2p_search(weighted, [1], 400, 4,
                                     walkers_per_query=2, seed=9)
        assert report.num_queries == 400
        assert 0.0 <= report.success_rate <= 1.0

    def test_ads_on_digraph(self):
        _, weighted = self._lifted()
        report = simulate_ad_campaign(weighted, [2], 2, 3, seed=13)
        assert report.num_users == 60
        assert report.reached_users >= 1

    def test_degree_start_uses_out_degrees(self):
        from repro.graphs.weighted import WeightedDiGraph

        # Node 0 has all the out-weight; sessions must still be valid.
        weighted = WeightedDiGraph.from_edges(
            [(0, 1, 5.0), (0, 2, 5.0), (1, 0, 1.0)], num_nodes=3
        )
        report = simulate_social_browsing(
            weighted, [1], 300, 3, start="degree", seed=15
        )
        assert 0.0 <= report.discovery_rate <= 1.0

    def test_asymmetric_trust_changes_outcome(self):
        """Directionality matters: all arcs point toward node 0, so a
        placement on 0 dominates everything, while any leaf placement
        dominates almost nothing."""
        from repro.graphs.weighted import WeightedDiGraph

        arcs = [(u, 0, 1.0) for u in range(1, 10)]
        weighted = WeightedDiGraph.from_edges(arcs, num_nodes=10)
        into_hub = simulate_social_browsing(weighted, [0], 10 * 100, 3,
                                            start="all", seed=17)
        into_leaf = simulate_social_browsing(weighted, [5], 10 * 100, 3,
                                             start="all", seed=17)
        assert into_hub.discovery_rate == 1.0  # every walk reaches the hub
        assert into_leaf.discovery_rate < 0.3
