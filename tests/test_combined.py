"""Tests for the combined-objective extension (future-work problem 1)."""

import itertools

import pytest

from repro.errors import ParameterError
from repro.graphs.generators import paper_example_graph
from repro.walks.index import FlatWalkIndex
from repro.core.approx_fast import approx_greedy_fast
from repro.core.combined import (
    CombinedObjective,
    approx_combined,
    balanced_weights,
    combined_greedy,
)
from repro.core.dp_greedy import dpf1, dpf2


class TestCombinedObjective:
    def test_reduces_to_f1(self, small_power_law):
        from repro.core.objectives import F1Objective

        combined = CombinedObjective(small_power_law, 4, 1.0, 0.0)
        f1 = F1Objective(small_power_law, 4)
        assert combined.value({1, 2}) == pytest.approx(f1.value({1, 2}))

    def test_reduces_to_f2(self, small_power_law):
        from repro.core.objectives import F2Objective

        combined = CombinedObjective(small_power_law, 4, 0.0, 1.0)
        f2 = F2Objective(small_power_law, 4)
        assert combined.value({1, 2}) == pytest.approx(f2.value({1, 2}))

    def test_linearity(self, small_power_law):
        from repro.core.objectives import F1Objective, F2Objective

        combined = CombinedObjective(small_power_law, 4, 0.3, 0.7)
        expected = 0.3 * F1Objective(small_power_law, 4).value({5}) + (
            0.7 * F2Objective(small_power_law, 4).value({5})
        )
        assert combined.value({5}) == pytest.approx(expected)

    def test_submodular(self):
        # Positive combinations preserve submodularity (paper Section 5).
        g = paper_example_graph()
        combined = CombinedObjective(g, 3, 0.5, 0.5)
        nodes = range(8)
        for small in itertools.combinations(nodes, 1):
            small = set(small)
            for extra in nodes:
                if extra in small:
                    continue
                big = small | {extra}
                for u in nodes:
                    if u in big:
                        continue
                    assert combined.marginal_gain(small, u) >= (
                        combined.marginal_gain(big, u) - 1e-9
                    )

    def test_weights_validated(self, small_power_law):
        with pytest.raises(ParameterError):
            CombinedObjective(small_power_law, 3, -1.0, 1.0)
        with pytest.raises(ParameterError):
            CombinedObjective(small_power_law, 3, 0.0, 0.0)


class TestBalancedWeights:
    def test_extremes(self):
        assert balanced_weights(1.0, 5) == (0.2, 0.0)
        assert balanced_weights(0.0, 5) == (0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            balanced_weights(1.5, 5)
        with pytest.raises(ParameterError):
            balanced_weights(0.5, 0)


class TestCombinedGreedy:
    def test_pure_f1_matches_dpf1(self, small_power_law):
        combined = combined_greedy(small_power_law, 4, 4, 1.0, 0.0)
        reference = dpf1(small_power_law, 4, 4)
        assert combined.selected == reference.selected

    def test_pure_f2_matches_dpf2(self, small_power_law):
        combined = combined_greedy(small_power_law, 4, 4, 0.0, 1.0)
        reference = dpf2(small_power_law, 4, 4)
        assert combined.selected == reference.selected

    def test_params_recorded(self, small_power_law):
        result = combined_greedy(small_power_law, 2, 3, 0.4, 0.6)
        assert result.params["w1"] == 0.4
        assert result.params["w2"] == 0.6


class TestApproxCombined:
    def test_pure_weights_match_single_objective(self, small_power_law):
        index = FlatWalkIndex.build(small_power_law, 4, 10, seed=9)
        combined = approx_combined(
            small_power_law, 5, 4, 1.0, 0.0, index=index
        )
        single = approx_greedy_fast(
            small_power_law, 5, 4, index=index, objective="f1", lazy=False
        )
        assert combined.selected == single.selected

    def test_mixture_runs(self, small_power_law):
        result = approx_combined(
            small_power_law, 4, 4, 0.2, 0.8, num_replicates=10, seed=3
        )
        assert len(set(result.selected)) == 4

    def test_weights_validated(self, small_power_law):
        with pytest.raises(ParameterError):
            approx_combined(small_power_law, 2, 3, 0.0, 0.0)

    def test_k_validated(self, small_power_law):
        with pytest.raises(ParameterError):
            approx_combined(
                small_power_law, small_power_law.num_nodes + 1, 3, 1.0, 1.0
            )
