"""``repro.obs`` — unified telemetry: metrics, spans, exposition.

One process-wide switch (DESIGN.md §14).  Disabled by default: the
module-level registry is :data:`~repro.obs.registry.NULL_REGISTRY` and the
tracer is :data:`~repro.obs.tracing.NULL_TRACER`, so every instrumentation
site in the solver/walk/serve/persistence layers costs an attribute lookup
and a no-op call — the overhead benchmark
(``benchmarks/bench_observability.py``) holds the *enabled* path to ≤5%
on an end-to-end solve, and the disabled path is far below that.

Enable with :func:`configure` (or the CLI's ``--telemetry`` flag)::

    from repro import obs
    obs.configure()
    with obs.span("solve.greedy", k=8):
        ...
    obs.inc("solver_runs_total")
    print(obs.render_prometheus())

Instrumented code never imports metric classes; it goes through the
helpers here (:func:`inc`, :func:`observe`, :func:`set_gauge`,
:func:`span`) or grabs a metric handle via :func:`registry`.  Hot loops
should accumulate plain ints and flush once per operation under
:func:`enabled` — see ``core/approx_fast.py`` for the pattern.

Worker processes each see the default-disabled module state; the
multiproc walk path opts workers in per task (``task["telemetry"]``) and
ships worker-local snapshots back for :func:`absorb` (registry module
docstring).
"""

from __future__ import annotations

from repro.obs.exposition import render_prometheus as _render
from repro.obs.registry import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
)
from repro.obs.tracing import (
    DEFAULT_TRACE_BUFFER,
    NULL_TRACER,
    NullTracer,
    SpanTracer,
)

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "NullTracer",
    "SpanTracer",
    "absorb",
    "configure",
    "disable",
    "enabled",
    "export_chrome_trace",
    "inc",
    "observe",
    "registry",
    "render_prometheus",
    "reset",
    "set_gauge",
    "snapshot",
    "span",
    "tracer",
    "write_chrome_trace",
]

_registry: MetricsRegistry = NULL_REGISTRY
_tracer: SpanTracer = NULL_TRACER
_enabled: bool = False


def configure(
    metrics: bool = True,
    tracing: bool = True,
    trace_buffer: int = DEFAULT_TRACE_BUFFER,
) -> None:
    """Turn telemetry on for this process (idempotent; live metrics are
    kept when already enabled)."""
    global _registry, _tracer, _enabled
    if metrics and isinstance(_registry, NullRegistry):
        _registry = MetricsRegistry()
    if tracing and isinstance(_tracer, NullTracer):
        _tracer = SpanTracer(buffer_size=trace_buffer)
    _enabled = not isinstance(_registry, NullRegistry) or not isinstance(
        _tracer, NullTracer
    )


def disable() -> None:
    """Back to the zero-cost defaults; recorded data is dropped."""
    global _registry, _tracer, _enabled
    _registry = NULL_REGISTRY
    _tracer = NULL_TRACER
    _enabled = False


def enabled() -> bool:
    return _enabled


def registry() -> MetricsRegistry:
    """The active registry (the shared null registry when disabled)."""
    return _registry


def tracer() -> SpanTracer:
    return _tracer


def reset() -> None:
    """Clear recorded metrics and spans without toggling the switch."""
    if _registry is not NULL_REGISTRY:
        _registry.reset()
    if _tracer is not NULL_TRACER:
        _tracer.reset()


# -- cheap recording helpers (no-ops when disabled) --------------------
def inc(name: str, amount: float = 1.0, help: str = "", **labels) -> None:
    _registry.counter(name, labels or None, help=help).inc(amount)


def set_gauge(name: str, value: float, help: str = "", **labels) -> None:
    _registry.gauge(name, labels or None, help=help).set(value)


def observe(
    name: str,
    value: float,
    buckets=DEFAULT_LATENCY_BUCKETS,
    help: str = "",
    **labels,
) -> None:
    _registry.histogram(name, labels or None, buckets=buckets, help=help).observe(
        value
    )


def span(name: str, **args):
    return _tracer.span(name, **args)


# -- export ------------------------------------------------------------
def snapshot() -> MetricsSnapshot:
    return _registry.snapshot()


def absorb(payload) -> None:
    """Fold a worker snapshot (``MetricsSnapshot`` or its dict form) into
    the process registry; dropped when disabled."""
    _registry.absorb(payload)


def render_prometheus(*extra: MetricsSnapshot) -> str:
    """Prometheus text of the process registry merged with ``extra``."""
    return _render(_registry.snapshot(), *extra)


def export_chrome_trace() -> dict:
    return _tracer.export_chrome_trace()


def write_chrome_trace(path) -> None:
    _tracer.write_chrome_trace(path)
