"""repro — Random-walk domination in large graphs (ICDE 2014), reproduced.

Select ``k`` target nodes in a graph so that L-length random walks from the
remaining nodes hit them quickly (Problem 1) or so that as many nodes as
possible hit them at all (Problem 2).

Quickstart::

    import repro

    graph = repro.power_law_graph(1_000, 10_000, seed=7)
    result = repro.approx_greedy_fast(
        graph, k=20, length=6, num_replicates=100, objective="f2", seed=7
    )
    print(result.selected)
    print(repro.expected_hit_nodes(graph, result.selected, length=6))

See README.md for install and the CLI reference, DESIGN.md §2 for the full
system inventory (and §3 for the pluggable walk-engine backends), and
EXPERIMENTS.md for how each benchmark script maps to the paper's tables and
figures.
"""

from repro.errors import DatasetError, GraphFormatError, ParameterError, RwdomError
from repro.version import __version__

# Substrate
from repro.graphs import (
    Graph,
    WeightedDiGraph,
    GraphBuilder,
    DatasetSpec,
    TABLE2_DATASETS,
    barabasi_albert_graph,
    bfs_distances,
    chung_lu_graph,
    complete_graph,
    connected_components,
    dataset_names,
    dataset_spec,
    degree_summary,
    density,
    erdos_renyi_graph,
    grid_graph,
    is_connected,
    largest_component,
    load_dataset,
    paper_example_graph,
    paper_synthetic_graph,
    path_graph,
    power_law_graph,
    read_edge_list,
    ring_graph,
    scalability_graph,
    star_graph,
    two_cluster_graph,
    write_edge_list,
)
from repro.hitting import (
    hit_probability_horizons,
    hit_probability_vector,
    hitting_time_horizons,
    hitting_time_matrix,
    hitting_time_vector,
    pairwise_hitting_time,
    sample_size_f1,
    sample_size_f2,
    transition_matrix,
)
from repro.walks import (
    FlatWalkIndex,
    InvertedIndex,
    WalkEngine,
    available_engines,
    batch_walks,
    estimate_f1,
    estimate_f2,
    estimate_hit_probability,
    estimate_hitting_time,
    estimate_objectives,
    get_engine,
    random_walk,
    register_engine,
)

# Core contribution
from repro.core import (
    CoverageKernel,
    F1Objective,
    F2Objective,
    FastApproxEngine,
    GAIN_BACKENDS,
    Problem1,
    Problem2,
    SampledF1,
    SampledF2,
    SelectionResult,
    SOLVER_NAMES,
    approx_combined,
    approx_greedy,
    approx_greedy_fast,
    balanced_weights,
    combined_greedy,
    degree_baseline,
    dominate_baseline,
    dpf1,
    dpf2,
    greedy_select,
    min_targets_for_coverage,
    min_targets_for_coverage_exact,
    random_baseline,
    sampling_greedy_f1,
    sampling_greedy_f2,
    solve,
    WeightedF1Objective,
    WeightedF2Objective,
    build_weighted_index,
    weighted_approx_greedy,
    weighted_dpf1,
    weighted_dpf2,
    EdgeWalkIndex,
    edge_domination_greedy,
    estimate_f3,
    expected_edges_traversed,
    optimal_select,
    optimal_value,
    stochastic_approx_greedy,
    stochastic_greedy_select,
)

# Metrics
from repro.metrics import (
    average_hitting_time,
    compare_placements,
    evaluate_selection,
    expected_hit_nodes,
)

__all__ = [
    "__version__",
    # errors
    "RwdomError",
    "ParameterError",
    "GraphFormatError",
    "DatasetError",
    # graphs
    "Graph",
    "WeightedDiGraph",
    "GraphBuilder",
    "DatasetSpec",
    "TABLE2_DATASETS",
    "barabasi_albert_graph",
    "bfs_distances",
    "chung_lu_graph",
    "complete_graph",
    "connected_components",
    "dataset_names",
    "dataset_spec",
    "degree_summary",
    "density",
    "erdos_renyi_graph",
    "grid_graph",
    "is_connected",
    "largest_component",
    "load_dataset",
    "paper_example_graph",
    "paper_synthetic_graph",
    "path_graph",
    "power_law_graph",
    "read_edge_list",
    "ring_graph",
    "scalability_graph",
    "star_graph",
    "two_cluster_graph",
    "write_edge_list",
    # hitting
    "hit_probability_horizons",
    "hit_probability_vector",
    "hitting_time_horizons",
    "hitting_time_matrix",
    "hitting_time_vector",
    "pairwise_hitting_time",
    "sample_size_f1",
    "sample_size_f2",
    "transition_matrix",
    # walks
    "FlatWalkIndex",
    "InvertedIndex",
    "WalkEngine",
    "available_engines",
    "get_engine",
    "register_engine",
    "batch_walks",
    "estimate_f1",
    "estimate_f2",
    "estimate_hit_probability",
    "estimate_hitting_time",
    "estimate_objectives",
    "random_walk",
    # core
    "CoverageKernel",
    "F1Objective",
    "F2Objective",
    "FastApproxEngine",
    "GAIN_BACKENDS",
    "Problem1",
    "Problem2",
    "SampledF1",
    "SampledF2",
    "SelectionResult",
    "SOLVER_NAMES",
    "approx_combined",
    "approx_greedy",
    "approx_greedy_fast",
    "balanced_weights",
    "combined_greedy",
    "degree_baseline",
    "dominate_baseline",
    "dpf1",
    "dpf2",
    "greedy_select",
    "min_targets_for_coverage",
    "min_targets_for_coverage_exact",
    "random_baseline",
    "sampling_greedy_f1",
    "sampling_greedy_f2",
    "solve",
    "WeightedF1Objective",
    "WeightedF2Objective",
    "build_weighted_index",
    "weighted_approx_greedy",
    "weighted_dpf1",
    "weighted_dpf2",
    "EdgeWalkIndex",
    "edge_domination_greedy",
    "estimate_f3",
    "expected_edges_traversed",
    "optimal_select",
    "optimal_value",
    "stochastic_approx_greedy",
    "stochastic_greedy_select",
    # metrics
    "average_hitting_time",
    "compare_placements",
    "evaluate_selection",
    "expected_hit_nodes",
]
