"""Resource-lifecycle tests for the multiproc walk engine.

Parity is covered by tests/test_walk_backends.py and the differential
harness (tests/test_differential.py); this suite pins the *operational*
guarantees of DESIGN.md §11:

* shared-memory segments are placed once per graph and cached;
* ``close()`` unlinks every segment and is idempotent;
* **every** exception path — a worker crash mid-shard, a broken pool, a
  failure while setting the fan-out up — unlinks the segments before the
  exception propagates (the can't-leak regression tests);
* per-call segments (the first-hit target mask) never outlive their call;
* a failed fan-out leaves the caller's generator position untouched, so
  the stream discipline survives crashes and retries;
* dropping the engine (finalizer) releases everything too.
"""

import gc
import operator

import numpy as np
import pytest
from multiprocessing import shared_memory

import repro.walks.backends as backends_mod
from repro.errors import ParameterError
from repro.graphs.generators import power_law_graph
from repro.walks.backends import MultiprocWalkEngine, get_engine
from repro.walks.parallel import SharedArrayPack


def _segment_exists(name: str) -> bool:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


def _segment_names(engine: MultiprocWalkEngine) -> list[str]:
    names = []
    for key in ("packs", "weighted_packs"):
        for _graph, pack in engine._resources[key].values():
            names.extend(pack.segment_names)
    return names


@pytest.fixture(scope="module")
def pooled_engine():
    """One pool-forced engine for the whole module (spawn startup is the
    expensive part; the tests only need it paid once)."""
    engine = MultiprocWalkEngine(
        num_procs=2, shard_rows=128, min_parallel_rows=0
    )
    yield engine
    engine.close()


@pytest.fixture
def graph():
    return power_law_graph(80, 320, seed=2)


class TestSharedMemoryLifecycle:
    def test_pool_path_bit_identical(self, pooled_engine, graph):
        starts = np.arange(graph.num_nodes).repeat(4)
        expected = get_engine("numpy").batch_walks(graph, starts, 5, seed=31)
        assert np.array_equal(
            pooled_engine.batch_walks(graph, starts, 5, seed=31), expected
        )

    def test_segments_cached_per_graph(self, pooled_engine, graph):
        starts = np.arange(graph.num_nodes).repeat(2)
        pooled_engine.batch_walks(graph, starts, 3, seed=1)
        names = _segment_names(pooled_engine)
        assert names and all(_segment_exists(n) for n in names)
        pooled_engine.batch_walks(graph, starts, 4, seed=2)
        assert set(_segment_names(pooled_engine)) >= set(names)

    def test_close_unlinks_and_engine_stays_usable(self, graph):
        engine = MultiprocWalkEngine(
            num_procs=1, shard_rows=64, min_parallel_rows=0
        )
        starts = np.arange(graph.num_nodes).repeat(2)
        a = engine.batch_walks(graph, starts, 4, seed=7)
        names = _segment_names(engine)
        assert names
        engine.close()
        engine.close()  # idempotent
        assert all(not _segment_exists(n) for n in names)
        # The engine republishes segments and a fresh pool on next use.
        b = engine.batch_walks(graph, starts, 4, seed=7)
        assert np.array_equal(a, b)
        engine.close()

    def test_small_batches_never_spin_up_a_pool(self, graph):
        engine = MultiprocWalkEngine(num_procs=1, min_parallel_rows=4096)
        walks = engine.batch_walks(graph, np.arange(10), 4, seed=5)
        assert np.array_equal(
            walks, get_engine("numpy").batch_walks(graph, np.arange(10), 4, seed=5)
        )
        assert engine._resources["pool"] is None
        assert not _segment_names(engine)

    def test_mask_segments_do_not_outlive_their_call(
        self, pooled_engine, graph, monkeypatch
    ):
        created = []

        class RecordingPack(SharedArrayPack):
            def __init__(self, arrays):
                self.keys = tuple(arrays)
                super().__init__(arrays)
                created.append(self)

        monkeypatch.setattr(backends_mod, "SharedArrayPack", RecordingPack)
        starts = np.arange(graph.num_nodes).repeat(2)
        mask = np.zeros(graph.num_nodes, dtype=bool)
        mask[::5] = True
        hits = pooled_engine.walk_first_hits(graph, starts, 5, mask, seed=3)
        assert np.array_equal(
            hits,
            get_engine("numpy").walk_first_hits(graph, starts, 5, mask, seed=3),
        )
        mask_packs = [p for p in created if "mask" in p.keys]
        assert mask_packs, "the first-hit path must ship the mask via shm"
        for pack in mask_packs:
            assert not pack.segment_names  # closed in the call's finally

    def test_finalizer_releases_on_collection(self, graph):
        engine = MultiprocWalkEngine(
            num_procs=1, shard_rows=64, min_parallel_rows=0
        )
        engine.batch_walks(graph, np.arange(graph.num_nodes).repeat(2), 3, seed=4)
        names = _segment_names(engine)
        assert names
        del engine
        gc.collect()
        assert all(not _segment_exists(n) for n in names)


class TestCrashPaths:
    def test_worker_exception_unlinks_segments(self, graph, monkeypatch):
        engine = MultiprocWalkEngine(
            num_procs=1, shard_rows=64, min_parallel_rows=0
        )
        starts = np.arange(graph.num_nodes).repeat(2)
        engine.batch_walks(graph, starts, 4, seed=11)  # warm pool + segments
        names = _segment_names(engine)
        assert names
        # Make every worker task die mid-shard: floordiv is picklable by
        # qualified name and raises in the worker on the task dict.
        monkeypatch.setattr(backends_mod, "run_task", operator.floordiv)
        with pytest.raises(TypeError):
            engine.batch_walks(graph, starts, 4, seed=11)
        assert all(not _segment_exists(n) for n in names)
        assert engine._resources["pool"] is None
        monkeypatch.undo()
        # Recovery: the next call rebuilds everything and still agrees.
        walks = engine.batch_walks(graph, starts, 4, seed=11)
        assert np.array_equal(
            walks, get_engine("numpy").batch_walks(graph, starts, 4, seed=11)
        )
        engine.close()

    def test_failed_fanout_preserves_caller_stream(self, graph, monkeypatch):
        engine = MultiprocWalkEngine(
            num_procs=1, shard_rows=64, min_parallel_rows=0
        )
        starts = np.arange(graph.num_nodes).repeat(2)
        engine.batch_walks(graph, starts, 3, seed=0)  # warm
        rng = np.random.default_rng(8)
        twin = np.random.default_rng(8)

        def boom():
            raise RuntimeError("simulated pool breakage")

        monkeypatch.setattr(engine, "_ensure_pool", boom)
        with pytest.raises(RuntimeError):
            engine.batch_walks(graph, starts, 3, seed=rng)
        monkeypatch.undo()
        # The failed call consumed nothing: the caller's stream is where
        # it started, so a retry reproduces exactly what a non-failing
        # call would have produced.
        assert rng.bit_generator.state == twin.bit_generator.state
        retry = engine.batch_walks(graph, starts, 3, seed=rng)
        assert np.array_equal(
            retry, get_engine("numpy").batch_walks(graph, starts, 3, seed=twin)
        )
        engine.close()

    def test_constructor_validation(self):
        with pytest.raises(ParameterError):
            MultiprocWalkEngine(num_procs=0)
        with pytest.raises(ParameterError):
            MultiprocWalkEngine(shard_rows=0)
        with pytest.raises(ParameterError):
            MultiprocWalkEngine(cache_size=0)


class TestRecordStreaming:
    def test_walk_records_matches_default_extraction(self, pooled_engine, graph):
        starts = np.arange(graph.num_nodes).repeat(3)
        states = (
            np.arange(starts.size, dtype=np.int64) % 3
        ) * graph.num_nodes + starts
        ref = get_engine("numpy").walk_records(
            graph, starts, 5, states, seed=21, chunk_rows=100
        )
        got = pooled_engine.walk_records(
            graph, starts, 5, states, seed=21, chunk_rows=100
        )
        span = graph.num_nodes * 3 * 6

        def keys(records):
            hits, record_states, hops = records
            return np.sort(hits * span * 6 + record_states * 6 + hops)

        assert np.array_equal(keys(ref), keys(got))

    def test_states_must_align(self, pooled_engine, graph):
        with pytest.raises(ParameterError, match="align"):
            pooled_engine.walk_records(
                graph, np.arange(10), 3, np.arange(4), seed=1
            )


class TestWorkerAttachCache:
    def test_attach_cache_is_bounded_and_closes_evictions(self):
        # Workers that see many graphs over a pool's lifetime must not
        # pin every segment forever: evicted attachments are closed so
        # parent-unlinked packs can actually free their memory.
        from repro.walks import parallel

        packs = [
            SharedArrayPack({"data": np.arange(4, dtype=np.int64) + i})
            for i in range(parallel._ATTACH_CACHE_SIZE + 5)
        ]
        try:
            names = [pack.specs["data"][0] for pack in packs]
            for pack in packs:
                view = parallel.attach_array(pack.specs["data"])
                assert view.dtype == np.int64
            assert len(parallel._ATTACHED) <= parallel._ATTACH_CACHE_SIZE
            # The most recently attached names survive; the oldest were
            # closed and dropped.
            survivors = set(parallel._ATTACHED)
            assert names[-1] in survivors
            assert names[0] not in survivors
            # Re-attaching an evicted segment works while it still exists.
            again = parallel.attach_array(packs[0].specs["data"])
            assert int(again[0]) == 0
        finally:
            while parallel._ATTACHED:
                _, (segment, _) = parallel._ATTACHED.popitem()
                segment.close()
            for pack in packs:
                pack.close()
