"""Tests for the bit-packed coverage kernel (``gain_backend="bitset"``).

The binding contract (DESIGN.md §8): the bitset kernel is *bit-identical*
to the entry-list gain path — same gain values, same selections, same
``D`` state — on every driver that accepts ``gain_backend``, and its packed
popcount coverage always agrees with the paper-faithful
:class:`~repro.walks.index.InvertedIndex` oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.graphs.generators import paper_example_graph, power_law_graph
from repro.walks.engine import batch_walks
from repro.walks.estimators import estimate_objectives
from repro.walks.index import FlatWalkIndex, InvertedIndex, walker_major_starts
from repro.core.approx_fast import FastApproxEngine, approx_greedy_fast
from repro.core.combined import approx_combined
from repro.core.coverage import min_targets_for_coverage
from repro.core.coverage_kernel import (
    GAIN_BACKENDS,
    CoverageKernel,
    pack_states,
    popcount,
    validate_gain_backend,
)
from repro.core.sampling_greedy import sampling_greedy_f2
from repro.core.stochastic import stochastic_approx_greedy
from tests.conftest import EXAMPLE31_ROUND1_GAINS


# ----------------------------------------------------------------------
# Packing primitives
# ----------------------------------------------------------------------
class TestPacking:
    def test_pack_states_roundtrip(self):
        states = np.asarray([0, 1, 63, 64, 65, 199])
        packed = pack_states(states, 200)
        assert packed.size == 4  # ceil(200 / 64)
        assert popcount(packed) == states.size
        for s in range(200):
            bit = (int(packed[s >> 6]) >> (s & 63)) & 1
            assert bit == int(s in set(states.tolist()))

    def test_pack_states_empty_and_bounds(self):
        assert popcount(pack_states(np.asarray([], dtype=np.int64), 10)) == 0
        with pytest.raises(ParameterError):
            pack_states(np.asarray([10]), 10)

    def test_validate_gain_backend(self):
        assert validate_gain_backend(None) == "entries"
        for name in GAIN_BACKENDS:
            assert validate_gain_backend(name) == name
        with pytest.raises(ParameterError):
            validate_gain_backend("gpu")

    def test_packed_rows_padding_bits_zero(self, small_power_law):
        index = FlatWalkIndex.build(small_power_law, 4, 3, seed=2)
        rows = index.packed_hit_rows()
        pad = 64 * rows.shape[1] - index.num_states
        if pad:
            tail = rows[:, -1] >> np.uint64(64 - pad)
            assert not tail.any()

    def test_packed_rows_memory_guard(self, small_power_law):
        index = FlatWalkIndex.build(small_power_law, 4, 3, seed=2)
        with pytest.raises(ParameterError, match="max_bytes"):
            index.packed_hit_rows(max_bytes=8)

    def test_dense_hop_matrix_guard(self, small_power_law):
        index = FlatWalkIndex.build(small_power_law, 4, 3, seed=2)
        with pytest.raises(ParameterError, match="max_bytes"):
            index.dense_hop_matrix(max_bytes=8)


# ----------------------------------------------------------------------
# Example 3.1 — the paper's own walks
# ----------------------------------------------------------------------
class TestExample31:
    def test_f1_gains_match_paper(self, example_walks):
        flat = FlatWalkIndex.from_walks(example_walks, 8, 1)
        kernel = CoverageKernel.from_index(flat, "f1")
        assert kernel.gains_all().tolist() == EXAMPLE31_ROUND1_GAINS

    @pytest.mark.parametrize("objective", ["f1", "f2"])
    def test_gains_match_entry_backend(self, example_walks, objective):
        flat = FlatWalkIndex.from_walks(example_walks, 8, 1)
        entry = FastApproxEngine(flat, objective)
        kernel = CoverageKernel.from_index(flat, objective)
        assert np.array_equal(entry.gains_all(), kernel.gains_all())

    def test_selects_v2_v7(self, example_walks):
        graph = paper_example_graph()
        flat = FlatWalkIndex.from_walks(example_walks, 8, 1)
        result = approx_greedy_fast(
            graph, 2, 2, index=flat, objective="f1", gain_backend="bitset"
        )
        assert result.selected == (1, 6)
        assert result.params["gain_backend"] == "bitset"


# ----------------------------------------------------------------------
# Entry-for-entry parity across walk engines and drivers
# ----------------------------------------------------------------------
class TestBackendParity:
    @pytest.mark.parametrize("walk_engine", ["numpy", "csr", "sharded"])
    @pytest.mark.parametrize("objective", ["f1", "f2"])
    def test_greedy_parity_across_walk_engines(self, walk_engine, objective):
        graph = power_law_graph(50, 150, seed=11)
        index = FlatWalkIndex.build(graph, 5, 6, seed=7, engine=walk_engine)
        for lazy in (False, True):
            entries = approx_greedy_fast(
                graph, 8, 5, index=index, objective=objective, lazy=lazy
            )
            bitset = approx_greedy_fast(
                graph, 8, 5, index=index, objective=objective, lazy=lazy,
                gain_backend="bitset",
            )
            assert entries.selected == bitset.selected
            assert entries.gains == bitset.gains

    @pytest.mark.parametrize("objective", ["f1", "f2"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gain_sequences_during_selection(self, objective, seed):
        graph = power_law_graph(40, 120, seed=seed)
        index = FlatWalkIndex.build(graph, 4, 5, seed=seed)
        entry = FastApproxEngine(index, objective)
        kernel = FastApproxEngine(index, objective, gain_backend="bitset")
        rng = np.random.default_rng(seed)
        for node in rng.choice(40, size=6, replace=False):
            assert np.array_equal(entry.gains_all(), kernel.gains_all())
            assert entry.gain_of(int(node)) == kernel.gain_of(int(node))
            entry.select(int(node))
            kernel.select(int(node))
            assert np.array_equal(
                entry.distance_matrix(), kernel.distance_matrix()
            )

    def test_stochastic_parity(self, small_power_law):
        index = FlatWalkIndex.build(small_power_law, 4, 8, seed=5)
        a = stochastic_approx_greedy(
            small_power_law, 6, 4, seed=21, index=index
        )
        b = stochastic_approx_greedy(
            small_power_law, 6, 4, seed=21, index=index, gain_backend="bitset"
        )
        assert a.selected == b.selected
        assert a.gains == b.gains

    def test_combined_parity(self, small_power_law):
        index = FlatWalkIndex.build(small_power_law, 4, 6, seed=6)
        a = approx_combined(small_power_law, 5, 4, 0.25, 0.75, index=index)
        b = approx_combined(
            small_power_law, 5, 4, 0.25, 0.75, index=index,
            gain_backend="bitset",
        )
        assert a.selected == b.selected
        assert a.gains == b.gains

    def test_sampling_estimator_parity(self, small_power_law):
        scatter = estimate_objectives(
            small_power_law, {3, 11}, 4, 30, seed=13
        )
        packed = estimate_objectives(
            small_power_law, {3, 11}, 4, 30, seed=13, gain_backend="bitset"
        )
        assert scatter.f1 == packed.f1
        assert scatter.f2 == packed.f2

    def test_sampling_greedy_parity(self):
        graph = power_law_graph(25, 75, seed=8)
        a = sampling_greedy_f2(graph, 3, 3, num_replicates=12, seed=31)
        b = sampling_greedy_f2(
            graph, 3, 3, num_replicates=12, seed=31, gain_backend="bitset"
        )
        assert a.selected == b.selected
        assert a.gains == b.gains

    def test_min_targets_parity(self, small_power_law):
        index = FlatWalkIndex.build(small_power_law, 5, 30, seed=14)
        a = min_targets_for_coverage(small_power_law, 0.5, 5, index=index)
        b = min_targets_for_coverage(
            small_power_law, 0.5, 5, index=index, gain_backend="bitset"
        )
        assert a.selected == b.selected


# ----------------------------------------------------------------------
# Kernel invariants
# ----------------------------------------------------------------------
class TestKernelInvariants:
    def test_popcount_gain_equals_maintained(self, small_power_law):
        index = FlatWalkIndex.build(small_power_law, 5, 4, seed=9)
        kernel = CoverageKernel.from_index(index, "f2")
        rng = np.random.default_rng(0)
        for node in rng.choice(index.num_nodes, size=8, replace=False):
            kernel.select(int(node))
            for probe in range(index.num_nodes):
                assert kernel.popcount_gain(probe) == kernel.gain_of(probe)

    @pytest.mark.parametrize("objective", ["f1", "f2"])
    def test_refresh_matches_maintained(self, small_power_law, objective):
        index = FlatWalkIndex.build(small_power_law, 5, 4, seed=10)
        kernel = CoverageKernel.from_index(index, objective)
        for node in (0, 7, 33, 59):
            kernel.select(node)
            assert np.array_equal(kernel.refresh_gains(), kernel.gains)

    def test_min_reduction_oracle(self, small_power_law):
        index = FlatWalkIndex.build(small_power_law, 5, 3, seed=12)
        kernel = CoverageKernel.from_index(index, "f1")
        hop_matrix = index.dense_hop_matrix()
        assert np.array_equal(
            kernel.min_reduction_gains(hop_matrix), kernel.gains
        )
        kernel.select(17)
        kernel.select(2)
        assert np.array_equal(
            kernel.min_reduction_gains(hop_matrix), kernel.gains
        )

    def test_covered_count_telescopes(self, small_power_law):
        index = FlatWalkIndex.build(small_power_law, 4, 5, seed=15)
        kernel = CoverageKernel.from_index(index, "f2")
        total = 0
        for node in (4, 18, 40):
            total += kernel.gain_of(node)
            kernel.select(node)
            assert kernel.covered_count() == total

    def test_objective_guards(self, small_power_law):
        index = FlatWalkIndex.build(small_power_law, 4, 2, seed=1)
        with pytest.raises(ParameterError):
            CoverageKernel.from_index(index, "f9")
        f1 = CoverageKernel.from_index(index, "f1")
        with pytest.raises(ParameterError):
            f1.popcount_gain(0)
        with pytest.raises(ParameterError):
            f1.covered_count()
        f2 = CoverageKernel.from_index(index, "f2")
        with pytest.raises(ParameterError):
            f2.min_reduction_gains(index.dense_hop_matrix())
        with pytest.raises(ParameterError):
            f2.gain_of(10**6)

    def test_memory_guard_fires_on_rows_access_only(self, small_power_law):
        # The cap guards the dense packed rows, which only popcount
        # queries materialize — construction and the maintained-gain hot
        # path must work even when the rows would not fit.
        index = FlatWalkIndex.build(small_power_law, 4, 2, seed=1)
        kernel = CoverageKernel(index, "f2", max_packed_bytes=8)
        kernel.select(0)
        assert kernel.gain_of(1) >= 0
        with pytest.raises(ParameterError, match="max_bytes"):
            kernel.popcount_gain(1)


# ----------------------------------------------------------------------
# Property: packed popcount coverage == InvertedIndex oracle
# ----------------------------------------------------------------------
NODE_COUNT = 6


def _oracle_covered_pairs(inverted, targets):
    """Count (replicate, walker) pairs dominated by ``targets`` per the
    paper-faithful index: walker in targets, or any first visit of a
    target node by that walker's replicate walk."""
    covered = set()
    for replicate in range(inverted.num_replicates):
        for walker in range(inverted.num_nodes):
            if walker in targets:
                covered.add((replicate, walker))
    for replicate in range(inverted.num_replicates):
        for node in targets:
            for entry in inverted.entries(replicate, node):
                covered.add((replicate, entry.walker))
    return len(covered)


def _walk_matrix(num_replicates: int, length: int):
    walk = st.lists(
        st.integers(min_value=0, max_value=NODE_COUNT - 1),
        min_size=length,
        max_size=length,
    )

    def assemble(tails):
        return [
            [b // num_replicates] + tail for b, tail in enumerate(tails)
        ]

    return st.lists(
        walk,
        min_size=NODE_COUNT * num_replicates,
        max_size=NODE_COUNT * num_replicates,
    ).map(assemble)


class TestPopcountOracleProperty:
    pytestmark = pytest.mark.slow

    @given(
        walks=st.integers(min_value=1, max_value=3).flatmap(
            lambda reps: st.tuples(
                st.just(reps),
                _walk_matrix(reps, 3),
            )
        ),
        targets=st.sets(
            st.integers(min_value=0, max_value=NODE_COUNT - 1), max_size=4
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_packed_coverage_matches_inverted_oracle(self, walks, targets):
        reps, matrix = walks
        inverted = InvertedIndex.from_walks(matrix, NODE_COUNT, reps)
        flat = FlatWalkIndex.from_walks(matrix, NODE_COUNT, reps)
        kernel = CoverageKernel.from_index(flat, "f2")
        for node in sorted(targets):
            kernel.select(node)
        assert kernel.covered_count() == _oracle_covered_pairs(
            inverted, targets
        )


# ----------------------------------------------------------------------
# Shared-walk agreement with the reference engine (three walk engines)
# ----------------------------------------------------------------------
class TestSharedWalks:
    @pytest.mark.parametrize("objective", ["f1", "f2"])
    def test_injected_walks_agree(self, objective):
        graph = power_law_graph(30, 90, seed=4)
        starts = walker_major_starts(graph.num_nodes, 3)
        walks = batch_walks(graph, starts, 4, seed=44)
        flat = FlatWalkIndex.from_walks(walks, graph.num_nodes, 3)
        entries = approx_greedy_fast(
            graph, 6, 4, index=flat, objective=objective, lazy=False
        )
        bitset = approx_greedy_fast(
            graph, 6, 4, index=flat, objective=objective, lazy=False,
            gain_backend="bitset",
        )
        assert entries.selected == bitset.selected
        assert entries.gains == bitset.gains
